//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//!
//! The primary seal/open entry points work **in place** so callers that
//! manage their own framing buffers (the Switchboard record layer) pay
//! zero copies: [`ChaCha20Poly1305::seal_in_place`] encrypts a buffer
//! suffix and appends the tag, [`ChaCha20Poly1305::open_in_place`]
//! verifies and decrypts without allocating. The allocating `seal`/`open`
//! wrappers remain for convenience. Keystream generation uses the wide
//! four-block ChaCha20 and the two-block Poly1305 accumulator; the scalar
//! reference construction is kept as [`ChaCha20Poly1305::seal_scalar`]
//! for differential tests and benchmarks.

use crate::chacha::{chacha20_block, chacha20_xor, chacha20_xor_scalar};
use crate::ct::ct_eq;
use crate::poly1305::Poly1305;
use crate::CryptoError;

/// An authenticated encryption context with a fixed 256-bit key.
#[derive(Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; 32],
}

impl ChaCha20Poly1305 {
    /// Create an AEAD with the given 256-bit key.
    pub fn new(key: [u8; 32]) -> Self {
        ChaCha20Poly1305 { key }
    }

    fn mac(&self, nonce: &[u8; 12], aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
        // One-time Poly1305 key = first 32 bytes of keystream block 0.
        let block0 = chacha20_block(&self.key, 0, nonce);
        let mut otk = [0u8; 32];
        otk.copy_from_slice(&block0[..32]);

        let mut mac = Poly1305::new(&otk);
        mac.update(aad);
        mac.update(&[0u8; 16][..(16 - aad.len() % 16) % 16]);
        mac.update(ciphertext);
        mac.update(&[0u8; 16][..(16 - ciphertext.len() % 16) % 16]);
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.finalize()
    }

    /// Encrypt `buf[payload_start..]` in place and append the 16-byte tag.
    /// Bytes before `payload_start` (a caller-reserved frame header) are
    /// neither encrypted nor authenticated — bind them via `aad` or, as
    /// the Switchboard record layer does, via the nonce.
    pub fn seal_in_place(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        buf: &mut Vec<u8>,
        payload_start: usize,
    ) {
        chacha20_xor(&self.key, 1, nonce, &mut buf[payload_start..]);
        let tag = self.mac(nonce, aad, &buf[payload_start..]);
        buf.extend_from_slice(&tag);
    }

    /// Verify and decrypt `buf` (`ciphertext || tag`) in place; on success
    /// the plaintext occupies `buf[..returned_len]`. No allocation.
    pub fn open_in_place(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        buf: &mut [u8],
    ) -> Result<usize, CryptoError> {
        if buf.len() < 16 {
            return Err(CryptoError::BadLength);
        }
        let split = buf.len() - 16;
        let (ciphertext, tag) = buf.split_at_mut(split);
        let expected = self.mac(nonce, aad, ciphertext);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::BadTag);
        }
        chacha20_xor(&self.key, 1, nonce, ciphertext);
        Ok(split)
    }

    /// Encrypt `plaintext` with additional authenticated data `aad`.
    /// Returns `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        self.seal_in_place(nonce, aad, &mut out, 0);
        out
    }

    /// Decrypt `ciphertext || tag`; verifies the tag before releasing the
    /// plaintext.
    pub fn open(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let mut out = sealed.to_vec();
        let len = self.open_in_place(nonce, aad, &mut out)?;
        out.truncate(len);
        Ok(out)
    }

    /// Reference seal built entirely from the scalar one-block ChaCha20
    /// and one-block Poly1305 paths. Byte-identical to [`Self::seal`];
    /// kept for differential tests and the wide-vs-scalar benchmark.
    pub fn seal_scalar(&self, nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        chacha20_xor_scalar(&self.key, 1, nonce, &mut out);

        let block0 = chacha20_block(&self.key, 0, nonce);
        let mut otk = [0u8; 32];
        otk.copy_from_slice(&block0[..32]);
        let mut mac = Poly1305::new(&otk);
        mac.update_scalar(aad);
        mac.update_scalar(&[0u8; 16][..(16 - aad.len() % 16) % 16]);
        mac.update_scalar(&out);
        mac.update_scalar(&[0u8; 16][..(16 - out.len() % 16) % 16]);
        mac.update_scalar(&(aad.len() as u64).to_le_bytes());
        mac.update_scalar(&(out.len() as u64).to_le_bytes());
        let tag = mac.finalize();
        out.extend_from_slice(&tag);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let aead = ChaCha20Poly1305::new([5u8; 32]);
        let nonce = [1u8; 12];
        let sealed = aead.seal(&nonce, b"header", b"secret mail body");
        let opened = aead.open(&nonce, b"header", &sealed).unwrap();
        assert_eq!(opened, b"secret mail body");
    }

    #[test]
    fn tamper_ciphertext_rejected() {
        let aead = ChaCha20Poly1305::new([5u8; 32]);
        let nonce = [1u8; 12];
        let mut sealed = aead.seal(&nonce, b"", b"payload");
        sealed[0] ^= 1;
        assert_eq!(aead.open(&nonce, b"", &sealed), Err(CryptoError::BadTag));
    }

    #[test]
    fn tamper_tag_rejected() {
        let aead = ChaCha20Poly1305::new([5u8; 32]);
        let nonce = [1u8; 12];
        let mut sealed = aead.seal(&nonce, b"", b"payload");
        let last = sealed.len() - 1;
        sealed[last] ^= 0x80;
        assert_eq!(aead.open(&nonce, b"", &sealed), Err(CryptoError::BadTag));
    }

    #[test]
    fn wrong_aad_rejected() {
        let aead = ChaCha20Poly1305::new([5u8; 32]);
        let nonce = [1u8; 12];
        let sealed = aead.seal(&nonce, b"aad-1", b"payload");
        assert_eq!(
            aead.open(&nonce, b"aad-2", &sealed),
            Err(CryptoError::BadTag)
        );
    }

    #[test]
    fn wrong_nonce_rejected() {
        let aead = ChaCha20Poly1305::new([5u8; 32]);
        let sealed = aead.seal(&[1u8; 12], b"", b"payload");
        assert_eq!(
            aead.open(&[2u8; 12], b"", &sealed),
            Err(CryptoError::BadTag)
        );
    }

    #[test]
    fn empty_plaintext() {
        let aead = ChaCha20Poly1305::new([0u8; 32]);
        let nonce = [0u8; 12];
        let sealed = aead.seal(&nonce, b"only-aad", b"");
        assert_eq!(sealed.len(), 16);
        assert_eq!(aead.open(&nonce, b"only-aad", &sealed).unwrap(), b"");
    }

    #[test]
    fn in_place_seal_preserves_header_and_roundtrips() {
        let aead = ChaCha20Poly1305::new([3u8; 32]);
        let nonce = [4u8; 12];
        let mut buf = b"HEADER--secret payload body".to_vec();
        aead.seal_in_place(&nonce, b"aad", &mut buf, 8);
        assert_eq!(&buf[..8], b"HEADER--");
        // Sealed region matches the allocating API.
        assert_eq!(
            &buf[8..],
            &aead.seal(&nonce, b"aad", b"secret payload body")[..]
        );
        let len = aead.open_in_place(&nonce, b"aad", &mut buf[8..]).unwrap();
        assert_eq!(&buf[8..8 + len], b"secret payload body");
    }

    #[test]
    fn scalar_seal_matches_wide_seal() {
        let aead = ChaCha20Poly1305::new([0xabu8; 32]);
        let nonce = [0x11u8; 12];
        for len in [0usize, 1, 64, 255, 256, 1000, 4096] {
            let payload: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
            assert_eq!(
                aead.seal(&nonce, b"hdr", &payload),
                aead.seal_scalar(&nonce, b"hdr", &payload),
                "len {len}"
            );
        }
    }

    #[test]
    fn short_input_rejected() {
        let aead = ChaCha20Poly1305::new([0u8; 32]);
        assert_eq!(
            aead.open(&[0u8; 12], b"", &[0u8; 15]),
            Err(CryptoError::BadLength)
        );
    }
}
