//! # psf-crypto
//!
//! First-party cryptographic substrate for the PSF / dRBAC / Switchboard
//! reproduction. Everything here is implemented from scratch on top of the
//! Rust standard library:
//!
//! * [`sha2`] — SHA-256 and SHA-512 (FIPS 180-4). Round constants and IVs
//!   are *derived at runtime* from the fractional parts of the cube/square
//!   roots of the first primes using exact integer root extraction, and the
//!   digests are checked against the FIPS known-answer vectors, so no
//!   hand-transcribed constant tables can silently corrupt the hash.
//! * [`hmac`] — HMAC (RFC 2104) and HKDF (RFC 5869) over SHA-2.
//! * [`chacha`] / [`poly1305`] / [`aead`] — the ChaCha20-Poly1305 AEAD
//!   construction of RFC 8439.
//! * [`field`] / [`edwards`] / [`scalar`] — arithmetic in GF(2^255 − 19)
//!   (radix-2^51), the twisted Edwards curve used by Ed25519, and the
//!   scalar field modulo the group order ℓ.
//! * [`ed25519`] — EdDSA signatures (RFC 8032 construction).
//! * [`x25519`] — Diffie-Hellman key agreement (RFC 7748), checked against
//!   the RFC test vector.
//! * [`ct`] — small constant-time comparison helpers.
//!
//! ## Security posture
//!
//! This crate exists to make the HPDC'03 reproduction *real* — credentials
//! are actually signed, channels actually encrypted — not to be a hardened
//! production library. Scalar multiplication uses a uniform double-and-add
//! ladder but we make no formal constant-time claims; see `DESIGN.md`.
//!
//! `unsafe` is denied crate-wide with exactly one sanctioned exception: the
//! SIMD ChaCha20 backend in [`chacha`] calls `#[target_feature]` functions
//! built from value-based SSE2/SSSE3 intrinsics (no raw pointers). Each
//! `unsafe` block there is a feature-availability assertion only, and the
//! portable path remains the differential-testing reference.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha;
pub mod ct;
pub mod ed25519;
pub mod edwards;
pub mod field;
pub mod hmac;
pub mod poly1305;
pub mod scalar;
pub mod sha2;
pub mod x25519;

mod bigint;

pub use aead::ChaCha20Poly1305;
pub use ed25519::{Signature, SigningKey, VerifyingKey};
pub use sha2::{sha256, sha512, Sha256, Sha512};
pub use x25519::{x25519, X25519_BASEPOINT_U};

/// Errors produced by cryptographic operations in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// A signature failed to verify against the given key and message.
    BadSignature,
    /// An encoded curve point could not be decoded (not on the curve, or
    /// non-canonical).
    InvalidPoint,
    /// An encoded scalar was out of range (≥ ℓ) where canonical form is
    /// required (signature malleability rejection).
    NonCanonicalScalar,
    /// AEAD open failed: the authentication tag did not match.
    BadTag,
    /// A key or nonce had the wrong length.
    BadLength,
}

impl core::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            CryptoError::BadSignature => "signature verification failed",
            CryptoError::InvalidPoint => "invalid curve point encoding",
            CryptoError::NonCanonicalScalar => "non-canonical scalar encoding",
            CryptoError::BadTag => "AEAD authentication tag mismatch",
            CryptoError::BadLength => "bad key/nonce length",
        };
        f.write_str(s)
    }
}

impl std::error::Error for CryptoError {}
