//! HMAC (RFC 2104) and HKDF (RFC 5869) over the SHA-2 family.

use crate::sha2::{Sha256, Sha512};

/// HMAC-SHA-256.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    const BLOCK: usize = 64;
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&crate::sha2::sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// HMAC-SHA-512.
pub fn hmac_sha512(key: &[u8], msg: &[u8]) -> [u8; 64] {
    const BLOCK: usize = 128;
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..64].copy_from_slice(&crate::sha2::sha512(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha512::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();

    let mut outer = Sha512::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// HKDF-Extract with SHA-256: `PRK = HMAC(salt, ikm)`.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand with SHA-256; panics if `out.len() > 255 * 32`.
pub fn hkdf_expand(prk: &[u8; 32], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * 32, "HKDF output too long");
    let mut t: Vec<u8> = Vec::new();
    let mut produced = 0usize;
    let mut counter = 1u8;
    while produced < out.len() {
        let mut msg = Vec::with_capacity(t.len() + info.len() + 1);
        msg.extend_from_slice(&t);
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        let take = (out.len() - produced).min(32);
        out[produced..produced + take].copy_from_slice(&block[..take]);
        produced += take;
        t = block.to_vec();
        counter = counter.wrapping_add(1);
    }
}

/// One-call HKDF: extract then expand.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], out: &mut [u8]) {
    let prk = hkdf_extract(salt, ikm);
    hkdf_expand(&prk, info, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case1_sha256() {
        // RFC 4231 test case 1.
        let key = [0x0bu8; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&out),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2_sha256() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&out),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        let key = vec![0xaau8; 200];
        // Must equal HMAC with the hashed key.
        let hashed = crate::sha2::sha256(&key);
        assert_eq!(hmac_sha256(&key, b"m"), hmac_sha256(&hashed, b"m"));
    }

    #[test]
    fn hkdf_lengths() {
        let mut out = vec![0u8; 100];
        hkdf(b"salt", b"ikm", b"info", &mut out);
        let mut out2 = vec![0u8; 100];
        hkdf(b"salt", b"ikm", b"info", &mut out2);
        assert_eq!(out, out2);
        let mut out3 = vec![0u8; 100];
        hkdf(b"salt", b"ikm", b"other", &mut out3);
        assert_ne!(out, out3);
        // Prefix property: a shorter expand is a prefix of a longer one.
        let mut short = vec![0u8; 17];
        hkdf(b"salt", b"ikm", b"info", &mut short);
        assert_eq!(&out[..17], &short[..]);
    }

    #[test]
    fn hmac512_differs_from_hmac256() {
        let a = hmac_sha256(b"k", b"m");
        let b = hmac_sha512(b"k", b"m");
        assert_ne!(&a[..], &b[..32]);
    }
}
