//! X25519 Diffie-Hellman key agreement (RFC 7748), via the Montgomery
//! ladder on the u-coordinate.

use crate::field::Fe;

/// The Montgomery curve base point u = 9.
pub const X25519_BASEPOINT_U: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

fn decode_scalar(k: &[u8; 32]) -> [u8; 32] {
    let mut s = *k;
    s[0] &= 248;
    s[31] &= 127;
    s[31] |= 64;
    s
}

/// Scalar multiplication on the Montgomery u-line: `k · u`.
///
/// Implements the RFC 7748 ladder with a swap-flag driven conditional swap.
pub fn x25519(k: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let k = decode_scalar(k);
    // RFC 7748: mask the top bit of u before decoding.
    let mut u_bytes = *u;
    u_bytes[31] &= 0x7f;
    let x1 = Fe::from_bytes(&u_bytes);

    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u8;

    let a24 = Fe::from_u64(121665);

    for t in (0..255).rev() {
        let k_t = (k[t / 8] >> (t % 8)) & 1;
        swap ^= k_t;
        if swap == 1 {
            core::mem::swap(&mut x2, &mut x3);
            core::mem::swap(&mut z2, &mut z3);
        }
        swap = k_t;

        let a = x2.add(&z2);
        let aa = a.square();
        let b = x2.sub(&z2);
        let bb = b.square();
        let e = aa.sub(&bb);
        let c = x3.add(&z3);
        let d = x3.sub(&z3);
        let da = d.mul(&a);
        let cb = c.mul(&b);
        x3 = da.add(&cb).square();
        z3 = x1.mul(&da.sub(&cb).square());
        x2 = aa.mul(&bb);
        z2 = e.mul(&aa.add(&a24.mul(&e)));
    }
    if swap == 1 {
        core::mem::swap(&mut x2, &mut x3);
        core::mem::swap(&mut z2, &mut z3);
    }

    x2.mul(&z2.invert()).to_bytes()
}

/// Compute the public key for a secret scalar: `k · 9`.
pub fn x25519_base(k: &[u8; 32]) -> [u8; 32] {
    x25519(k, &X25519_BASEPOINT_U)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex32(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, b) in out.iter_mut().enumerate() {
            *b = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn rfc7748_vector_1() {
        // RFC 7748 §5.2 first test vector.
        let k = unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let out = x25519(&k, &u);
        assert_eq!(
            out,
            unhex32("c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552")
        );
    }

    #[test]
    fn diffie_hellman_agreement() {
        let alice_sk = [0x11u8; 32];
        let bob_sk = [0x22u8; 32];
        let alice_pk = x25519_base(&alice_sk);
        let bob_pk = x25519_base(&bob_sk);
        let s1 = x25519(&alice_sk, &bob_pk);
        let s2 = x25519(&bob_sk, &alice_pk);
        assert_eq!(s1, s2);
        assert_ne!(s1, [0u8; 32]);
    }

    #[test]
    fn different_secrets_different_shared() {
        let pk = x25519_base(&[0x33u8; 32]);
        let s1 = x25519(&[0x44u8; 32], &pk);
        let s2 = x25519(&[0x55u8; 32], &pk);
        assert_ne!(s1, s2);
    }

    #[test]
    fn iterated_ladder_stays_consistent() {
        // k, u = k·u iterated a few times must match itself when recomputed;
        // exercises many field-arithmetic corner cases.
        let mut k = [0x77u8; 32];
        let mut u = X25519_BASEPOINT_U;
        for _ in 0..10 {
            let r = x25519(&k, &u);
            u = k;
            k = r;
        }
        let again = {
            let mut k2 = [0x77u8; 32];
            let mut u2 = X25519_BASEPOINT_U;
            for _ in 0..10 {
                let r = x25519(&k2, &u2);
                u2 = k2;
                k2 = r;
            }
            k2
        };
        assert_eq!(k, again);
    }
}
