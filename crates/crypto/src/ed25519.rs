//! Ed25519 signatures (the RFC 8032 construction).

use crate::edwards::{mul_basepoint, EdwardsPoint};
use crate::scalar::Scalar;
use crate::sha2::Sha512;
use crate::CryptoError;
use rand::Rng;

/// A 64-byte Ed25519 signature (`R || s`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature(pub [u8; 64]);

impl Signature {
    /// Parse from raw bytes.
    pub fn from_bytes(b: &[u8]) -> Result<Signature, CryptoError> {
        if b.len() != 64 {
            return Err(CryptoError::BadLength);
        }
        let mut out = [0u8; 64];
        out.copy_from_slice(b);
        Ok(Signature(out))
    }

    /// Raw bytes.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.0
    }
}

/// An Ed25519 signing key (seed + cached expanded secret).
#[derive(Clone)]
pub struct SigningKey {
    seed: [u8; 32],
    a: Scalar,        // clamped secret scalar
    prefix: [u8; 32], // nonce-derivation prefix
    public: VerifyingKey,
}

/// An Ed25519 verifying (public) key: compressed point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VerifyingKey(pub [u8; 32]);

fn clamp(mut k: [u8; 32]) -> [u8; 32] {
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;
    k
}

impl SigningKey {
    /// Derive the key pair from a 32-byte seed (RFC 8032 §5.1.5).
    pub fn from_seed(seed: [u8; 32]) -> SigningKey {
        let h = crate::sha2::sha512(&seed);
        let mut scalar_bytes = [0u8; 32];
        scalar_bytes.copy_from_slice(&h[..32]);
        let scalar_bytes = clamp(scalar_bytes);
        // The clamped value is < 2^255; reduce mod ℓ for our canonical
        // Scalar type (the group action is identical since ℓ·B = 𝒪).
        let a = Scalar::from_bytes_mod_order(&scalar_bytes);
        let mut prefix = [0u8; 32];
        prefix.copy_from_slice(&h[32..]);
        let public = VerifyingKey(mul_basepoint(&a).compress());
        SigningKey {
            seed,
            a,
            prefix,
            public,
        }
    }

    /// Generate a fresh random key pair.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> SigningKey {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        SigningKey::from_seed(seed)
    }

    /// The seed this key was derived from.
    pub fn seed(&self) -> &[u8; 32] {
        &self.seed
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public
    }

    /// Sign a message.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        // r = SHA-512(prefix || M) mod ℓ  (deterministic nonce)
        let mut h = Sha512::new();
        h.update(&self.prefix);
        h.update(msg);
        let r = Scalar::from_bytes_mod_order_wide(&h.finalize());

        let r_point = mul_basepoint(&r).compress();

        // k = SHA-512(R || A || M) mod ℓ
        let mut h = Sha512::new();
        h.update(&r_point);
        h.update(&self.public.0);
        h.update(msg);
        let k = Scalar::from_bytes_mod_order_wide(&h.finalize());

        let s = r.add(&k.mul(&self.a));
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&r_point);
        out[32..].copy_from_slice(&s.to_bytes());
        Signature(out)
    }
}

impl VerifyingKey {
    /// Verify `sig` over `msg`.
    ///
    /// Rejects non-canonical `s` (malleability) and invalid point
    /// encodings. Uses the cofactorless equation `s·B = R + k·A`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> Result<(), CryptoError> {
        let mut r_bytes = [0u8; 32];
        r_bytes.copy_from_slice(&sig.0[..32]);
        let mut s_bytes = [0u8; 32];
        s_bytes.copy_from_slice(&sig.0[32..]);

        let s = Scalar::from_canonical_bytes(&s_bytes).ok_or(CryptoError::NonCanonicalScalar)?;
        let r_point = EdwardsPoint::decompress(&r_bytes)?;
        let a_point = EdwardsPoint::decompress(&self.0)?;

        let mut h = Sha512::new();
        h.update(&r_bytes);
        h.update(&self.0);
        h.update(msg);
        let k = Scalar::from_bytes_mod_order_wide(&h.finalize());

        let lhs = mul_basepoint(&s);
        let rhs = r_point.add(&a_point.mul_scalar(&k));
        if lhs.eq_point(&rhs) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }

    /// Raw public key bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Short hex fingerprint for diagnostics.
    pub fn fingerprint(&self) -> String {
        self.0[..6].iter().map(|b| format!("{b:02x}")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> SigningKey {
        SigningKey::from_seed([n; 32])
    }

    #[test]
    fn sign_verify_roundtrip() {
        let sk = key(1);
        let sig = sk.sign(b"hello drbac");
        sk.verifying_key().verify(b"hello drbac", &sig).unwrap();
    }

    #[test]
    fn tampered_message_rejected() {
        let sk = key(2);
        let sig = sk.sign(b"original");
        assert_eq!(
            sk.verifying_key().verify(b"0riginal", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let sig = key(3).sign(b"msg");
        assert!(key(4).verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn tampered_signature_rejected() {
        let sk = key(5);
        let mut sig = sk.sign(b"msg");
        sig.0[0] ^= 1;
        assert!(sk.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn signing_is_deterministic() {
        let sk = key(6);
        assert_eq!(sk.sign(b"m"), sk.sign(b"m"));
        assert_ne!(sk.sign(b"m").0, sk.sign(b"n").0);
    }

    #[test]
    fn malleability_rejected() {
        // Add ℓ to s: same value mod ℓ but non-canonical encoding.
        let sk = key(7);
        let sig = sk.sign(b"m");
        let mut s_bytes = [0u8; 32];
        s_bytes.copy_from_slice(&sig.0[32..]);
        let s = crate::bigint::U256::from_le_bytes(&s_bytes);
        let (s_plus_l, overflow) = s.overflowing_add(crate::scalar::L);
        if !overflow {
            let mut forged = sig;
            forged.0[32..].copy_from_slice(&s_plus_l.to_le_bytes());
            assert_eq!(
                sk.verifying_key().verify(b"m", &forged),
                Err(CryptoError::NonCanonicalScalar)
            );
        }
    }

    #[test]
    fn empty_message_signs() {
        let sk = key(8);
        let sig = sk.sign(b"");
        sk.verifying_key().verify(b"", &sig).unwrap();
    }

    #[test]
    fn large_message_signs() {
        let sk = key(9);
        let msg = vec![0xa5u8; 100_000];
        let sig = sk.sign(&msg);
        sk.verifying_key().verify(&msg, &sig).unwrap();
    }

    #[test]
    fn generated_keys_differ() {
        let mut rng = rand::rng();
        let a = SigningKey::generate(&mut rng);
        let b = SigningKey::generate(&mut rng);
        assert_ne!(a.verifying_key(), b.verifying_key());
        let sig = a.sign(b"x");
        assert!(b.verifying_key().verify(b"x", &sig).is_err());
        a.verifying_key().verify(b"x", &sig).unwrap();
    }
}
