//! Arithmetic modulo the Ed25519 group order
//! ℓ = 2^252 + 27742317777372353535851937790883648493.
//!
//! Scalars are stored canonically (little-endian, < ℓ). Products go through
//! a 512-bit intermediate reduced by binary long division — slow but simple
//! and obviously correct; signing performs only a handful of these.

use crate::bigint::{U256, U512};

/// The group order ℓ as a [`U256`].
pub(crate) const L: U256 = U256([
    0x5812_631a_5cf5_d3ed,
    0x14de_f9de_a2f7_9cd6,
    0x0000_0000_0000_0000,
    0x1000_0000_0000_0000,
]);

/// A scalar modulo ℓ, canonical little-endian representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scalar(U256);

impl Scalar {
    /// The scalar 0.
    pub const ZERO: Scalar = Scalar(U256([0; 4]));

    /// Construct from a u64.
    pub fn from_u64(v: u64) -> Scalar {
        Scalar(U256([v, 0, 0, 0]))
    }

    /// Reduce 32 little-endian bytes modulo ℓ.
    pub fn from_bytes_mod_order(b: &[u8; 32]) -> Scalar {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(b);
        Scalar::from_bytes_mod_order_wide(&wide)
    }

    /// Reduce 64 little-endian bytes modulo ℓ (used for SHA-512 outputs).
    pub fn from_bytes_mod_order_wide(b: &[u8; 64]) -> Scalar {
        Scalar(U512::from_le_bytes(b).rem(&L))
    }

    /// Parse a canonical scalar; returns `None` if `b >= ℓ` (used for
    /// signature malleability rejection).
    pub fn from_canonical_bytes(b: &[u8; 32]) -> Option<Scalar> {
        let v = U256::from_le_bytes(b);
        if v.cmp_val(&L) == core::cmp::Ordering::Less {
            Some(Scalar(v))
        } else {
            None
        }
    }

    /// Canonical little-endian encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0.to_le_bytes()
    }

    /// `self + rhs mod ℓ`.
    pub fn add(&self, rhs: &Scalar) -> Scalar {
        let (sum, carry) = self.0.overflowing_add(rhs.0);
        debug_assert!(!carry, "canonical scalars sum below 2^256");
        let mut r = sum;
        if r.cmp_val(&L) != core::cmp::Ordering::Less {
            r = r.overflowing_sub(L).0;
        }
        Scalar(r)
    }

    /// `self - rhs mod ℓ`.
    pub fn sub(&self, rhs: &Scalar) -> Scalar {
        let (diff, borrow) = self.0.overflowing_sub(rhs.0);
        if borrow {
            Scalar(diff.overflowing_add(L).0)
        } else {
            Scalar(diff)
        }
    }

    /// `self * rhs mod ℓ`.
    pub fn mul(&self, rhs: &Scalar) -> Scalar {
        Scalar(self.0.widening_mul(rhs.0).rem(&L))
    }

    /// True for the zero scalar.
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l_reduces_to_zero() {
        let s = Scalar::from_bytes_mod_order(&L.to_le_bytes());
        assert!(s.is_zero());
    }

    #[test]
    fn l_minus_one_is_canonical() {
        let (lm1, _) = L.overflowing_sub(U256([1, 0, 0, 0]));
        let s = Scalar::from_canonical_bytes(&lm1.to_le_bytes()).unwrap();
        assert_eq!(s.add(&Scalar::from_u64(1)), Scalar::ZERO);
    }

    #[test]
    fn l_is_rejected_as_canonical() {
        assert!(Scalar::from_canonical_bytes(&L.to_le_bytes()).is_none());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Scalar::from_u64(0xdead_beef_cafe);
        let b = Scalar::from_u64(0x1234_5678);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(Scalar::ZERO.sub(&b).add(&b), Scalar::ZERO);
    }

    #[test]
    fn mul_matches_u128() {
        let a = Scalar::from_u64(1 << 40);
        let b = Scalar::from_u64(1 << 20);
        let expect = Scalar::from_bytes_mod_order(&{
            let mut bytes = [0u8; 32];
            let v: u128 = 1u128 << 60;
            bytes[..16].copy_from_slice(&v.to_le_bytes());
            bytes
        });
        assert_eq!(a.mul(&b), expect);
    }

    #[test]
    fn mul_commutes_and_distributes() {
        let a = Scalar::from_u64(987654321);
        let b = Scalar::from_u64(123456789);
        let c = Scalar::from_u64(555555555);
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn wide_reduction_matches_narrow() {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&[0xabu8; 32]);
        let narrow: [u8; 32] = [0xab; 32];
        assert_eq!(
            Scalar::from_bytes_mod_order_wide(&wide),
            Scalar::from_bytes_mod_order(&narrow)
        );
    }
}
