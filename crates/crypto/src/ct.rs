//! Small constant-time comparison helpers.
//!
//! These avoid early-exit byte comparisons on secret data (MAC tags,
//! shared secrets). We rely on `std::hint::black_box` to discourage the
//! optimizer from reintroducing branches; this is best-effort, which is
//! adequate for this research reproduction (see crate docs).

/// Constant-time equality of two byte slices. Returns `false` for
/// different lengths (length is not considered secret).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    std::hint::black_box(acc) == 0
}

/// Conditionally select `b` if `choice` is 1, else `a` (byte-wise).
/// `choice` must be 0 or 1.
pub fn ct_select(a: u8, b: u8, choice: u8) -> u8 {
    debug_assert!(choice <= 1);
    let mask = choice.wrapping_neg(); // 0x00 or 0xFF
    (a & !mask) | (b & mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn select() {
        assert_eq!(ct_select(0x12, 0x34, 0), 0x12);
        assert_eq!(ct_select(0x12, 0x34, 1), 0x34);
    }
}
