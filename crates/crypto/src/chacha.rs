//! The ChaCha20 stream cipher (RFC 8439 §2.3/§2.4).

/// The ChaCha20 block function state constant: "expand 32-byte k".
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Compute one 64-byte ChaCha20 keystream block.
pub fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        let mut w = [0u8; 4];
        w.copy_from_slice(&key[i * 4..i * 4 + 4]);
        state[4 + i] = u32::from_le_bytes(w);
    }
    state[12] = counter;
    for i in 0..3 {
        let mut w = [0u8; 4];
        w.copy_from_slice(&nonce[i * 4..i * 4 + 4]);
        state[13 + i] = u32::from_le_bytes(w);
    }

    let mut working = state;
    for _ in 0..10 {
        // column rounds
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // diagonal rounds
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XOR `data` in place with the ChaCha20 keystream starting at block
/// `counter`.
pub fn chacha20_xor(key: &[u8; 32], counter: u32, nonce: &[u8; 12], data: &mut [u8]) {
    let mut ctr = counter;
    for chunk in data.chunks_mut(64) {
        let ks = chacha20_block(key, ctr, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        ctr = ctr.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_quarter_round() {
        // RFC 8439 §2.1.1 test vector.
        let mut st = [0u32; 16];
        st[0] = 0x11111111;
        st[1] = 0x01020304;
        st[2] = 0x9b8d6f43;
        st[3] = 0x01234567;
        quarter_round(&mut st, 0, 1, 2, 3);
        assert_eq!(st[0], 0xea2a92f4);
        assert_eq!(st[1], 0xcb1cf8ce);
        assert_eq!(st[2], 0x4581472e);
        assert_eq!(st[3], 0x5881c4bb);
    }

    #[test]
    fn rfc8439_block() {
        // RFC 8439 §2.3.2 block function test vector.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, 1, &nonce);
        let expected_start = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4,
        ];
        assert_eq!(&block[..16], &expected_start);
    }

    #[test]
    fn xor_roundtrip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let mut data = b"attack at dawn, via the insecure WAN link".to_vec();
        let orig = data.clone();
        chacha20_xor(&key, 1, &nonce, &mut data);
        assert_ne!(data, orig);
        chacha20_xor(&key, 1, &nonce, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut long = vec![0u8; 130];
        chacha20_xor(&key, 5, &nonce, &mut long);
        // Encrypting in two pieces with the right counters matches.
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 66];
        chacha20_xor(&key, 5, &nonce, &mut a);
        chacha20_xor(&key, 6, &nonce, &mut b);
        assert_eq!(&long[..64], &a[..]);
        assert_eq!(&long[64..], &b[..]);
    }
}
