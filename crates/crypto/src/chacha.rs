//! The ChaCha20 stream cipher (RFC 8439 §2.3/§2.4).
//!
//! Two keystream generators share the same state schedule: the scalar
//! one-block function ([`chacha20_block`]) and a wide four-block function
//! ([`chacha20_block4`]) that keeps four independent block states in
//! lane-major form — one 4-lane vector per state word, lane `b` belonging
//! to block `counter + b` — so every quarter-round step is a single 4-lane
//! operation. On x86-64 the wide path is lowered explicitly to SSE2
//! intrinsics (with SSSE3 `pshufb` rotates when the CPU has them, an
//! 8-wide AVX2 kernel for 512-byte chunks, and a 16-wide AVX-512 kernel
//! for 1024-byte chunks when available; LLVM's SLP vectorizer does not
//! find this shape on its own once state setup and serialization join the
//! rounds in one function); elsewhere a portable `[u32; 4]` formulation is
//! used. Every wide path is byte-identical to running the scalar block
//! function at counters `c..c+4` (`c..c+8`, `c..c+16`).

/// The ChaCha20 block function state constant: "expand 32-byte k".
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Compute one 64-byte ChaCha20 keystream block.
pub fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        let mut w = [0u8; 4];
        w.copy_from_slice(&key[i * 4..i * 4 + 4]);
        state[4 + i] = u32::from_le_bytes(w);
    }
    state[12] = counter;
    for i in 0..3 {
        let mut w = [0u8; 4];
        w.copy_from_slice(&nonce[i * 4..i * 4 + 4]);
        state[13 + i] = u32::from_le_bytes(w);
    }

    let mut working = state;
    for _ in 0..10 {
        // column rounds
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // diagonal rounds
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Portable lane-major wide backend: one `[u32; 4]` per state word, every
/// quarter-round step an element-wise 4-lane operation. This is the
/// reference the SIMD backend is differentially tested against, and the
/// only wide backend on non-x86-64 targets.
mod portable {
    use super::SIGMA;

    type Lanes = [u32; 4];

    #[inline(always)]
    fn add4(a: Lanes, b: Lanes) -> Lanes {
        [
            a[0].wrapping_add(b[0]),
            a[1].wrapping_add(b[1]),
            a[2].wrapping_add(b[2]),
            a[3].wrapping_add(b[3]),
        ]
    }

    #[inline(always)]
    fn xor4(a: Lanes, b: Lanes) -> Lanes {
        [a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]]
    }

    #[inline(always)]
    fn rotl4<const R: u32>(a: Lanes) -> Lanes {
        [
            a[0].rotate_left(R),
            a[1].rotate_left(R),
            a[2].rotate_left(R),
            a[3].rotate_left(R),
        ]
    }

    macro_rules! quarter_round4 {
        ($a:ident, $b:ident, $c:ident, $d:ident) => {
            $a = add4($a, $b);
            $d = rotl4::<16>(xor4($d, $a));
            $c = add4($c, $d);
            $b = rotl4::<12>(xor4($b, $c));
            $a = add4($a, $b);
            $d = rotl4::<8>(xor4($d, $a));
            $c = add4($c, $d);
            $b = rotl4::<7>(xor4($b, $c));
        };
    }

    // On x86-64 the SIMD backend supersedes this outside differential tests.
    #[cfg_attr(target_arch = "x86_64", allow(dead_code))]
    pub fn block4(key: &[u8; 32], counter: u32, nonce: &[u8; 12], out: &mut [u8; 256]) {
        let mut init = [[0u32; 4]; 16];
        for i in 0..4 {
            init[i] = [SIGMA[i]; 4];
        }
        for i in 0..8 {
            let mut w = [0u8; 4];
            w.copy_from_slice(&key[i * 4..i * 4 + 4]);
            init[4 + i] = [u32::from_le_bytes(w); 4];
        }
        for l in 0..4u32 {
            init[12][l as usize] = counter.wrapping_add(l);
        }
        for i in 0..3 {
            let mut w = [0u8; 4];
            w.copy_from_slice(&nonce[i * 4..i * 4 + 4]);
            init[13 + i] = [u32::from_le_bytes(w); 4];
        }

        let [mut x0, mut x1, mut x2, mut x3, mut x4, mut x5, mut x6, mut x7, mut x8, mut x9, mut x10, mut x11, mut x12, mut x13, mut x14, mut x15] =
            init;
        for _ in 0..10 {
            // column rounds
            quarter_round4!(x0, x4, x8, x12);
            quarter_round4!(x1, x5, x9, x13);
            quarter_round4!(x2, x6, x10, x14);
            quarter_round4!(x3, x7, x11, x15);
            // diagonal rounds
            quarter_round4!(x0, x5, x10, x15);
            quarter_round4!(x1, x6, x11, x12);
            quarter_round4!(x2, x7, x8, x13);
            quarter_round4!(x3, x4, x9, x14);
        }
        let working = [
            x0, x1, x2, x3, x4, x5, x6, x7, x8, x9, x10, x11, x12, x13, x14, x15,
        ];
        for b in 0..4 {
            for i in 0..16 {
                let word = working[i][b].wrapping_add(init[i][b]);
                out[b * 64 + i * 4..b * 64 + i * 4 + 4].copy_from_slice(&word.to_le_bytes());
            }
        }
    }
}

/// Explicit SSE2/SSSE3 lowering of the lane-major wide path. All intrinsics
/// used are value-based (no raw pointers); lane extraction goes through
/// `_mm_cvtsi128_si64`, so the only `unsafe` is the feature-gated calls in
/// [`block4`], justified by the x86-64 SSE2 baseline and a runtime SSSE3
/// check.
#[cfg(target_arch = "x86_64")]
mod simd {
    use super::SIGMA;
    use core::arch::x86_64::*;

    macro_rules! gen_block4 {
        ($name:ident, $feat:literal, $rot16:expr, $rot8:expr) => {
            #[target_feature(enable = $feat)]
            fn $name(
                key: &[u8; 32],
                counter: u32,
                nonce: &[u8; 12],
                out: &mut [u8; 256],
                xor: bool,
            ) {
                let rot16 = $rot16;
                let rot8 = $rot8;
                macro_rules! qr {
                    ($x:ident, $a:expr, $b:expr, $c:expr, $d:expr) => {
                        $x[$a] = _mm_add_epi32($x[$a], $x[$b]);
                        $x[$d] = rot16(_mm_xor_si128($x[$d], $x[$a]));
                        $x[$c] = _mm_add_epi32($x[$c], $x[$d]);
                        $x[$b] = {
                            let v = _mm_xor_si128($x[$b], $x[$c]);
                            _mm_or_si128(_mm_slli_epi32::<12>(v), _mm_srli_epi32::<20>(v))
                        };
                        $x[$a] = _mm_add_epi32($x[$a], $x[$b]);
                        $x[$d] = rot8(_mm_xor_si128($x[$d], $x[$a]));
                        $x[$c] = _mm_add_epi32($x[$c], $x[$d]);
                        $x[$b] = {
                            let v = _mm_xor_si128($x[$b], $x[$c]);
                            _mm_or_si128(_mm_slli_epi32::<7>(v), _mm_srli_epi32::<25>(v))
                        };
                    };
                }
                let mut init = [_mm_setzero_si128(); 16];
                for i in 0..4 {
                    init[i] = _mm_set1_epi32(SIGMA[i] as i32);
                }
                for i in 0..8 {
                    let w = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
                    init[4 + i] = _mm_set1_epi32(w as i32);
                }
                init[12] = _mm_set_epi32(
                    counter.wrapping_add(3) as i32,
                    counter.wrapping_add(2) as i32,
                    counter.wrapping_add(1) as i32,
                    counter as i32,
                );
                for i in 0..3 {
                    let w = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
                    init[13 + i] = _mm_set1_epi32(w as i32);
                }
                let mut x = init;
                for _ in 0..10 {
                    // column rounds
                    qr!(x, 0, 4, 8, 12);
                    qr!(x, 1, 5, 9, 13);
                    qr!(x, 2, 6, 10, 14);
                    qr!(x, 3, 7, 11, 15);
                    // diagonal rounds
                    qr!(x, 0, 5, 10, 15);
                    qr!(x, 1, 6, 11, 12);
                    qr!(x, 2, 7, 8, 13);
                    qr!(x, 3, 4, 9, 14);
                }
                for i in 0..16 {
                    let v = _mm_add_epi32(x[i], init[i]);
                    let lo = _mm_cvtsi128_si64(v) as u64;
                    let hi = _mm_cvtsi128_si64(_mm_unpackhi_epi64(v, v)) as u64;
                    let lanes = [lo as u32, (lo >> 32) as u32, hi as u32, (hi >> 32) as u32];
                    for (b, w) in lanes.iter().enumerate() {
                        let off = b * 64 + i * 4;
                        let ks = if xor {
                            let cur = u32::from_le_bytes(out[off..off + 4].try_into().unwrap());
                            cur ^ w
                        } else {
                            *w
                        };
                        out[off..off + 4].copy_from_slice(&ks.to_le_bytes());
                    }
                }
            }
        };
    }

    gen_block4!(
        block4_sse2,
        "sse2",
        |v| _mm_or_si128(_mm_slli_epi32::<16>(v), _mm_srli_epi32::<16>(v)),
        |v| _mm_or_si128(_mm_slli_epi32::<8>(v), _mm_srli_epi32::<24>(v))
    );
    gen_block4!(
        block4_ssse3,
        "ssse3",
        // Byte-granular rotations by 16 and 8 as pshufb lane shuffles.
        |v| _mm_shuffle_epi8(
            v,
            _mm_set_epi8(13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2)
        ),
        |v| _mm_shuffle_epi8(
            v,
            _mm_set_epi8(14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3)
        )
    );

    /// Eight-block lane-major kernel on 256-bit vectors: one `__m256i` per
    /// state word, lane `b` belonging to block `counter + b`. Exactly the
    /// 4-wide shape doubled; `vpshufb` operates per 128-bit half, so the
    /// rotation masks are the SSSE3 masks replicated across both halves.
    #[target_feature(enable = "avx2")]
    fn block8_avx2(key: &[u8; 32], counter: u32, nonce: &[u8; 12], out: &mut [u8; 512], xor: bool) {
        #[rustfmt::skip]
        let rot16_mask = _mm256_set_epi8(
            13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2,
            13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2,
        );
        #[rustfmt::skip]
        let rot8_mask = _mm256_set_epi8(
            14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3,
            14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3,
        );
        macro_rules! qr {
            ($x:ident, $a:expr, $b:expr, $c:expr, $d:expr) => {
                $x[$a] = _mm256_add_epi32($x[$a], $x[$b]);
                $x[$d] = _mm256_shuffle_epi8(_mm256_xor_si256($x[$d], $x[$a]), rot16_mask);
                $x[$c] = _mm256_add_epi32($x[$c], $x[$d]);
                $x[$b] = {
                    let v = _mm256_xor_si256($x[$b], $x[$c]);
                    _mm256_or_si256(_mm256_slli_epi32::<12>(v), _mm256_srli_epi32::<20>(v))
                };
                $x[$a] = _mm256_add_epi32($x[$a], $x[$b]);
                $x[$d] = _mm256_shuffle_epi8(_mm256_xor_si256($x[$d], $x[$a]), rot8_mask);
                $x[$c] = _mm256_add_epi32($x[$c], $x[$d]);
                $x[$b] = {
                    let v = _mm256_xor_si256($x[$b], $x[$c]);
                    _mm256_or_si256(_mm256_slli_epi32::<7>(v), _mm256_srli_epi32::<25>(v))
                };
            };
        }
        let mut init = [_mm256_setzero_si256(); 16];
        for i in 0..4 {
            init[i] = _mm256_set1_epi32(SIGMA[i] as i32);
        }
        for i in 0..8 {
            let w = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
            init[4 + i] = _mm256_set1_epi32(w as i32);
        }
        init[12] = _mm256_set_epi32(
            counter.wrapping_add(7) as i32,
            counter.wrapping_add(6) as i32,
            counter.wrapping_add(5) as i32,
            counter.wrapping_add(4) as i32,
            counter.wrapping_add(3) as i32,
            counter.wrapping_add(2) as i32,
            counter.wrapping_add(1) as i32,
            counter as i32,
        );
        for i in 0..3 {
            let w = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
            init[13 + i] = _mm256_set1_epi32(w as i32);
        }
        let mut x = init;
        for _ in 0..10 {
            // column rounds
            qr!(x, 0, 4, 8, 12);
            qr!(x, 1, 5, 9, 13);
            qr!(x, 2, 6, 10, 14);
            qr!(x, 3, 7, 11, 15);
            // diagonal rounds
            qr!(x, 0, 5, 10, 15);
            qr!(x, 1, 6, 11, 12);
            qr!(x, 2, 7, 8, 13);
            qr!(x, 3, 4, 9, 14);
        }
        for i in 0..16 {
            let v = _mm256_add_epi32(x[i], init[i]);
            for half in 0..2 {
                let h = if half == 0 {
                    _mm256_extracti128_si256::<0>(v)
                } else {
                    _mm256_extracti128_si256::<1>(v)
                };
                let lo = _mm_cvtsi128_si64(h) as u64;
                let hi = _mm_cvtsi128_si64(_mm_unpackhi_epi64(h, h)) as u64;
                let lanes = [lo as u32, (lo >> 32) as u32, hi as u32, (hi >> 32) as u32];
                for (l, w) in lanes.iter().enumerate() {
                    let off = (half * 4 + l) * 64 + i * 4;
                    let ks = if xor {
                        let cur = u32::from_le_bytes(out[off..off + 4].try_into().unwrap());
                        cur ^ w
                    } else {
                        *w
                    };
                    out[off..off + 4].copy_from_slice(&ks.to_le_bytes());
                }
            }
        }
    }

    /// Sixteen-block lane-major kernel on 512-bit vectors. AVX-512F has a
    /// native 32-bit rotate (`vprold`), so every rotation in the quarter
    /// round is one instruction — no shift-or pairs, no shuffle masks.
    #[target_feature(enable = "avx512f")]
    fn block16_avx512(
        key: &[u8; 32],
        counter: u32,
        nonce: &[u8; 12],
        out: &mut [u8; 1024],
        xor: bool,
    ) {
        macro_rules! qr {
            ($x:ident, $a:expr, $b:expr, $c:expr, $d:expr) => {
                $x[$a] = _mm512_add_epi32($x[$a], $x[$b]);
                $x[$d] = _mm512_rol_epi32::<16>(_mm512_xor_si512($x[$d], $x[$a]));
                $x[$c] = _mm512_add_epi32($x[$c], $x[$d]);
                $x[$b] = _mm512_rol_epi32::<12>(_mm512_xor_si512($x[$b], $x[$c]));
                $x[$a] = _mm512_add_epi32($x[$a], $x[$b]);
                $x[$d] = _mm512_rol_epi32::<8>(_mm512_xor_si512($x[$d], $x[$a]));
                $x[$c] = _mm512_add_epi32($x[$c], $x[$d]);
                $x[$b] = _mm512_rol_epi32::<7>(_mm512_xor_si512($x[$b], $x[$c]));
            };
        }
        let mut init = [_mm512_setzero_si512(); 16];
        for i in 0..4 {
            init[i] = _mm512_set1_epi32(SIGMA[i] as i32);
        }
        for i in 0..8 {
            let w = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
            init[4 + i] = _mm512_set1_epi32(w as i32);
        }
        init[12] = _mm512_set_epi32(
            counter.wrapping_add(15) as i32,
            counter.wrapping_add(14) as i32,
            counter.wrapping_add(13) as i32,
            counter.wrapping_add(12) as i32,
            counter.wrapping_add(11) as i32,
            counter.wrapping_add(10) as i32,
            counter.wrapping_add(9) as i32,
            counter.wrapping_add(8) as i32,
            counter.wrapping_add(7) as i32,
            counter.wrapping_add(6) as i32,
            counter.wrapping_add(5) as i32,
            counter.wrapping_add(4) as i32,
            counter.wrapping_add(3) as i32,
            counter.wrapping_add(2) as i32,
            counter.wrapping_add(1) as i32,
            counter as i32,
        );
        for i in 0..3 {
            let w = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
            init[13 + i] = _mm512_set1_epi32(w as i32);
        }
        let mut x = init;
        for _ in 0..10 {
            // column rounds
            qr!(x, 0, 4, 8, 12);
            qr!(x, 1, 5, 9, 13);
            qr!(x, 2, 6, 10, 14);
            qr!(x, 3, 7, 11, 15);
            // diagonal rounds
            qr!(x, 0, 5, 10, 15);
            qr!(x, 1, 6, 11, 12);
            qr!(x, 2, 7, 8, 13);
            qr!(x, 3, 4, 9, 14);
        }
        for i in 0..16 {
            let v = _mm512_add_epi32(x[i], init[i]);
            for quarter in 0..4 {
                let h = match quarter {
                    0 => _mm512_extracti32x4_epi32::<0>(v),
                    1 => _mm512_extracti32x4_epi32::<1>(v),
                    2 => _mm512_extracti32x4_epi32::<2>(v),
                    _ => _mm512_extracti32x4_epi32::<3>(v),
                };
                let lo = _mm_cvtsi128_si64(h) as u64;
                let hi = _mm_cvtsi128_si64(_mm_unpackhi_epi64(h, h)) as u64;
                let lanes = [lo as u32, (lo >> 32) as u32, hi as u32, (hi >> 32) as u32];
                for (l, w) in lanes.iter().enumerate() {
                    let off = (quarter * 4 + l) * 64 + i * 4;
                    let ks = if xor {
                        let cur = u32::from_le_bytes(out[off..off + 4].try_into().unwrap());
                        cur ^ w
                    } else {
                        *w
                    };
                    out[off..off + 4].copy_from_slice(&ks.to_le_bytes());
                }
            }
        }
    }

    /// Whether the 16-wide AVX-512 backend is usable on this CPU.
    pub fn has_avx512() -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
    }

    /// XOR 1024 bytes of keystream (counters `counter..counter+16`) into
    /// `buf` in place. Panics if AVX-512F is unavailable — callers gate on
    /// [`has_avx512`].
    #[allow(unsafe_code)]
    pub fn xor16(key: &[u8; 32], counter: u32, nonce: &[u8; 12], buf: &mut [u8; 1024]) {
        assert!(std::arch::is_x86_feature_detected!("avx512f"));
        // SAFETY: AVX-512F availability asserted just above.
        unsafe { block16_avx512(key, counter, nonce, buf, true) }
    }

    /// Write 1024 bytes of keystream for counters `counter..counter+16`.
    /// Panics if AVX-512F is unavailable — callers gate on [`has_avx512`].
    #[allow(unsafe_code)]
    #[cfg(test)]
    pub fn block16(key: &[u8; 32], counter: u32, nonce: &[u8; 12], out: &mut [u8; 1024]) {
        assert!(std::arch::is_x86_feature_detected!("avx512f"));
        // SAFETY: AVX-512F availability asserted just above.
        unsafe { block16_avx512(key, counter, nonce, out, false) }
    }

    /// Whether the 8-wide AVX2 backend is usable on this CPU.
    pub fn has_avx2() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// XOR 512 bytes of keystream (counters `counter..counter+8`) into
    /// `buf` in place. Panics if AVX2 is unavailable — callers gate on
    /// [`has_avx2`].
    #[allow(unsafe_code)]
    pub fn xor8(key: &[u8; 32], counter: u32, nonce: &[u8; 12], buf: &mut [u8; 512]) {
        assert!(std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: AVX2 availability asserted just above.
        unsafe { block8_avx2(key, counter, nonce, buf, true) }
    }

    /// Write 512 bytes of keystream for counters `counter..counter+8`.
    /// Panics if AVX2 is unavailable — callers gate on [`has_avx2`].
    #[allow(unsafe_code)]
    #[cfg(test)]
    pub fn block8(key: &[u8; 32], counter: u32, nonce: &[u8; 12], out: &mut [u8; 512]) {
        assert!(std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: AVX2 availability asserted just above.
        unsafe { block8_avx2(key, counter, nonce, out, false) }
    }

    #[allow(unsafe_code)]
    fn dispatch(key: &[u8; 32], counter: u32, nonce: &[u8; 12], out: &mut [u8; 256], xor: bool) {
        if std::arch::is_x86_feature_detected!("ssse3") {
            // SAFETY: SSSE3 availability just verified at runtime.
            unsafe { block4_ssse3(key, counter, nonce, out, xor) }
        } else {
            // SAFETY: SSE2 is part of the x86-64 baseline ABI.
            unsafe { block4_sse2(key, counter, nonce, out, xor) }
        }
    }

    /// Write 256 bytes of keystream for counters `counter..counter+4`.
    pub fn block4(key: &[u8; 32], counter: u32, nonce: &[u8; 12], out: &mut [u8; 256]) {
        dispatch(key, counter, nonce, out, false);
    }

    /// XOR 256 bytes of keystream into `buf` in place, without staging the
    /// keystream through a separate buffer.
    pub fn xor4(key: &[u8; 32], counter: u32, nonce: &[u8; 12], buf: &mut [u8; 256]) {
        dispatch(key, counter, nonce, buf, true);
    }
}

/// Compute four consecutive 64-byte keystream blocks (counters
/// `counter..counter+4`, wrapping) in one pass. Byte-identical to calling
/// [`chacha20_block`] four times.
pub fn chacha20_block4(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 256] {
    let mut out = [0u8; 256];
    #[cfg(target_arch = "x86_64")]
    simd::block4(key, counter, nonce, &mut out);
    #[cfg(not(target_arch = "x86_64"))]
    portable::block4(key, counter, nonce, &mut out);
    out
}

/// XOR `data` in place with the ChaCha20 keystream starting at block
/// `counter`, using the wide four-block generator for the bulk and the
/// scalar block function for the sub-256-byte tail.
pub fn chacha20_xor(key: &[u8; 32], counter: u32, nonce: &[u8; 12], data: &mut [u8]) {
    let mut ctr = counter;
    // Widest kernel first: 1024-byte chunks through the 16-wide AVX-512
    // path, then 512-byte chunks through the 8-wide AVX2 path, remainder
    // through the 4-wide path, and a final sub-4-block tail.
    #[cfg(target_arch = "x86_64")]
    let data = if simd::has_avx512() {
        let mut chunks = data.chunks_exact_mut(1024);
        for chunk in &mut chunks {
            let chunk: &mut [u8; 1024] = chunk.try_into().expect("exact 1024-byte chunk");
            simd::xor16(key, ctr, nonce, chunk);
            ctr = ctr.wrapping_add(16);
        }
        chunks.into_remainder()
    } else {
        data
    };
    #[cfg(target_arch = "x86_64")]
    let data = if simd::has_avx2() {
        let mut chunks = data.chunks_exact_mut(512);
        for chunk in &mut chunks {
            let chunk: &mut [u8; 512] = chunk.try_into().expect("exact 512-byte chunk");
            simd::xor8(key, ctr, nonce, chunk);
            ctr = ctr.wrapping_add(8);
        }
        chunks.into_remainder()
    } else {
        data
    };
    let mut chunks = data.chunks_exact_mut(256);
    for chunk in &mut chunks {
        let chunk: &mut [u8; 256] = chunk.try_into().expect("exact 256-byte chunk");
        #[cfg(target_arch = "x86_64")]
        simd::xor4(key, ctr, nonce, chunk);
        #[cfg(not(target_arch = "x86_64"))]
        {
            let mut ks = [0u8; 256];
            portable::block4(key, ctr, nonce, &mut ks);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
        ctr = ctr.wrapping_add(4);
    }
    let tail = chunks.into_remainder();
    if tail.len() > 64 {
        // 2-4 blocks left: one wide-kernel pass beats per-block scalar
        // passes — small records (RPC frames) live entirely in this tail.
        let mut ks = [0u8; 256];
        #[cfg(target_arch = "x86_64")]
        simd::block4(key, ctr, nonce, &mut ks);
        #[cfg(not(target_arch = "x86_64"))]
        portable::block4(key, ctr, nonce, &mut ks);
        for (b, k) in tail.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    } else {
        chacha20_xor_scalar(key, ctr, nonce, tail);
    }
}

/// XOR `data` in place using only the scalar one-block generator.
/// Retained as the differential-testing and benchmark reference for the
/// wide path — both produce identical bytes.
pub fn chacha20_xor_scalar(key: &[u8; 32], counter: u32, nonce: &[u8; 12], data: &mut [u8]) {
    let mut ctr = counter;
    for chunk in data.chunks_mut(64) {
        let ks = chacha20_block(key, ctr, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        ctr = ctr.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_quarter_round() {
        // RFC 8439 §2.1.1 test vector.
        let mut st = [0u32; 16];
        st[0] = 0x11111111;
        st[1] = 0x01020304;
        st[2] = 0x9b8d6f43;
        st[3] = 0x01234567;
        quarter_round(&mut st, 0, 1, 2, 3);
        assert_eq!(st[0], 0xea2a92f4);
        assert_eq!(st[1], 0xcb1cf8ce);
        assert_eq!(st[2], 0x4581472e);
        assert_eq!(st[3], 0x5881c4bb);
    }

    #[test]
    fn rfc8439_block() {
        // RFC 8439 §2.3.2 block function test vector.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, 1, &nonce);
        let expected_start = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4,
        ];
        assert_eq!(&block[..16], &expected_start);
    }

    #[test]
    fn xor_roundtrip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let mut data = b"attack at dawn, via the insecure WAN link".to_vec();
        let orig = data.clone();
        chacha20_xor(&key, 1, &nonce, &mut data);
        assert_ne!(data, orig);
        chacha20_xor(&key, 1, &nonce, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn wide_block4_matches_scalar_blocks() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = (i * 7 + 3) as u8;
        }
        let nonce = [0x5a; 12];
        for counter in [0u32, 1, 1000, u32::MAX - 1] {
            let wide = chacha20_block4(&key, counter, &nonce);
            for b in 0..4u32 {
                let scalar = chacha20_block(&key, counter.wrapping_add(b), &nonce);
                assert_eq!(
                    &wide[b as usize * 64..(b as usize + 1) * 64],
                    &scalar[..],
                    "counter {counter} block {b}"
                );
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx512_backend_matches_scalar_blocks() {
        if !simd::has_avx512() {
            return; // nothing to test on this CPU
        }
        let key = [0x42u8; 32];
        let nonce = [0x17u8; 12];
        for counter in [0u32, 9, u32::MAX - 11] {
            let mut wide = [0u8; 1024];
            simd::block16(&key, counter, &nonce, &mut wide);
            for b in 0..16u32 {
                let scalar = chacha20_block(&key, counter.wrapping_add(b), &nonce);
                assert_eq!(
                    &wide[b as usize * 64..(b as usize + 1) * 64],
                    &scalar[..],
                    "counter {counter} block {b}"
                );
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_backend_matches_scalar_blocks() {
        if !simd::has_avx2() {
            return; // nothing to test on this CPU
        }
        let key = [0x42u8; 32];
        let nonce = [0x17u8; 12];
        for counter in [0u32, 9, u32::MAX - 5] {
            let mut wide = [0u8; 512];
            simd::block8(&key, counter, &nonce, &mut wide);
            for b in 0..8u32 {
                let scalar = chacha20_block(&key, counter.wrapping_add(b), &nonce);
                assert_eq!(
                    &wide[b as usize * 64..(b as usize + 1) * 64],
                    &scalar[..],
                    "counter {counter} block {b}"
                );
            }
        }
    }

    #[test]
    fn portable_backend_matches_scalar_blocks() {
        let key = [0x42u8; 32];
        let nonce = [0x17u8; 12];
        for counter in [0u32, 9, u32::MAX - 2] {
            let mut wide = [0u8; 256];
            portable::block4(&key, counter, &nonce, &mut wide);
            for b in 0..4u32 {
                let scalar = chacha20_block(&key, counter.wrapping_add(b), &nonce);
                assert_eq!(
                    &wide[b as usize * 64..(b as usize + 1) * 64],
                    &scalar[..],
                    "counter {counter} block {b}"
                );
            }
        }
    }

    #[test]
    fn wide_xor_matches_scalar_xor() {
        let key = [0x21u8; 32];
        let nonce = [9u8; 12];
        for len in [0usize, 1, 63, 64, 255, 256, 257, 511, 512, 1024 + 17] {
            let src: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut wide = src.clone();
            let mut scalar = src.clone();
            chacha20_xor(&key, 3, &nonce, &mut wide);
            chacha20_xor_scalar(&key, 3, &nonce, &mut scalar);
            assert_eq!(wide, scalar, "len {len}");
        }
    }

    #[test]
    fn counter_advances_across_blocks() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut long = vec![0u8; 130];
        chacha20_xor(&key, 5, &nonce, &mut long);
        // Encrypting in two pieces with the right counters matches.
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 66];
        chacha20_xor(&key, 5, &nonce, &mut a);
        chacha20_xor(&key, 6, &nonce, &mut b);
        assert_eq!(&long[..64], &a[..]);
        assert_eq!(&long[64..], &b[..]);
    }
}
