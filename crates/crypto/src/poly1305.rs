//! The Poly1305 one-time authenticator (RFC 8439 §2.5).
//!
//! Two limb schedules share the accumulator. Small messages and residues
//! run in radix-2²⁶ (five limbs, pure u64 arithmetic); bulk input runs in
//! radix-2⁴⁴ (three limbs, u128 products — nine widening multiplies per
//! block instead of twenty-five), absorbed four blocks per carry chain via
//! the lazily computed powers `r²…r⁴`: the unrolled Horner step
//! `(((h + m₁)·r + m₂)·r + m₃)·r + m₄` is evaluated as
//! `(h + m₁)·r⁴ + m₂·r³ + m₃·r² + m₄·r`, with all four products summed
//! limb-wise in u128 before a single reduction. The accumulator converts
//! between radices once per `update` call, never per block. The one-block
//! radix-2²⁶ path is retained (and reachable via
//! [`Poly1305::update_scalar`]) as the differential-testing reference;
//! both produce identical tags.

/// Incremental Poly1305 MAC. The key must never be reused across messages;
/// the AEAD construction derives a fresh one per nonce.
pub struct Poly1305 {
    r: [u64; 5],
    /// r² mod 2¹³⁰−5, for the two-block residue step.
    r2: [u64; 5],
    /// Radix-2⁴⁴ powers `r, r², r³, r⁴`, computed on the first bulk
    /// (≥ 64-byte) absorb so short messages never pay for them.
    wide: Option<[R44; 4]>,
    s: [u64; 2],
    h: [u64; 5],
    buf: [u8; 16],
    buf_len: usize,
}

const MASK26: u64 = (1 << 26) - 1;
const MASK44: u64 = (1 << 44) - 1;
const MASK42: u64 = (1 << 42) - 1;

/// A precomputed radix-2⁴⁴ multiplier: three limbs plus the ×20 wrap
/// multiples (`2¹³² ≡ 20 mod 2¹³⁰−5`) used by the schoolbook products.
#[derive(Clone, Copy)]
struct R44 {
    r: [u64; 3],
    r1_20: u64,
    r2_20: u64,
}

impl R44 {
    fn new(r: [u64; 3]) -> R44 {
        R44 {
            r,
            r1_20: r[1] * 20,
            r2_20: r[2] * 20,
        }
    }
}

/// Accumulate `a · b` into the unreduced radix-2⁴⁴ triple product. With
/// `a` limbs < 2⁴⁵ and multiplier limbs < 2⁴⁹ (after the ×20 fold), each
/// product is < 2⁹⁴; four accumulated multiplies stay far inside u128.
#[inline(always)]
fn mul44_acc(d: &mut [u128; 3], a: &[u64; 3], b: &R44) {
    let [a0, a1, a2] = *a;
    let [b0, b1, b2] = b.r;
    d[0] += a0 as u128 * b0 as u128 + a1 as u128 * b.r2_20 as u128 + a2 as u128 * b.r1_20 as u128;
    d[1] += a0 as u128 * b1 as u128 + a1 as u128 * b0 as u128 + a2 as u128 * b.r2_20 as u128;
    d[2] += a0 as u128 * b2 as u128 + a1 as u128 * b1 as u128 + a2 as u128 * b0 as u128;
}

/// Carry-propagate an unreduced triple product back to (44, 44, 42)-bit
/// limbs, folding the 2¹³⁰ overflow with the ×5 wraparound.
#[inline(always)]
fn carry44(mut d: [u128; 3]) -> [u64; 3] {
    d[1] += d[0] >> 44;
    let l0 = d[0] as u64 & MASK44;
    d[2] += d[1] >> 44;
    let l1 = d[1] as u64 & MASK44;
    let c = (d[2] >> 42) as u64;
    let l2 = d[2] as u64 & MASK42;
    let l0 = l0 + 5 * c;
    [l0 & MASK44, l1 + (l0 >> 44), l2]
}

/// `a · b mod 2¹³⁰−5` in radix-2⁴⁴ (used to build the lazy powers).
fn mul44_reduce(a: &[u64; 3], b: &R44) -> [u64; 3] {
    let mut d = [0u128; 3];
    mul44_acc(&mut d, a, b);
    carry44(d)
}

/// Split a 16-byte block into radix-2⁴⁴ limbs with the 2¹²⁸ pad bit set
/// (the bulk path only ever sees full blocks).
#[inline(always)]
fn limbs44(block: &[u8; 16]) -> [u64; 3] {
    let t0 = u64::from_le_bytes(block[0..8].try_into().unwrap());
    let t1 = u64::from_le_bytes(block[8..16].try_into().unwrap());
    [
        t0 & MASK44,
        ((t0 >> 44) | (t1 << 20)) & MASK44,
        (t1 >> 24) | (1 << 40),
    ]
}

/// Split a 16-byte block into radix-2²⁶ limbs, with `hibit` supplying the
/// 2¹²⁸ bit for full blocks.
#[inline(always)]
fn limbs(block: &[u8; 16], hibit: u64) -> [u64; 5] {
    let t0 = u64::from_le_bytes(block[0..8].try_into().unwrap());
    let t1 = u64::from_le_bytes(block[8..16].try_into().unwrap());
    [
        t0 & MASK26,
        (t0 >> 26) & MASK26,
        ((t0 >> 52) | (t1 << 12)) & MASK26,
        (t1 >> 14) & MASK26,
        (t1 >> 40) | (hibit << 24),
    ]
}

/// One reduction pass: carry-propagate `d` and fold the 2¹³⁰ overflow back
/// with the ×5 wraparound.
#[inline(always)]
fn carry_reduce(mut d: [u64; 5]) -> [u64; 5] {
    let mut c;
    c = d[0] >> 26;
    d[0] &= MASK26;
    d[1] += c;
    c = d[1] >> 26;
    d[1] &= MASK26;
    d[2] += c;
    c = d[2] >> 26;
    d[2] &= MASK26;
    d[3] += c;
    c = d[3] >> 26;
    d[3] &= MASK26;
    d[4] += c;
    c = d[4] >> 26;
    d[4] &= MASK26;
    d[0] += c * 5;
    c = d[0] >> 26;
    d[0] &= MASK26;
    d[1] += c;
    d
}

/// `h · r mod 2¹³⁰−5` (schoolbook with wraparound-by-5, one carry chain).
#[inline(always)]
fn mul_reduce(h: &[u64; 5], r: &[u64; 5]) -> [u64; 5] {
    let [r0, r1, r2, r3, r4] = *r;
    let (s1, s2, s3, s4) = (r1 * 5, r2 * 5, r3 * 5, r4 * 5);
    let [h0, h1, h2, h3, h4] = *h;
    carry_reduce([
        h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1,
        h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2,
        h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3,
        h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4,
        h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0,
    ])
}

/// Unreduced `u·p + v·q`: the ten schoolbook products with the ×5
/// wraparound folded in, summed limb-wise but **not** carried. Each output
/// limb stays below 2⁶⁰ (u ≤ 2²⁷, v ≤ 2²⁶·¹, multiplier limbs ≤ 2²⁸·⁵
/// after the ×5 fold), so two of these can still be added within u64
/// before a single shared [`carry_reduce`].
#[inline(always)]
fn mul2_raw(u: &[u64; 5], p: &[u64; 5], v: &[u64; 5], q: &[u64; 5]) -> [u64; 5] {
    let [p0, p1, p2, p3, p4] = *p;
    let (ps1, ps2, ps3, ps4) = (p1 * 5, p2 * 5, p3 * 5, p4 * 5);
    let [u0, u1, u2, u3, u4] = *u;
    let [q0, q1, q2, q3, q4] = *q;
    let (qs1, qs2, qs3, qs4) = (q1 * 5, q2 * 5, q3 * 5, q4 * 5);
    let [v0, v1, v2, v3, v4] = *v;
    [
        u0 * p0
            + u1 * ps4
            + u2 * ps3
            + u3 * ps2
            + u4 * ps1
            + v0 * q0
            + v1 * qs4
            + v2 * qs3
            + v3 * qs2
            + v4 * qs1,
        u0 * p1
            + u1 * p0
            + u2 * ps4
            + u3 * ps3
            + u4 * ps2
            + v0 * q1
            + v1 * q0
            + v2 * qs4
            + v3 * qs3
            + v4 * qs2,
        u0 * p2
            + u1 * p1
            + u2 * p0
            + u3 * ps4
            + u4 * ps3
            + v0 * q2
            + v1 * q1
            + v2 * q0
            + v3 * qs4
            + v4 * qs3,
        u0 * p3
            + u1 * p2
            + u2 * p1
            + u3 * p0
            + u4 * ps4
            + v0 * q3
            + v1 * q2
            + v2 * q1
            + v3 * q0
            + v4 * qs4,
        u0 * p4
            + u1 * p3
            + u2 * p2
            + u3 * p1
            + u4 * p0
            + v0 * q4
            + v1 * q3
            + v2 * q2
            + v3 * q1
            + v4 * q0,
    ]
}

/// `u·p + v·q mod 2¹³⁰−5` with one shared carry chain — the two-block
/// Horner step `(h + m₁)·r² + m₂·r`.
#[inline(always)]
fn mul2_reduce(u: &[u64; 5], p: &[u64; 5], v: &[u64; 5], q: &[u64; 5]) -> [u64; 5] {
    carry_reduce(mul2_raw(u, p, v, q))
}

impl Poly1305 {
    /// Initialize with a 32-byte one-time key (`r || s`).
    pub fn new(key: &[u8; 32]) -> Self {
        // Clamp r per RFC 8439 §2.5.
        let t0 = u64::from_le_bytes(key[0..8].try_into().unwrap());
        let t1 = u64::from_le_bytes(key[8..16].try_into().unwrap());
        let t0 = t0 & 0x0FFF_FFFC_0FFF_FFFF;
        let t1 = t1 & 0x0FFF_FFFC_0FFF_FFFC;
        let r = [
            t0 & MASK26,
            (t0 >> 26) & MASK26,
            ((t0 >> 52) | (t1 << 12)) & MASK26,
            (t1 >> 14) & MASK26,
            (t1 >> 40) & MASK26,
        ];
        let s = [
            u64::from_le_bytes(key[16..24].try_into().unwrap()),
            u64::from_le_bytes(key[24..32].try_into().unwrap()),
        ];
        Poly1305 {
            r,
            r2: mul_reduce(&r, &r),
            wide: None,
            s,
            h: [0; 5],
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// Radix-2⁴⁴ powers `r, r², r³, r⁴`, computed on first use.
    fn wide_powers(&mut self) -> [R44; 4] {
        *self.wide.get_or_insert_with(|| {
            // Re-derive clamped r in radix-2⁴⁴ from the 2²⁶ limbs.
            let lo = self.r[0] | (self.r[1] << 26) | (self.r[2] << 52);
            let hi = (self.r[2] >> 12) | (self.r[3] << 14) | (self.r[4] << 40);
            let p1 = R44::new([lo & MASK44, ((lo >> 44) | (hi << 20)) & MASK44, hi >> 24]);
            let p2 = R44::new(mul44_reduce(&p1.r, &p1));
            let p3 = R44::new(mul44_reduce(&p2.r, &p1));
            let p4 = R44::new(mul44_reduce(&p2.r, &p2));
            [p1, p2, p3, p4]
        })
    }

    /// Collapse the radix-2²⁶ accumulator to radix-2⁴⁴ limbs.
    fn h_to44(&self) -> [u64; 3] {
        // Full carry first so every limb is within its nominal width.
        let h = carry_reduce(self.h);
        let lo = h[0] | (h[1] << 26) | (h[2] << 52);
        let hi = (h[2] >> 12) | (h[3] << 14) | (h[4] << 40);
        let top = h[4] >> 24; // value bits ≥ 128
        [
            lo & MASK44,
            ((lo >> 44) | (hi << 20)) & MASK44,
            (hi >> 24) | (top << 40),
        ]
    }

    /// Store radix-2⁴⁴ limbs back into the radix-2²⁶ accumulator.
    fn h_from44(&mut self, h: [u64; 3]) {
        let [h0, mut h1, mut h2] = h;
        h2 += h1 >> 44;
        h1 &= MASK44;
        let lo = h0 | (h1 << 44);
        let hi = (h1 >> 20) | (h2 << 24);
        let top = h2 >> 40; // value bits ≥ 128
        self.h = [
            lo & MASK26,
            (lo >> 26) & MASK26,
            ((lo >> 52) | (hi << 12)) & MASK26,
            (hi >> 14) & MASK26,
            (hi >> 40) | (top << 24),
        ];
    }

    fn block(&mut self, block: &[u8; 16], hibit: u64) {
        // h += m (with the 2^128 bit for full blocks), then h *= r.
        let m = limbs(block, hibit);
        for (hi, mi) in self.h.iter_mut().zip(m) {
            *hi += mi;
        }
        self.h = mul_reduce(&self.h, &self.r);
    }

    /// Absorb two full blocks with one reduction:
    /// `h = (h + m₁)·r² + m₂·r`.
    fn block2(&mut self, pair: &[u8; 32]) {
        let m1 = limbs(pair[..16].try_into().unwrap(), 1);
        let m2 = limbs(pair[16..].try_into().unwrap(), 1);
        let mut u = self.h;
        for (ui, mi) in u.iter_mut().zip(m1) {
            *ui += mi;
        }
        self.h = mul2_reduce(&u, &self.r2, &m2, &self.r);
    }

    /// Absorb message bytes. The bulk runs in radix-2⁴⁴, four blocks per
    /// carry chain: `h = (h + m₁)·r⁴ + m₂·r³ + m₃·r² + m₄·r` with all four
    /// triple products summed in u128 before one [`carry44`]; the 32- and
    /// 16-byte residues fall back to the radix-2²⁶ steps.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.block(&block, 1);
                self.buf_len = 0;
            } else {
                return; // buffer not full ⇒ data exhausted
            }
        }
        if data.len() >= 64 {
            let [p1, p2, p3, p4] = self.wide_powers();
            let mut h = self.h_to44();
            while data.len() >= 64 {
                let m1 = limbs44(data[..16].try_into().unwrap());
                let m2 = limbs44(data[16..32].try_into().unwrap());
                let m3 = limbs44(data[32..48].try_into().unwrap());
                let m4 = limbs44(data[48..64].try_into().unwrap());
                let a = [h[0] + m1[0], h[1] + m1[1], h[2] + m1[2]];
                let mut d = [0u128; 3];
                mul44_acc(&mut d, &a, &p4);
                mul44_acc(&mut d, &m2, &p3);
                mul44_acc(&mut d, &m3, &p2);
                mul44_acc(&mut d, &m4, &p1);
                h = carry44(d);
                data = &data[64..];
            }
            self.h_from44(h);
        }
        if data.len() >= 32 {
            self.block2(data[..32].try_into().unwrap());
            data = &data[32..];
        }
        if data.len() >= 16 {
            self.block(data[..16].try_into().unwrap(), 1);
            data = &data[16..];
        }
        self.buf[..data.len()].copy_from_slice(data);
        self.buf_len = data.len();
    }

    /// Absorb message bytes strictly one block per reduction — the
    /// reference path the two-block accumulator is differential-tested
    /// against. Interleaving `update` and `update_scalar` is sound; tags
    /// are identical either way.
    pub fn update_scalar(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.block(&block, 1);
                self.buf_len = 0;
            } else {
                return; // buffer not full ⇒ data exhausted
            }
        }
        while data.len() >= 16 {
            self.block(data[..16].try_into().unwrap(), 1);
            data = &data[16..];
        }
        self.buf[..data.len()].copy_from_slice(data);
        self.buf_len = data.len();
    }

    /// Produce the 16-byte tag.
    pub fn finalize(mut self) -> [u8; 16] {
        if self.buf_len > 0 {
            // Final partial block: append 0x01 then zero-pad; no 2^128 bit.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.block(&block, 0);
        }
        // Full carry.
        let [mut h0, mut h1, mut h2, mut h3, mut h4] = self.h;
        let mut c;
        c = h1 >> 26;
        h1 &= MASK26;
        h2 += c;
        c = h2 >> 26;
        h2 &= MASK26;
        h3 += c;
        c = h3 >> 26;
        h3 &= MASK26;
        h4 += c;
        c = h4 >> 26;
        h4 &= MASK26;
        h0 += c * 5;
        c = h0 >> 26;
        h0 &= MASK26;
        h1 += c;

        // Compute h + -p = h - (2^130 - 5): g = h + 5, then take g - 2^130
        // if it did not borrow.
        let mut g0 = h0 + 5;
        c = g0 >> 26;
        g0 &= MASK26;
        let mut g1 = h1 + c;
        c = g1 >> 26;
        g1 &= MASK26;
        let mut g2 = h2 + c;
        c = g2 >> 26;
        g2 &= MASK26;
        let mut g3 = h3 + c;
        c = g3 >> 26;
        g3 &= MASK26;
        let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

        // If g4's sign bit is clear, h >= p and we use g.
        let mask = (g4 >> 63).wrapping_sub(1); // all-ones if h >= p
        g0 = (h0 & !mask) | (g0 & mask);
        g1 = (h1 & !mask) | (g1 & mask);
        g2 = (h2 & !mask) | (g2 & mask);
        g3 = (h3 & !mask) | (g3 & mask);
        let g4 = (h4 & !mask) | (g4 & mask & ((1 << 26) - 1));

        // Collapse to 128 bits and add s (mod 2^128).
        let lo = g0 | (g1 << 26) | (g2 << 52);
        let hi = (g2 >> 12) | (g3 << 14) | (g4 << 40);
        let (lo, carry) = lo.overflowing_add(self.s[0]);
        let hi = hi.wrapping_add(self.s[1]).wrapping_add(carry as u64);

        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&lo.to_le_bytes());
        out[8..].copy_from_slice(&hi.to_le_bytes());
        out
    }
}

/// One-shot Poly1305 MAC.
pub fn poly1305(key: &[u8; 32], msg: &[u8]) -> [u8; 16] {
    let mut p = Poly1305::new(key);
    p.update(msg);
    p.finalize()
}

/// One-shot Poly1305 MAC via the one-block-per-reduction reference path.
pub fn poly1305_scalar(key: &[u8; 32], msg: &[u8]) -> [u8; 16] {
    let mut p = Poly1305::new(key);
    p.update_scalar(msg);
    p.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc8439_vector() {
        // RFC 8439 §2.5.2.
        let key_bytes = unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
        let mut key = [0u8; 32];
        key.copy_from_slice(&key_bytes);
        let tag = poly1305(&key, b"Cryptographic Forum Research Group");
        assert_eq!(hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = [0x42u8; 32];
        let msg: Vec<u8> = (0..200u32).map(|i| (i % 256) as u8).collect();
        for split in [0, 1, 15, 16, 17, 31, 32, 100, 199, 200] {
            let mut p = Poly1305::new(&key);
            p.update(&msg[..split]);
            p.update(&msg[split..]);
            assert_eq!(p.finalize(), poly1305(&key, &msg), "split {split}");
        }
    }

    #[test]
    fn multi_block_path_matches_scalar() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = (i * 13 + 1) as u8;
        }
        let msg: Vec<u8> = (0..300u32).map(|i| (i * 31 % 256) as u8).collect();
        for len in [
            0usize, 15, 16, 17, 31, 32, 33, 47, 48, 63, 64, 65, 96, 100, 127, 128, 129, 255, 256,
            300,
        ] {
            assert_eq!(
                poly1305(&key, &msg[..len]),
                poly1305_scalar(&key, &msg[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn mixed_update_paths_agree() {
        let key = [0x7fu8; 32];
        let msg: Vec<u8> = (0..192u8).collect();
        let mut mixed = Poly1305::new(&key);
        mixed.update(&msg[..50]);
        mixed.update_scalar(&msg[50..90]);
        mixed.update(&msg[90..]);
        assert_eq!(mixed.finalize(), poly1305(&key, &msg));
    }

    #[test]
    fn different_keys_different_tags() {
        let k1 = [1u8; 32];
        let k2 = [2u8; 32];
        assert_ne!(poly1305(&k1, b"msg"), poly1305(&k2, b"msg"));
    }

    #[test]
    fn empty_message() {
        let key = [9u8; 32];
        // Empty message: tag == s (no blocks processed).
        let tag = poly1305(&key, b"");
        assert_eq!(&tag[..], &key[16..32]);
    }
}
