//! The Poly1305 one-time authenticator (RFC 8439 §2.5), implemented with
//! radix-2^26 limbs (the "donna" layout).

/// Incremental Poly1305 MAC. The key must never be reused across messages;
/// the AEAD construction derives a fresh one per nonce.
pub struct Poly1305 {
    r: [u64; 5],
    s: [u64; 2],
    h: [u64; 5],
    buf: [u8; 16],
    buf_len: usize,
}

const MASK26: u64 = (1 << 26) - 1;

impl Poly1305 {
    /// Initialize with a 32-byte one-time key (`r || s`).
    pub fn new(key: &[u8; 32]) -> Self {
        // Clamp r per RFC 8439 §2.5.
        let t0 = u64::from_le_bytes(key[0..8].try_into().unwrap());
        let t1 = u64::from_le_bytes(key[8..16].try_into().unwrap());
        let t0 = t0 & 0x0FFF_FFFC_0FFF_FFFF;
        let t1 = t1 & 0x0FFF_FFFC_0FFF_FFFC;
        let r = [
            t0 & MASK26,
            (t0 >> 26) & MASK26,
            ((t0 >> 52) | (t1 << 12)) & MASK26,
            (t1 >> 14) & MASK26,
            (t1 >> 40) & MASK26,
        ];
        let s = [
            u64::from_le_bytes(key[16..24].try_into().unwrap()),
            u64::from_le_bytes(key[24..32].try_into().unwrap()),
        ];
        Poly1305 {
            r,
            s,
            h: [0; 5],
            buf: [0; 16],
            buf_len: 0,
        }
    }

    fn block(&mut self, block: &[u8; 16], hibit: u64) {
        let t0 = u64::from_le_bytes(block[0..8].try_into().unwrap());
        let t1 = u64::from_le_bytes(block[8..16].try_into().unwrap());
        // h += m (with the 2^128 bit for full blocks)
        self.h[0] += t0 & MASK26;
        self.h[1] += (t0 >> 26) & MASK26;
        self.h[2] += ((t0 >> 52) | (t1 << 12)) & MASK26;
        self.h[3] += (t1 >> 14) & MASK26;
        self.h[4] += (t1 >> 40) | (hibit << 24);

        let [r0, r1, r2, r3, r4] = self.r;
        let (s1, s2, s3, s4) = (r1 * 5, r2 * 5, r3 * 5, r4 * 5);
        let [h0, h1, h2, h3, h4] = self.h;

        // h *= r mod 2^130 - 5 (schoolbook with wraparound-by-5).
        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        let mut c;
        let mut d0 = d0;
        let mut d1 = d1;
        let mut d2 = d2;
        let mut d3 = d3;
        let mut d4 = d4;
        c = d0 >> 26;
        d0 &= MASK26;
        d1 += c;
        c = d1 >> 26;
        d1 &= MASK26;
        d2 += c;
        c = d2 >> 26;
        d2 &= MASK26;
        d3 += c;
        c = d3 >> 26;
        d3 &= MASK26;
        d4 += c;
        c = d4 >> 26;
        d4 &= MASK26;
        d0 += c * 5;
        c = d0 >> 26;
        d0 &= MASK26;
        d1 += c;

        self.h = [d0, d1, d2, d3, d4];
    }

    /// Absorb message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.block(&block, 1);
                self.buf_len = 0;
            } else {
                return; // buffer not full ⇒ data exhausted
            }
        }
        while data.len() >= 16 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&data[..16]);
            self.block(&block, 1);
            data = &data[16..];
        }
        self.buf[..data.len()].copy_from_slice(data);
        self.buf_len = data.len();
    }

    /// Produce the 16-byte tag.
    pub fn finalize(mut self) -> [u8; 16] {
        if self.buf_len > 0 {
            // Final partial block: append 0x01 then zero-pad; no 2^128 bit.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.block(&block, 0);
        }
        // Full carry.
        let [mut h0, mut h1, mut h2, mut h3, mut h4] = self.h;
        let mut c;
        c = h1 >> 26;
        h1 &= MASK26;
        h2 += c;
        c = h2 >> 26;
        h2 &= MASK26;
        h3 += c;
        c = h3 >> 26;
        h3 &= MASK26;
        h4 += c;
        c = h4 >> 26;
        h4 &= MASK26;
        h0 += c * 5;
        c = h0 >> 26;
        h0 &= MASK26;
        h1 += c;

        // Compute h + -p = h - (2^130 - 5): g = h + 5, then take g - 2^130
        // if it did not borrow.
        let mut g0 = h0 + 5;
        c = g0 >> 26;
        g0 &= MASK26;
        let mut g1 = h1 + c;
        c = g1 >> 26;
        g1 &= MASK26;
        let mut g2 = h2 + c;
        c = g2 >> 26;
        g2 &= MASK26;
        let mut g3 = h3 + c;
        c = g3 >> 26;
        g3 &= MASK26;
        let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

        // If g4's sign bit is clear, h >= p and we use g.
        let mask = (g4 >> 63).wrapping_sub(1); // all-ones if h >= p
        g0 = (h0 & !mask) | (g0 & mask);
        g1 = (h1 & !mask) | (g1 & mask);
        g2 = (h2 & !mask) | (g2 & mask);
        g3 = (h3 & !mask) | (g3 & mask);
        let g4 = (h4 & !mask) | (g4 & mask & ((1 << 26) - 1));

        // Collapse to 128 bits and add s (mod 2^128).
        let lo = g0 | (g1 << 26) | (g2 << 52);
        let hi = (g2 >> 12) | (g3 << 14) | (g4 << 40);
        let (lo, carry) = lo.overflowing_add(self.s[0]);
        let hi = hi.wrapping_add(self.s[1]).wrapping_add(carry as u64);

        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&lo.to_le_bytes());
        out[8..].copy_from_slice(&hi.to_le_bytes());
        out
    }
}

/// One-shot Poly1305 MAC.
pub fn poly1305(key: &[u8; 32], msg: &[u8]) -> [u8; 16] {
    let mut p = Poly1305::new(key);
    p.update(msg);
    p.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc8439_vector() {
        // RFC 8439 §2.5.2.
        let key_bytes = unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
        let mut key = [0u8; 32];
        key.copy_from_slice(&key_bytes);
        let tag = poly1305(&key, b"Cryptographic Forum Research Group");
        assert_eq!(hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = [0x42u8; 32];
        let msg: Vec<u8> = (0..200u32).map(|i| (i % 256) as u8).collect();
        for split in [0, 1, 15, 16, 17, 31, 32, 100, 199, 200] {
            let mut p = Poly1305::new(&key);
            p.update(&msg[..split]);
            p.update(&msg[split..]);
            assert_eq!(p.finalize(), poly1305(&key, &msg), "split {split}");
        }
    }

    #[test]
    fn different_keys_different_tags() {
        let k1 = [1u8; 32];
        let k2 = [2u8; 32];
        assert_ne!(poly1305(&k1, b"msg"), poly1305(&k2, b"msg"));
    }

    #[test]
    fn empty_message() {
        let key = [9u8; 32];
        // Empty message: tag == s (no blocks processed).
        let tag = poly1305(&key, b"");
        assert_eq!(&tag[..], &key[16..32]);
    }
}
