//! The twisted Edwards curve `-x² + y² = 1 + d·x²·y²` over GF(2^255 − 19)
//! used by Ed25519, in extended homogeneous coordinates (X : Y : Z : T)
//! with `x = X/Z`, `y = Y/Z`, `x·y = T/Z`.
//!
//! The curve constant `d = −121665/121666` and the standard base point
//! (`y = 4/5`, sign(x) = 0) are derived at runtime from first principles,
//! avoiding transcription errors; structural tests then pin them down
//! (`ℓ·B = 𝒪`, base point is on the curve, encodings round-trip).

use crate::field::Fe;
use crate::scalar::Scalar;
use crate::CryptoError;
use std::sync::OnceLock;

/// A point on the Ed25519 curve, extended coordinates.
#[derive(Debug, Clone, Copy)]
pub struct EdwardsPoint {
    pub(crate) x: Fe,
    pub(crate) y: Fe,
    pub(crate) z: Fe,
    pub(crate) t: Fe,
}

/// The curve constant d = -121665/121666 mod p.
pub fn d() -> &'static Fe {
    static D: OnceLock<Fe> = OnceLock::new();
    D.get_or_init(|| {
        Fe::from_u64(121665)
            .neg()
            .mul(&Fe::from_u64(121666).invert())
    })
}

/// 2·d, used by the unified addition formula.
fn d2() -> &'static Fe {
    static D2: OnceLock<Fe> = OnceLock::new();
    D2.get_or_init(|| d().add(d()))
}

/// The standard base point B (y = 4/5, even x).
pub fn basepoint() -> &'static EdwardsPoint {
    static B: OnceLock<EdwardsPoint> = OnceLock::new();
    B.get_or_init(|| {
        let y = Fe::from_u64(4).mul(&Fe::from_u64(5).invert());
        let mut enc = y.to_bytes();
        enc[31] &= 0x7f; // sign(x) = 0
        EdwardsPoint::decompress(&enc).expect("base point must decompress")
    })
}

/// Precomputed fixed-base table: `table[w][d-1] = d · 16^w · B` for 64
/// 4-bit windows and digits d ∈ 1..=15. ~60 KiB once, built lazily;
/// turns the 256-double-and-add basepoint multiplication into 64 table
/// additions (the standard comb optimization — signing, key generation
/// and the `s·B` half of verification all sit on this path).
fn basepoint_table() -> &'static Vec<[EdwardsPoint; 15]> {
    static T: OnceLock<Vec<[EdwardsPoint; 15]>> = OnceLock::new();
    T.get_or_init(|| {
        let mut table = Vec::with_capacity(64);
        let mut window_base = *basepoint(); // 16^w · B
        for _ in 0..64 {
            let mut row = [EdwardsPoint::identity(); 15];
            let mut acc = window_base; // d · 16^w · B
            for slot in row.iter_mut() {
                *slot = acc;
                acc = acc.add(&window_base);
            }
            table.push(row);
            window_base = acc; // 16 · 16^w · B = 16^(w+1) · B
        }
        table
    })
}

/// Fixed-base scalar multiplication `s · B` via the precomputed window
/// table. Variable-time in the scalar's digits (table lookups are
/// indexed by secret data) — acceptable for this research reproduction;
/// see the crate-level security note.
pub fn mul_basepoint(s: &Scalar) -> EdwardsPoint {
    let bytes = s.to_bytes();
    let table = basepoint_table();
    let mut acc = EdwardsPoint::identity();
    for (i, byte) in bytes.iter().enumerate() {
        let lo = (byte & 0x0f) as usize;
        let hi = (byte >> 4) as usize;
        if lo != 0 {
            acc = acc.add(&table[2 * i][lo - 1]);
        }
        if hi != 0 {
            acc = acc.add(&table[2 * i + 1][hi - 1]);
        }
    }
    acc
}

impl EdwardsPoint {
    /// The identity element (neutral point).
    pub fn identity() -> EdwardsPoint {
        EdwardsPoint {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        // x/z == 0 and y/z == 1  ⟺  x == 0 and y == z.
        self.x.is_zero() && self.y.ct_eq(&self.z)
    }

    /// Point addition (unified formula add-2008-hwcd-3 for a = −1).
    pub fn add(&self, rhs: &EdwardsPoint) -> EdwardsPoint {
        let a = self.y.sub(&self.x).mul(&rhs.y.sub(&rhs.x));
        let b = self.y.add(&self.x).mul(&rhs.y.add(&rhs.x));
        let c = self.t.mul(d2()).mul(&rhs.t);
        let dd = self.z.mul(&rhs.z);
        let dd = dd.add(&dd);
        let e = b.sub(&a);
        let f = dd.sub(&c);
        let g = dd.add(&c);
        let h = b.add(&a);
        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            t: e.mul(&h),
            z: f.mul(&g),
        }
    }

    /// Point doubling (dbl-2008-hwcd, a = −1).
    pub fn double(&self) -> EdwardsPoint {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square();
        let c = c.add(&c);
        let d = a.neg(); // a·X² with a = −1
        let e = self.x.add(&self.y).square().sub(&a).sub(&b);
        let g = d.add(&b);
        let f = g.sub(&c);
        let h = d.sub(&b);
        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            t: e.mul(&h),
            z: f.mul(&g),
        }
    }

    /// Point negation.
    pub fn neg(&self) -> EdwardsPoint {
        EdwardsPoint {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Scalar multiplication by a canonical scalar, using a 4-bit window:
    /// 15 precomputed multiples, then 4 doublings + ≤1 addition per
    /// window. Variable-time in the scalar (see the crate security note);
    /// [`mul_scalar_uniform`](Self::mul_scalar_uniform) keeps the
    /// uniform-control-flow ladder for callers that prefer it.
    pub fn mul_scalar(&self, s: &Scalar) -> EdwardsPoint {
        // table[d-1] = d · P for d in 1..=15
        let mut table = [EdwardsPoint::identity(); 15];
        let mut acc = *self;
        for slot in table.iter_mut() {
            *slot = acc;
            acc = acc.add(self);
        }
        let bytes = s.to_bytes();
        let mut acc = EdwardsPoint::identity();
        for byte in bytes.iter().rev() {
            for digit in [byte >> 4, byte & 0x0f] {
                acc = acc.double().double().double().double();
                if digit != 0 {
                    acc = acc.add(&table[digit as usize - 1]);
                }
            }
        }
        acc
    }

    /// Double-and-add over all 256 bits with uniform structure (the
    /// original ladder; one addition computed per bit regardless of its
    /// value).
    pub fn mul_scalar_uniform(&self, s: &Scalar) -> EdwardsPoint {
        let bytes = s.to_bytes();
        let mut acc = EdwardsPoint::identity();
        for byte in bytes.iter().rev() {
            for bit in (0..8).rev() {
                acc = acc.double();
                let added = acc.add(self);
                if (byte >> bit) & 1 == 1 {
                    acc = added;
                }
            }
        }
        acc
    }

    /// `a·A + b·B` (Shamir's trick not needed for correctness; simple sum).
    pub fn double_scalar_mul(
        a: &Scalar,
        pa: &EdwardsPoint,
        b: &Scalar,
        pb: &EdwardsPoint,
    ) -> EdwardsPoint {
        pa.mul_scalar(a).add(&pb.mul_scalar(b))
    }

    /// Compress to the 32-byte encoding (y with the sign of x in the top
    /// bit).
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompress a 32-byte encoding; rejects encodings that are not on the
    /// curve or are non-canonical (x = 0 with sign bit set).
    pub fn decompress(bytes: &[u8; 32]) -> Result<EdwardsPoint, CryptoError> {
        let sign = bytes[31] >> 7 == 1;
        let mut ybytes = *bytes;
        ybytes[31] &= 0x7f;
        let y = Fe::from_bytes(&ybytes);
        // Reject non-canonical y (y >= p re-encodes differently).
        if y.to_bytes() != ybytes {
            return Err(CryptoError::InvalidPoint);
        }
        // x² = (y² − 1) / (d·y² + 1)
        let yy = y.square();
        let u = yy.sub(&Fe::ONE);
        let v = yy.mul(d()).add(&Fe::ONE);
        let (is_square, mut x) = Fe::sqrt_ratio(&u, &v);
        if !is_square {
            return Err(CryptoError::InvalidPoint);
        }
        if x.is_zero() && sign {
            return Err(CryptoError::InvalidPoint);
        }
        if x.is_negative() != sign {
            x = x.neg();
        }
        Ok(EdwardsPoint {
            x,
            y,
            z: Fe::ONE,
            t: x.mul(&y),
        })
    }

    /// Verify the curve equation for this (projective) point. Used in tests
    /// and debug assertions.
    pub fn is_on_curve(&self) -> bool {
        // -X²Z² + Y²Z² = Z⁴ + d·X²Y²  and  T·Z = X·Y
        let xx = self.x.square();
        let yy = self.y.square();
        let zz = self.z.square();
        let lhs = yy.sub(&xx).mul(&zz);
        let rhs = zz.square().add(&d().mul(&xx).mul(&yy));
        let t_ok = self.t.mul(&self.z).ct_eq(&self.x.mul(&self.y));
        lhs.ct_eq(&rhs) && t_ok
    }

    /// Equality in the group (cross-multiplied affine comparison).
    pub fn eq_point(&self, other: &EdwardsPoint) -> bool {
        // X1/Z1 == X2/Z2 and Y1/Z1 == Y2/Z2
        self.x.mul(&other.z).ct_eq(&other.x.mul(&self.z))
            && self.y.mul(&other.z).ct_eq(&other.y.mul(&self.z))
    }
}

impl PartialEq for EdwardsPoint {
    fn eq(&self, other: &Self) -> bool {
        self.eq_point(other)
    }
}
impl Eq for EdwardsPoint {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Scalar;

    #[test]
    fn basepoint_on_curve() {
        assert!(basepoint().is_on_curve());
    }

    #[test]
    fn basepoint_roundtrips() {
        let enc = basepoint().compress();
        // Known canonical encoding of the Ed25519 base point.
        assert_eq!(
            enc.iter().map(|b| format!("{b:02x}")).collect::<String>(),
            "5866666666666666666666666666666666666666666666666666666666666666"
        );
        let back = EdwardsPoint::decompress(&enc).unwrap();
        assert!(back.eq_point(basepoint()));
    }

    #[test]
    fn identity_laws() {
        let id = EdwardsPoint::identity();
        assert!(id.is_on_curve());
        let b = basepoint();
        assert!(b.add(&id).eq_point(b));
        assert!(id.add(b).eq_point(b));
        assert!(b.add(&b.neg()).is_identity());
    }

    #[test]
    fn double_matches_add() {
        let b = basepoint();
        assert!(b.double().eq_point(&b.add(b)));
        let b4 = b.double().double();
        assert!(b4.eq_point(&b.add(b).add(b).add(b)));
    }

    #[test]
    fn order_l_annihilates_base() {
        let l_minus_1 = Scalar::from_u64(0).sub(&Scalar::from_u64(1)); // ℓ−1 mod ℓ
        let p = basepoint().mul_scalar(&l_minus_1);
        // (ℓ−1)·B = −B, so adding B gives the identity.
        assert!(p.add(basepoint()).is_identity());
    }

    #[test]
    fn scalar_mul_small_values() {
        let b = basepoint();
        let three = b.mul_scalar(&Scalar::from_u64(3));
        assert!(three.eq_point(&b.add(b).add(b)));
        let zero = b.mul_scalar(&Scalar::from_u64(0));
        assert!(zero.is_identity());
        let one = b.mul_scalar(&Scalar::from_u64(1));
        assert!(one.eq_point(b));
    }

    #[test]
    fn scalar_mul_distributes() {
        let b = basepoint();
        let a = Scalar::from_u64(1234567);
        let c = Scalar::from_u64(7654321);
        let lhs = b.mul_scalar(&a.add(&c));
        let rhs = b.mul_scalar(&a).add(&b.mul_scalar(&c));
        assert!(lhs.eq_point(&rhs));
    }

    #[test]
    fn decompress_rejects_garbage() {
        // y = 7 is not on the curve (x² would be non-square) — check a few.
        let mut rejected = 0;
        for y in [7u64, 11, 13] {
            let enc = Fe::from_u64(y).to_bytes();
            if EdwardsPoint::decompress(&enc).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "at least one small y must be off-curve");
    }

    #[test]
    fn decompress_rejects_noncanonical_y() {
        // Encode p + 3 (same as y = 3 but non-canonical).
        let mut bytes = [0xffu8; 32];
        bytes[0] = 0xf0; // p = ...ed; p + 3 = ...f0
        bytes[31] = 0x7f;
        assert_eq!(
            EdwardsPoint::decompress(&bytes),
            Err(CryptoError::InvalidPoint)
        );
    }

    #[test]
    fn compress_decompress_random_multiples() {
        let b = basepoint();
        for k in [2u64, 3, 5, 99, 1_000_003] {
            let p = b.mul_scalar(&Scalar::from_u64(k));
            assert!(p.is_on_curve());
            let enc = p.compress();
            let q = EdwardsPoint::decompress(&enc).unwrap();
            assert!(p.eq_point(&q));
        }
    }
}
#[cfg(test)]
mod table_tests {
    use super::*;
    use crate::scalar::Scalar;

    #[test]
    fn table_mul_matches_ladder() {
        for k in [0u64, 1, 2, 15, 16, 255, 1 << 20, u64::MAX] {
            let s = Scalar::from_u64(k);
            assert!(
                mul_basepoint(&s).eq_point(&basepoint().mul_scalar(&s)),
                "k = {k}"
            );
        }
        // Full-width scalars too.
        for seed in 0u8..8 {
            let s = Scalar::from_bytes_mod_order(&[seed.wrapping_mul(37); 32]);
            assert!(mul_basepoint(&s).eq_point(&basepoint().mul_scalar(&s)));
        }
    }

    #[test]
    fn table_mul_zero_is_identity() {
        assert!(mul_basepoint(&Scalar::ZERO).is_identity());
    }

    #[test]
    fn table_points_are_on_curve() {
        let s = Scalar::from_u64(0xdead_beef);
        assert!(mul_basepoint(&s).is_on_curve());
    }
}
#[cfg(test)]
mod window_tests {
    use super::*;
    use crate::scalar::Scalar;

    #[test]
    fn windowed_matches_uniform_ladder() {
        let p = basepoint().mul_scalar(&Scalar::from_u64(987654321));
        for seed in 0u8..6 {
            let s = Scalar::from_bytes_mod_order(&[seed.wrapping_mul(41).wrapping_add(3); 32]);
            assert!(p.mul_scalar(&s).eq_point(&p.mul_scalar_uniform(&s)));
        }
        assert!(p.mul_scalar(&Scalar::ZERO).is_identity());
        assert!(p.mul_scalar(&Scalar::from_u64(1)).eq_point(&p));
    }
}
