//! Differential and known-answer coverage for the wide (multi-block)
//! ChaCha20 / Poly1305 fast paths.
//!
//! The wide paths must be byte-identical to the scalar reference on every
//! input: property tests drive random keys/nonces/counters/lengths/split
//! points through both and compare, and the RFC 8439 multi-block vectors
//! pin the construction itself (not just wide-vs-scalar agreement) to
//! published ciphertexts.

use proptest::prelude::*;
use psf_crypto::chacha::{chacha20_block, chacha20_block4, chacha20_xor, chacha20_xor_scalar};
use psf_crypto::poly1305::{poly1305, poly1305_scalar, Poly1305};
use psf_crypto::ChaCha20Poly1305;

fn unhex(s: &str) -> Vec<u8> {
    let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wide_block4_matches_four_scalar_blocks(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        counter in any::<u32>(),
    ) {
        let wide = chacha20_block4(&key, counter, &nonce);
        for b in 0..4u32 {
            let scalar = chacha20_block(&key, counter.wrapping_add(b), &nonce);
            prop_assert_eq!(
                &wide[b as usize * 64..(b as usize + 1) * 64],
                &scalar[..],
                "block {} at counter {}",
                b,
                counter
            );
        }
    }

    #[test]
    fn wide_xor_matches_scalar_on_random_lengths_and_offsets(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        counter in any::<u32>(),
        data in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let mut wide = data.clone();
        let mut scalar = data.clone();
        chacha20_xor(&key, counter, &nonce, &mut wide);
        chacha20_xor_scalar(&key, counter, &nonce, &mut scalar);
        prop_assert_eq!(wide, scalar, "len {} counter {}", data.len(), counter);
    }

    #[test]
    fn multi_block_poly_matches_scalar_on_random_messages(
        key in prop::array::uniform32(any::<u8>()),
        msg in prop::collection::vec(any::<u8>(), 0..1024),
    ) {
        prop_assert_eq!(poly1305(&key, &msg), poly1305_scalar(&key, &msg), "len {}", msg.len());
    }

    #[test]
    fn poly_incremental_split_matches_oneshot(
        key in prop::array::uniform32(any::<u8>()),
        msg in prop::collection::vec(any::<u8>(), 0..512),
        cut_a in any::<u16>(),
        cut_b in any::<u16>(),
    ) {
        // Absorb the same bytes through arbitrary split points, mixing the
        // multi-block and one-block entry points.
        let mut a = (cut_a as usize) % (msg.len() + 1);
        let mut b = (cut_b as usize) % (msg.len() + 1);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let mut mac = Poly1305::new(&key);
        mac.update(&msg[..a]);
        mac.update_scalar(&msg[a..b]);
        mac.update(&msg[b..]);
        prop_assert_eq!(mac.finalize(), poly1305_scalar(&key, &msg), "splits {} {}", a, b);
    }

    #[test]
    fn aead_wide_seal_matches_scalar_seal_and_roundtrips(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        aad in prop::collection::vec(any::<u8>(), 0..64),
        payload in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let aead = ChaCha20Poly1305::new(key);
        let sealed = aead.seal(&nonce, &aad, &payload);
        prop_assert_eq!(&sealed, &aead.seal_scalar(&nonce, &aad, &payload));
        prop_assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), payload);
    }

    #[test]
    fn aead_in_place_matches_allocating_under_header_offsets(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        header_len in 0usize..32,
        payload in prop::collection::vec(any::<u8>(), 0..1024),
    ) {
        let aead = ChaCha20Poly1305::new(key);
        let mut buf = vec![0x5au8; header_len];
        buf.extend_from_slice(&payload);
        aead.seal_in_place(&nonce, b"aad", &mut buf, header_len);
        prop_assert_eq!(&buf[..header_len], &vec![0x5au8; header_len][..]);
        prop_assert_eq!(&buf[header_len..], &aead.seal(&nonce, b"aad", &payload)[..]);
        let n = aead.open_in_place(&nonce, b"aad", &mut buf[header_len..]).unwrap();
        prop_assert_eq!(&buf[header_len..header_len + n], &payload[..]);
    }
}

/// RFC 8439 §2.4.2: the 114-byte "sunscreen" plaintext encrypted with
/// counter 1. 114 bytes spans two ChaCha blocks, so this pins the
/// multi-block keystream schedule to a published vector.
#[test]
fn rfc8439_sunscreen_encryption_vector() {
    let mut key = [0u8; 32];
    for (i, b) in key.iter_mut().enumerate() {
        *b = i as u8;
    }
    let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
    let plaintext: &[u8] = b"Ladies and Gentlemen of the class of '99: If I could offer you \
                             only one tip for the future, sunscreen would be it.";
    assert_eq!(plaintext.len(), 114);
    let expected = unhex(
        "6e 2e 35 9a 25 68 f9 80 41 ba 07 28 dd 0d 69 81
         e9 7e 7a ec 1d 43 60 c2 0a 27 af cc fd 9f ae 0b
         f9 1b 65 c5 52 47 33 ab 8f 59 3d ab cd 62 b3 57
         16 39 d6 24 e6 51 52 ab 8f 53 0c 35 9f 08 61 d8
         07 ca 0d bf 50 0d 6a 61 56 a3 8e 08 8a 22 b6 5e
         52 bc 51 4d 16 cc f8 06 81 8c e9 1a b7 79 37 36
         5a f9 0b bf 74 a3 5b e6 b4 0b 8e ed f2 78 5e 42
         87 4d",
    );

    // Through the public xor entry point (scalar tail for a 114-byte input).
    let mut ct = plaintext.to_vec();
    chacha20_xor(&key, 1, &nonce, &mut ct);
    assert_eq!(ct, expected);

    // And against the wide four-block generator directly: keystream blocks
    // 1..5 begin with exactly the keystream this vector consumes.
    let ks = chacha20_block4(&key, 1, &nonce);
    let wide_ct: Vec<u8> = plaintext
        .iter()
        .zip(ks.iter())
        .map(|(p, k)| p ^ k)
        .collect();
    assert_eq!(wide_ct, expected);
}

/// RFC 8439 §2.8.2: the full ChaCha20-Poly1305 AEAD vector over the same
/// 114-byte plaintext. The MAC absorbs the 114-byte ciphertext through the
/// four-/two-/one-block Poly1305 paths in one update, so this pins the
/// multi-block accumulator to a published tag.
#[test]
fn rfc8439_aead_vector() {
    let mut key = [0u8; 32];
    for (i, b) in key.iter_mut().enumerate() {
        *b = 0x80 + i as u8;
    }
    let nonce = [
        0x07, 0x00, 0x00, 0x00, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47,
    ];
    let aad = unhex("50 51 52 53 c0 c1 c2 c3 c4 c5 c6 c7");
    let plaintext: &[u8] = b"Ladies and Gentlemen of the class of '99: If I could offer you \
                             only one tip for the future, sunscreen would be it.";
    let expected_ct = unhex(
        "d3 1a 8d 34 64 8e 60 db 7b 86 af bc 53 ef 7e c2
         a4 ad ed 51 29 6e 08 fe a9 e2 b5 a7 36 ee 62 d6
         3d be a4 5e 8c a9 67 12 82 fa fb 69 da 92 72 8b
         1a 71 de 0a 9e 06 0b 29 05 d6 a5 b6 7e cd 3b 36
         92 dd bd 7f 2d 77 8b 8c 98 03 ae e3 28 09 1b 58
         fa b3 24 e4 fa d6 75 94 55 85 80 8b 48 31 d7 bc
         3f f4 de f0 8e 4b 7a 9d e5 76 d2 65 86 ce c6 4b
         61 16",
    );
    let expected_tag = unhex("1a e1 0b 59 4f 09 e2 6a 7e 90 2e cb d0 60 06 91");

    let aead = ChaCha20Poly1305::new(key);
    let sealed = aead.seal(&nonce, &aad, plaintext);
    assert_eq!(&sealed[..114], &expected_ct[..]);
    assert_eq!(&sealed[114..], &expected_tag[..]);
    assert_eq!(sealed, aead.seal_scalar(&nonce, &aad, plaintext));
    assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), plaintext);
}
