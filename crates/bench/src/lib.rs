//! Shared workload helpers for the benchmark harnesses live in the bench
//! files themselves; this lib exists to anchor the package.
