//! **F8 — discovery tags** (paper §3.1): credential discovery with
//! tag-directed queries vs broadcast, as the number of home-node shards
//! grows. Tags bound per-query messages by the number of *relevant*
//! homes; broadcast pays one message per shard.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psf_drbac::entity::Entity;
use psf_drbac::repository::{DiscoveryTag, Repository};
use psf_drbac::DelegationBuilder;

/// `domains` homes, each holding `creds_per` credentials; the user's
/// membership lives in exactly one home.
fn build(domains: usize, creds_per: usize, tagged: bool) -> (Repository, Entity) {
    let repo = Repository::new();
    let user = Entity::with_seed("User", b"f8");
    let tag = if tagged {
        DiscoveryTag::SearchableFromSubject
    } else {
        DiscoveryTag::None
    };
    for d in 0..domains {
        let dom = Entity::with_seed(format!("Dom{d}"), b"f8");
        // The user's credential in home 0 only.
        if d == 0 {
            repo.publish(
                dom.name.clone(),
                DelegationBuilder::new(&dom)
                    .subject_entity(&user)
                    .role(dom.role("Member"))
                    .sign(),
                tag,
            );
        }
        for i in 0..creds_per {
            let other = Entity::with_seed(format!("other-{d}-{i}"), b"f8");
            repo.publish(
                dom.name.clone(),
                DelegationBuilder::new(&dom)
                    .subject_entity(&other)
                    .role(dom.role("Member"))
                    .sign(),
                tag,
            );
        }
    }
    (repo, user)
}

fn print_shape_table() {
    println!("\n# F8: discovery messages per query (user credential in 1 of N homes)");
    println!(
        "  {:>8} | {:>14} | {:>14}",
        "homes", "tagged msgs", "broadcast msgs"
    );
    for domains in [2usize, 8, 32, 128] {
        let (tagged_repo, user) = build(domains, 3, true);
        tagged_repo.reset_stats();
        let found = tagged_repo.query_by_subject(&user.as_subject());
        assert_eq!(found.len(), 1);
        let tagged_msgs = tagged_repo.stats().messages;

        let (untagged_repo, user) = build(domains, 3, false);
        untagged_repo.reset_stats();
        let found = untagged_repo.query_by_subject(&user.as_subject());
        assert_eq!(found.len(), 1);
        let broadcast_msgs = untagged_repo.stats().messages;

        println!(
            "  {:>8} | {:>14} | {:>14}",
            domains, tagged_msgs, broadcast_msgs
        );
        assert!(tagged_msgs <= broadcast_msgs);
        assert_eq!(tagged_msgs, 1, "tag directs to exactly the home shard");
    }
    println!("# shape: tagged = O(relevant homes) = 1; broadcast = O(all homes)\n");
}

fn bench(c: &mut Criterion) {
    print_shape_table();
    let mut group = c.benchmark_group("f8_discovery");
    group.sample_size(20);
    for domains in [8usize, 64, 256] {
        let (tagged, user) = build(domains, 10, true);
        group.bench_with_input(
            BenchmarkId::new("tagged_query", domains),
            &domains,
            |b, _| {
                b.iter(|| tagged.query_by_subject(&user.as_subject()));
            },
        );
        let (untagged, user) = build(domains, 10, false);
        group.bench_with_input(
            BenchmarkId::new("broadcast_query", domains),
            &domains,
            |b, _| {
                b.iter(|| untagged.query_by_subject(&user.as_subject()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
