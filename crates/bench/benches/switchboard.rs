//! **F4 — Switchboard** (paper §4.3): handshake latency, RPC throughput
//! plaintext vs encrypted (the cost of the `switchboard` exposure type
//! over `rmi`), and revocation→notification latency — the continuous-
//! authorization property that "distinguishes Switchboard from
//! abstractions like SSL/TLS".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psf_drbac::entity::{Entity, EntityRegistry};
use psf_drbac::repository::Repository;
use psf_drbac::revocation::RevocationBus;
use psf_drbac::DelegationBuilder;
use psf_switchboard::{
    pair_in_memory, pair_in_memory_plain, AuthSuite, Authorizer, Channel, ChannelConfig, ClockRef,
};
use std::time::{Duration, Instant};

struct Ctx {
    bus: RevocationBus,
    client_suite: AuthSuite,
    server_suite: AuthSuite,
    client_cred: psf_drbac::SignedDelegation,
}

fn ctx() -> Ctx {
    let registry = EntityRegistry::new();
    let repository = Repository::new();
    let bus = RevocationBus::new();
    let clock = ClockRef::new();
    let domain = Entity::with_seed("Dom", b"f4");
    let server = Entity::with_seed("Srv", b"f4");
    let client = Entity::with_seed("Cli", b"f4");
    for e in [&domain, &server, &client] {
        registry.register(e);
    }
    let client_cred = DelegationBuilder::new(&domain)
        .subject_entity(&client)
        .role(domain.role("Member"))
        .monitored()
        .sign();
    let server_cred = DelegationBuilder::new(&domain)
        .subject_entity(&server)
        .role(domain.role("Service"))
        .sign();
    let auth = |role: &str| {
        Authorizer::new(
            registry.clone(),
            repository.clone(),
            bus.clone(),
            clock.clone(),
            domain.role(role),
        )
    };
    let client_suite = AuthSuite::new(client, vec![client_cred.clone()], auth("Service"));
    let server_suite = AuthSuite::new(server, vec![server_cred], auth("Member"));
    Ctx {
        bus,
        client_suite,
        server_suite,
        client_cred,
    }
}

fn quiet() -> ChannelConfig {
    ChannelConfig {
        heartbeat_interval: None,
        rpc_timeout: Duration::from_secs(10),
        ..Default::default()
    }
}

fn secure_pair(ctx: &Ctx) -> (Channel, Channel) {
    pair_in_memory(ctx.client_suite.clone(), ctx.server_suite.clone(), quiet()).unwrap()
}

fn print_shape_table() {
    let ctx = ctx();

    // Handshake latency.
    let t = Instant::now();
    let n = 20;
    for _ in 0..n {
        let _ = secure_pair(&ctx);
    }
    let handshake = t.elapsed() / n;

    // Revocation → notification latency over a live channel.
    let (client, server) = secure_pair(&ctx);
    server.register_handler("x", |_| Ok(vec![]));
    client.call("x", b"").unwrap();
    let t = Instant::now();
    ctx.bus.revoke(&ctx.client_cred.id());
    // The server-side monitor flips synchronously on the bus broadcast;
    // measure until a client call observes the refusal.
    let mut observed = None;
    for _ in 0..1000 {
        if client.call("x", b"").is_err() {
            observed = Some(t.elapsed());
            break;
        }
    }
    println!("\n# F4: switchboard properties");
    println!("  mutual-auth handshake (in-mem):    {handshake:?}");
    println!(
        "  revocation -> refusal observed in: {:?}",
        observed.expect("refusal")
    );
    println!("  (TLS has no in-band revocation path at all — this is the differentiator)\n");
}

fn bench(c: &mut Criterion) {
    print_shape_table();
    let ctx = ctx();

    let mut group = c.benchmark_group("f4_switchboard");
    group.sample_size(20);

    group.bench_function("handshake_secure", |b| {
        b.iter(|| secure_pair(&ctx));
    });

    // RPC cost: plaintext (rmi exposure) vs AEAD (switchboard exposure),
    // across payload sizes.
    for size in [64usize, 4 << 10, 64 << 10] {
        let payload = vec![0xa5u8; size];
        let (plain_a, plain_b) = pair_in_memory_plain(quiet());
        plain_b.register_handler("echo", |a| Ok(a.to_vec()));
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("rpc_plain", size), &payload, |b, p| {
            b.iter(|| plain_a.call("echo", p).unwrap());
        });

        let (sec_a, sec_b) = secure_pair(&ctx);
        sec_b.register_handler("echo", |a| Ok(a.to_vec()));
        group.bench_with_input(BenchmarkId::new("rpc_secure", size), &payload, |b, p| {
            b.iter(|| sec_a.call("echo", p).unwrap());
        });
    }

    // Heartbeat round trip.
    let (client, _server) = secure_pair(&ctx);
    group.bench_function("heartbeat", |b| {
        b.iter(|| client.send_heartbeat().unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
