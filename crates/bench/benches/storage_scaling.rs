//! **F1 — storage scaling** (paper §5): GSI `P×U` vs CAS `C×(P+U)` vs
//! dRBAC `P+U+c`. The shape table shows the crossover structure (dRBAC
//! linear, CAS linear×C, GSI quadratic); the timed section measures the
//! cost of actually materializing dRBAC's credential set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psf_drbac::entity::{Entity, EntityName, Subject};
use psf_drbac::repository::{CredentialSource, Repository};
use psf_drbac::storage_model::{simulate_drbac, storage_comparison};
use psf_drbac::wal::{DurableRepository, FsyncPolicy, WalConfig};
use psf_drbac::{
    subject_key, AttrSet, Delegation, DelegationBuilder, DelegationKind, DiscoveryTag,
    SignedDelegation,
};
use std::path::PathBuf;

/// Build a WAL directory holding `n` committed publish records, ready for
/// a recovery-replay measurement.
fn fill_wal_dir(n: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psf-bench-recovery-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (d, _) = DurableRepository::open(
        &dir,
        WalConfig {
            fsync: FsyncPolicy::Never,
            auto_compact_appends: None,
        },
    )
    .unwrap();
    let issuer = Entity::with_seed("Issuer", b"f1-recovery");
    let user = Entity::with_seed("User", b"f1-recovery");
    for i in 0..n {
        d.repository().publish_at_issuer(
            DelegationBuilder::new(&issuer)
                .subject_entity(&user)
                .role(issuer.role(format!("R{i}")))
                .sign(),
        );
        if i.is_multiple_of(64) {
            d.bus().revoke(&format!("deadbeef{i:08x}"));
        }
    }
    d.sync().unwrap();
    dir
}

fn print_shape_table() {
    println!("\n# F1: storage entries by architecture (C=8, c=2P)");
    println!(
        "{:>6} {:>8} | {:>12} {:>12} {:>12} | winner",
        "P", "U", "GSI", "CAS", "dRBAC"
    );
    for (p, u) in [
        (5u64, 50u64),
        (10, 100),
        (50, 1_000),
        (100, 5_000),
        (500, 100_000),
    ] {
        let [gsi, cas, drbac] = storage_comparison(p, u, 8, 2 * p);
        let winner = if drbac.entries <= cas.entries && drbac.entries <= gsi.entries {
            "dRBAC"
        } else if cas.entries <= gsi.entries {
            "CAS"
        } else {
            "GSI"
        };
        println!(
            "{:>6} {:>8} | {:>12} {:>12} {:>12} | {winner}",
            p, u, gsi.entries, cas.entries, drbac.entries
        );
        // dRBAC wins everywhere; CAS overtakes GSI once P×U outgrows
        // C×(P+U) — the crossover the formulas predict.
        assert!(drbac.entries < cas.entries && drbac.entries < gsi.entries);
        if p * u > 8 * (p + u) {
            assert!(cas.entries < gsi.entries);
        }
    }
    println!("# shape: dRBAC (P+U+c) < min(CAS, GSI) at every size; CAS overtakes GSI");
    println!("# once P*U > C*(P+U) — exactly the paper's asymptotic ordering. OK\n");
}

fn bench(c: &mut Criterion) {
    print_shape_table();
    let mut group = c.benchmark_group("f1_storage");
    group.sample_size(10);
    for scale in [10u64, 100, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("drbac_materialize", scale),
            &scale,
            |b, &scale| {
                b.iter(|| simulate_drbac(scale, scale * 10, scale / 2));
            },
        );
    }

    // Repository query path: the `Arc`-sharing fast path vs the old
    // deep-clone behavior (reconstructed here by cloning every returned
    // credential out of its `Arc`).
    for n in [10usize, 100, 1_000] {
        let repo = Repository::new();
        let issuer = Entity::with_seed("Issuer", b"f1");
        let user = Entity::with_seed("User", b"f1");
        for i in 0..n {
            repo.publish_at_issuer(
                DelegationBuilder::new(&issuer)
                    .subject_entity(&user)
                    .role(issuer.role(format!("R{i}")))
                    .sign(),
            );
        }
        let subject = user.as_subject();
        group.bench_with_input(BenchmarkId::new("query_zero_copy", n), &n, |b, _| {
            b.iter(|| repo.credentials_by_subject(&subject));
        });
        group.bench_with_input(BenchmarkId::new("query_deep_clone", n), &n, |b, _| {
            b.iter(|| {
                repo.credentials_by_subject(&subject)
                    .iter()
                    .map(|c| (**c).clone())
                    .collect::<Vec<_>>()
            });
        });
    }

    // Sharded store at discovery scale: tag-directed and subject lookups
    // against the hash-sharded repository vs the single-shard (fully
    // serialized) layout, both holding the same credential set. Full runs
    // fill 10⁶ entries; `PSF_BENCH_QUICK=1` (CI bench-smoke) drops to 10⁵
    // so the sweep stays inside the smoke budget. Dummy signatures keep
    // the fill CPU-bound on the store itself — nothing here verifies them.
    let quick = std::env::var_os("PSF_BENCH_QUICK").is_some();
    let entries: usize = if quick { 100_000 } else { 1_000_000 };
    let issuer = Entity::with_seed("BenchHome", b"f1-sharded");
    let key = issuer.public_key();
    let cred_for = |i: usize| SignedDelegation {
        body: Delegation {
            subject: Subject::Entity {
                name: EntityName(format!("U{i}")),
                key,
            },
            object: issuer.role(format!("R{}", i % 1024)),
            kind: DelegationKind::SelfCertifying,
            issuer: issuer.name.clone(),
            attrs: AttrSet::new(),
            expires: None,
            monitored: false,
            serial: i as u64,
        },
        signature: psf_crypto::ed25519::Signature([0u8; 64]),
    };
    for (label, shards) in [
        ("sharded", psf_drbac::repository::DEFAULT_SHARD_COUNT),
        ("single_shard", 1),
    ] {
        let repo = Repository::with_shard_count(shards);
        for i in 0..entries {
            repo.publish(
                EntityName(format!("H{}", i % 64)),
                cred_for(i),
                DiscoveryTag::Both,
            );
        }
        let mut probe = 0usize;
        group.bench_with_input(
            BenchmarkId::new(format!("{label}_tag_lookup"), entries),
            &entries,
            |b, &entries| {
                b.iter(|| {
                    probe = (probe.wrapping_mul(6364136223846793005).wrapping_add(1)) % entries;
                    let skey = subject_key(&Subject::Entity {
                        name: EntityName(format!("U{probe}")),
                        key,
                    });
                    repo.query_by_subject_key(&skey).len()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{label}_subject_lookup"), entries),
            &entries,
            |b, &entries| {
                b.iter(|| {
                    probe = (probe.wrapping_mul(6364136223846793005).wrapping_add(1)) % entries;
                    let subject = Subject::Entity {
                        name: EntityName(format!("U{probe}")),
                        key,
                    };
                    repo.query_by_subject(&subject).len()
                });
            },
        );
    }

    // Crash recovery: cold `Repository::recover` replay of an `n`-record
    // WAL — the restart-latency row `psf bench --check` gates at 10⁵
    // records (here sized down so the criterion sweep stays fast).
    for n in [1_000u64, 10_000] {
        let dir = fill_wal_dir(n);
        group.bench_with_input(BenchmarkId::new("recovery_replay", n), &n, |b, &n| {
            b.iter(|| {
                let (repo, _bus, report) = Repository::recover(&dir).unwrap();
                assert_eq!(
                    report.records_replayed,
                    n as usize + n.div_ceil(64) as usize
                );
                repo.len()
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
