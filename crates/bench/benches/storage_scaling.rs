//! **F1 — storage scaling** (paper §5): GSI `P×U` vs CAS `C×(P+U)` vs
//! dRBAC `P+U+c`. The shape table shows the crossover structure (dRBAC
//! linear, CAS linear×C, GSI quadratic); the timed section measures the
//! cost of actually materializing dRBAC's credential set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psf_drbac::entity::Entity;
use psf_drbac::repository::{CredentialSource, Repository};
use psf_drbac::storage_model::{simulate_drbac, storage_comparison};
use psf_drbac::wal::{DurableRepository, FsyncPolicy, WalConfig};
use psf_drbac::DelegationBuilder;
use std::path::PathBuf;

/// Build a WAL directory holding `n` committed publish records, ready for
/// a recovery-replay measurement.
fn fill_wal_dir(n: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psf-bench-recovery-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (d, _) = DurableRepository::open(
        &dir,
        WalConfig {
            fsync: FsyncPolicy::Never,
            auto_compact_appends: None,
        },
    )
    .unwrap();
    let issuer = Entity::with_seed("Issuer", b"f1-recovery");
    let user = Entity::with_seed("User", b"f1-recovery");
    for i in 0..n {
        d.repository().publish_at_issuer(
            DelegationBuilder::new(&issuer)
                .subject_entity(&user)
                .role(issuer.role(format!("R{i}")))
                .sign(),
        );
        if i.is_multiple_of(64) {
            d.bus().revoke(&format!("deadbeef{i:08x}"));
        }
    }
    d.sync().unwrap();
    dir
}

fn print_shape_table() {
    println!("\n# F1: storage entries by architecture (C=8, c=2P)");
    println!(
        "{:>6} {:>8} | {:>12} {:>12} {:>12} | winner",
        "P", "U", "GSI", "CAS", "dRBAC"
    );
    for (p, u) in [
        (5u64, 50u64),
        (10, 100),
        (50, 1_000),
        (100, 5_000),
        (500, 100_000),
    ] {
        let [gsi, cas, drbac] = storage_comparison(p, u, 8, 2 * p);
        let winner = if drbac.entries <= cas.entries && drbac.entries <= gsi.entries {
            "dRBAC"
        } else if cas.entries <= gsi.entries {
            "CAS"
        } else {
            "GSI"
        };
        println!(
            "{:>6} {:>8} | {:>12} {:>12} {:>12} | {winner}",
            p, u, gsi.entries, cas.entries, drbac.entries
        );
        // dRBAC wins everywhere; CAS overtakes GSI once P×U outgrows
        // C×(P+U) — the crossover the formulas predict.
        assert!(drbac.entries < cas.entries && drbac.entries < gsi.entries);
        if p * u > 8 * (p + u) {
            assert!(cas.entries < gsi.entries);
        }
    }
    println!("# shape: dRBAC (P+U+c) < min(CAS, GSI) at every size; CAS overtakes GSI");
    println!("# once P*U > C*(P+U) — exactly the paper's asymptotic ordering. OK\n");
}

fn bench(c: &mut Criterion) {
    print_shape_table();
    let mut group = c.benchmark_group("f1_storage");
    group.sample_size(10);
    for scale in [10u64, 100, 1_000] {
        group.bench_with_input(
            BenchmarkId::new("drbac_materialize", scale),
            &scale,
            |b, &scale| {
                b.iter(|| simulate_drbac(scale, scale * 10, scale / 2));
            },
        );
    }

    // Repository query path: the `Arc`-sharing fast path vs the old
    // deep-clone behavior (reconstructed here by cloning every returned
    // credential out of its `Arc`).
    for n in [10usize, 100, 1_000] {
        let repo = Repository::new();
        let issuer = Entity::with_seed("Issuer", b"f1");
        let user = Entity::with_seed("User", b"f1");
        for i in 0..n {
            repo.publish_at_issuer(
                DelegationBuilder::new(&issuer)
                    .subject_entity(&user)
                    .role(issuer.role(format!("R{i}")))
                    .sign(),
            );
        }
        let subject = user.as_subject();
        group.bench_with_input(BenchmarkId::new("query_zero_copy", n), &n, |b, _| {
            b.iter(|| repo.credentials_by_subject(&subject));
        });
        group.bench_with_input(BenchmarkId::new("query_deep_clone", n), &n, |b, _| {
            b.iter(|| {
                repo.credentials_by_subject(&subject)
                    .iter()
                    .map(|c| (**c).clone())
                    .collect::<Vec<_>>()
            });
        });
    }

    // Crash recovery: cold `Repository::recover` replay of an `n`-record
    // WAL — the restart-latency row `psf bench --check` gates at 10⁵
    // records (here sized down so the criterion sweep stays fast).
    for n in [1_000u64, 10_000] {
        let dir = fill_wal_dir(n);
        group.bench_with_input(BenchmarkId::new("recovery_replay", n), &n, |b, &n| {
            b.iter(|| {
                let (repo, _bus, report) = Repository::recover(&dir).unwrap();
                assert_eq!(
                    report.records_replayed,
                    n as usize + n.div_ceil(64) as usize
                );
                repo.len()
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
