//! Substrate microbenchmarks: the first-party crypto primitives every
//! credential signature and Switchboard record rides on. Not a paper
//! figure per se, but contextualizes the F4/F5 numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psf_crypto::{sha256, sha512, ChaCha20Poly1305, SigningKey};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    group.sample_size(30);

    for size in [64usize, 1 << 10, 64 << 10] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| sha256(d));
        });
        group.bench_with_input(BenchmarkId::new("sha512", size), &data, |b, d| {
            b.iter(|| sha512(d));
        });
        let aead = ChaCha20Poly1305::new([7u8; 32]);
        group.bench_with_input(BenchmarkId::new("aead_seal", size), &data, |b, d| {
            b.iter(|| aead.seal(&[0u8; 12], b"", d));
        });
    }

    let sk = SigningKey::from_seed([1u8; 32]);
    let msg = b"dRBAC-delegation-v1 benchmark credential body";
    let sig = sk.sign(msg);
    group.bench_function("ed25519_sign", |b| {
        b.iter(|| sk.sign(msg));
    });
    group.bench_function("ed25519_verify", |b| {
        b.iter(|| sk.verifying_key().verify(msg, &sig).unwrap());
    });
    group.bench_function("x25519_dh", |b| {
        let secret = [9u8; 32];
        let peer = psf_crypto::x25519::x25519_base(&[5u8; 32]);
        b.iter(|| psf_crypto::x25519(&secret, &peer));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
