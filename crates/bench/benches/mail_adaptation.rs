//! **F7 — mail-application QoS adaptation** (paper §2.2): end-to-end
//! request latency (simulated network model + real execution) for the
//! three deployment strategies the planner chooses among, and the
//! crossover bandwidth below which the cache view wins.

use criterion::{criterion_group, criterion_main, Criterion};
use psf_core::Goal;
use psf_mail::{MailWorld, Message};

/// Analytic per-request time for a remote fetch: WAN round trip +
/// serialization of the reply at the bottleneck bandwidth.
fn remote_fetch_ms(w: &MailWorld, reply_bytes: u64) -> f64 {
    let path = w.sites.network.route(w.sites.sd[1], w.sites.ny[0]).unwrap();
    2.0 * path.latency_ms + path.transfer_time_ms(reply_bytes) - path.latency_ms
}

fn print_shape_table() {
    let w = MailWorld::build(2);
    println!("\n# F7a: per-fetch time in San Diego vs strategy (10 KiB inbox)");
    let direct = remote_fetch_ms(&w, 10 << 10);
    println!("  direct over WAN:       {direct:>8.1} ms/request");
    println!(
        "  cache view (local):    {:>8.1} ms/request  + one-time sync",
        1.0
    );
    println!(
        "  enc/dec pair:          {:>8.1} ms/request  (adds CPU, removes exposure)",
        direct
    );

    println!("\n# F7b: cache crossover vs WAN bandwidth (break-even requests)");
    println!(
        "  {:>10} | {:>14} | {:>10}",
        "WAN Mbps", "direct ms/req", "break-even"
    );
    for bw in [50.0f64, 10.0, 2.0, 0.5] {
        w.sites.network.set_bandwidth(w.sites.wan_ny_sd, bw);
        let per_req = remote_fetch_ms(&w, 10 << 10);
        // Cache sync costs one 100 KiB transfer; local serve is ~1 ms.
        let path = w.sites.network.route(w.sites.sd[1], w.sites.ny[0]).unwrap();
        let sync = path.transfer_time_ms(100 << 10);
        let breakeven = (sync / (per_req - 1.0)).ceil().max(1.0);
        println!("  {:>10.1} | {:>14.1} | {:>10.0}", bw, per_req, breakeven);
    }
    println!("# shape: the lower the bandwidth, the faster the cache amortizes (crossover\n# shifts toward 1 request) — the paper's low-bandwidth adaptation case.\n");
}

fn bench(c: &mut Criterion) {
    print_shape_table();
    let mut group = c.benchmark_group("f7_mail");
    group.sample_size(10);

    // Real end-to-end costs of the deployed chains (execution time, not
    // the simulated network model).
    let w = MailWorld::build(2);
    let private_goal = Goal::private("MailI", w.sites.sd[1]);
    let (_, private_dep) = w.deliver(&private_goal).unwrap();
    let msg = Message::new("bob", "alice", "bench", "x".repeat(512)).to_bytes();
    group.bench_function("send_through_cipher_pair", |b| {
        b.iter(|| private_dep.endpoint.call_remote("send", &msg).unwrap());
    });
    // Fresh world for fetch so the send benchmark's accumulated inbox
    // doesn't distort the fetch payload size.
    let wf = MailWorld::build(2);
    let (_, fetch_dep) = wf.deliver(&Goal::private("MailI", wf.sites.sd[1])).unwrap();
    for _ in 0..16 {
        fetch_dep.endpoint.call_remote("send", &msg).unwrap();
    }
    group.bench_function("fetch_through_cipher_pair", |b| {
        b.iter(|| fetch_dep.endpoint.call_remote("fetch", b"alice").unwrap());
    });

    let wc = MailWorld::build(2);
    let cache_goal = Goal {
        iface: "MailI".into(),
        client_node: wc.sites.sd[1],
        max_latency_ms: Some(10.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };
    let (_, cache_dep) = wc.deliver(&cache_goal).unwrap();
    for _ in 0..16 {
        cache_dep.endpoint.call_remote("send", &msg).unwrap();
    }
    group.bench_function("fetch_through_cache_view", |b| {
        b.iter(|| cache_dep.endpoint.call_remote("fetch", b"alice").unwrap());
    });

    // Plan-only latency for the full dRBAC-constrained mail world.
    group.bench_function("plan_private_sd", |b| {
        b.iter(|| w.plan_service(&private_goal).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
