//! **F6 — deployment flexibility** (paper §4.2): "views increase the
//! likelihood of the planner finding a component deployment in
//! constrained environments." Over seeded random multi-domain
//! topologies with constrained goals, the shape table compares success
//! rates with and without view templates; the timed section measures
//! planning latency (sequential vs parallel expansion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psf_core::{ComponentSpec, Effect, Goal, PermissiveOracle, Planner, PlannerConfig, Registrar};
use psf_netsim::{random_topology, TopologyConfig};

fn registrar(with_views: bool) -> Registrar {
    let r = Registrar::new();
    r.register(ComponentSpec::source("MailServer", "MailI"));
    r.register(
        ComponentSpec::processor("Encryptor", "MailI", "MailI", Effect::Encrypt)
            .requires_encrypted(false)
            .cpu(10),
    );
    r.register(
        ComponentSpec::processor("Decryptor", "MailI", "MailI", Effect::Decrypt)
            .requires_encrypted(true)
            .cpu(10),
    );
    if with_views {
        r.register(
            ComponentSpec::processor("ViewMailServer", "MailI", "MailI", Effect::Cache)
                .cpu(20)
                .view_of("MailServer"),
        );
    }
    r
}

/// Success rate of a tight-latency goal across `trials` random topologies.
fn success_rate(with_views: bool, trials: u64, parallel: usize) -> (f64, f64) {
    let mut successes = 0u64;
    let mut total_plan_len = 0u64;
    for seed in 0..trials {
        let cfg = TopologyConfig {
            domains: 5,
            nodes_per_domain: 2,
            extra_wan_prob: 0.25,
            wan_secure_prob: 0.2,
            seed,
        };
        let (network, domains) = random_topology(&cfg);
        let r = registrar(with_views);
        r.record_deployed("MailServer", domains[0][0]);
        let planner = Planner::new(
            &r,
            &network,
            &PermissiveOracle,
            PlannerConfig {
                parallel_expansion: parallel,
                ..Default::default()
            },
        );
        // Demand low latency in the farthest domain — unreachable without
        // a cache when WAN latencies are 20–80 ms.
        let goal = Goal {
            iface: "MailI".into(),
            client_node: domains[cfg.domains - 1][1],
            max_latency_ms: Some(15.0),
            require_privacy: false,
            require_plaintext_delivery: true,
        };
        if let Ok((plan, _)) = planner.plan(&goal) {
            successes += 1;
            total_plan_len += plan.steps.len() as u64;
        }
    }
    (
        successes as f64 / trials as f64,
        if successes > 0 {
            total_plan_len as f64 / successes as f64
        } else {
            0.0
        },
    )
}

fn print_memo_table() {
    println!("\n# F6b: dominance-memo pruning on one constrained topology");
    let cfg = TopologyConfig {
        domains: 8,
        nodes_per_domain: 3,
        extra_wan_prob: 0.3,
        wan_secure_prob: 0.2,
        seed: 7,
    };
    let (network, doms) = random_topology(&cfg);
    let r = registrar(true);
    r.record_deployed("MailServer", doms[0][0]);
    let goal = Goal {
        iface: "MailI".into(),
        client_node: doms[7][0],
        max_latency_ms: Some(15.0),
        require_privacy: true,
        require_plaintext_delivery: true,
    };
    let planner = Planner::new(&r, &network, &PermissiveOracle, PlannerConfig::default());
    if let Ok((_, stats)) = planner.plan(&goal) {
        println!(
            "  expanded {} generated {} memo-pruned {} auth-pruned {}",
            stats.expanded, stats.generated, stats.memo_pruned, stats.pruned_by_auth
        );
    } else {
        println!("  (goal infeasible on this seed)");
    }
    println!();
}

fn print_shape_table() {
    let trials = 40;
    let (with, with_len) = success_rate(true, trials, 1);
    let (without, _) = success_rate(false, trials, 1);
    println!("\n# F6: planner success on tight-latency goals ({trials} random topologies)");
    println!(
        "  with views:    {:>5.1}%  (avg plan length {with_len:.1})",
        with * 100.0
    );
    println!("  without views: {:>5.1}%", without * 100.0);
    assert!(
        with > without,
        "views must strictly increase success rate ({with} vs {without})"
    );
    println!("# shape: views strictly enlarge the feasible set (paper S4.2) OK\n");
}

fn bench(c: &mut Criterion) {
    print_shape_table();
    print_memo_table();
    let mut group = c.benchmark_group("f6_planner");
    group.sample_size(10);

    for domains in [4usize, 8, 12] {
        let cfg = TopologyConfig {
            domains,
            nodes_per_domain: 3,
            extra_wan_prob: 0.3,
            wan_secure_prob: 0.2,
            seed: 7,
        };
        let (network, doms) = random_topology(&cfg);
        let r = registrar(true);
        r.record_deployed("MailServer", doms[0][0]);
        let goal = Goal {
            iface: "MailI".into(),
            client_node: doms[domains - 1][0],
            max_latency_ms: Some(15.0),
            require_privacy: true,
            require_plaintext_delivery: true,
        };
        for parallel in [1usize, 4] {
            let planner = Planner::new(
                &r,
                &network,
                &PermissiveOracle,
                PlannerConfig {
                    parallel_expansion: parallel,
                    ..Default::default()
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("plan_k{parallel}"), domains),
                &goal,
                |b, goal| {
                    b.iter(|| {
                        let _ = planner.plan(goal);
                    });
                },
            );
        }
        // Warm re-plan: the adaptation-loop case where a provider already
        // runs next to the client, so the search terminates almost
        // immediately. Cold-vs-warm here bounds what the supervisor pays
        // per tick when nothing changed.
        let r_warm = registrar(true);
        r_warm.record_deployed("MailServer", doms[0][0]);
        r_warm.record_deployed("MailServer", doms[domains - 1][0]);
        let planner = Planner::new(
            &r_warm,
            &network,
            &PermissiveOracle,
            PlannerConfig::default(),
        );
        group.bench_with_input(
            BenchmarkId::new("plan_warm_local_provider", domains),
            &goal,
            |b, goal| {
                b.iter(|| {
                    let _ = planner.plan(goal);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
