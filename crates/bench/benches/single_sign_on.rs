//! **F5 — single sign-on** (paper §4.2): authorize-once-at-instantiation
//! (SSO token + monitor) vs re-authorizing every request (full proof
//! search). The shape table finds the request count where SSO's fixed
//! setup cost amortizes — it is tiny, which is the paper's point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psf_drbac::entity::{Entity, EntityRegistry};
use psf_drbac::proof::ProofEngine;
use psf_drbac::repository::Repository;
use psf_drbac::revocation::RevocationBus;
use psf_drbac::DelegationBuilder;
use psf_views::ViewAcl;
use std::time::Instant;

struct World {
    registry: EntityRegistry,
    repo: Repository,
    bus: RevocationBus,
    domain: Entity,
    user: Entity,
    creds: Vec<psf_drbac::SignedDelegation>,
    acl: ViewAcl,
}

fn world(depth: usize) -> World {
    let registry = EntityRegistry::new();
    let repo = Repository::new();
    let bus = RevocationBus::new();
    let domain = Entity::with_seed("D0", b"f5");
    let user = Entity::with_seed("User", b"f5");
    registry.register(&domain);
    registry.register(&user);
    let mut creds = Vec::new();
    let mut prev_role = domain.role("R0");
    let mut prev = domain.clone();
    for i in 1..depth {
        let d = Entity::with_seed(format!("D{i}"), b"f5");
        registry.register(&d);
        creds.push(
            DelegationBuilder::new(&prev)
                .subject_role(d.role(format!("R{i}")))
                .role(prev_role.clone())
                .sign(),
        );
        prev_role = d.role(format!("R{i}"));
        prev = d;
    }
    creds.push(
        DelegationBuilder::new(&prev)
            .subject_entity(&user)
            .role(prev_role)
            .sign(),
    );
    let acl = ViewAcl::new().rule(domain.role("R0"), "FullView");
    World {
        registry,
        repo,
        bus,
        domain,
        user,
        creds,
        acl,
    }
}

fn print_shape_table() {
    let w = world(5);
    let engine = ProofEngine::new(&w.registry, &w.repo, &w.bus, 0);

    // Cost of one full authorization.
    let t = Instant::now();
    let reps = 200;
    for _ in 0..reps {
        engine
            .prove(&w.user.as_subject(), &w.domain.role("R0"), &w.creds)
            .unwrap();
    }
    let per_auth = t.elapsed() / reps;

    // Cost of one token check.
    let token = w
        .acl
        .authorize_once(
            &w.user.as_subject(),
            &w.creds,
            &w.registry,
            &w.repo,
            &w.bus,
            0,
        )
        .unwrap();
    let t = Instant::now();
    let checks = 1_000_000u32;
    for _ in 0..checks {
        assert!(token.is_valid());
    }
    let per_check = t.elapsed() / checks;

    let ratio = per_auth.as_nanos().max(1) / per_check.as_nanos().max(1);
    println!("\n# F5: per-request authorization vs single sign-on (5-edge chain)");
    println!("  full proof search per request: {per_auth:?}");
    println!("  SSO token check per request:   {per_check:?}");
    println!("  ratio: ~{ratio}x  -> SSO amortizes after the very first request\n");
}

fn bench(c: &mut Criterion) {
    print_shape_table();
    let mut group = c.benchmark_group("f5_sso");
    group.sample_size(20);

    for depth in [2usize, 5, 10] {
        let w = world(depth);
        let engine = ProofEngine::new(&w.registry, &w.repo, &w.bus, 0);
        group.bench_with_input(
            BenchmarkId::new("per_request_proof", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    engine
                        .prove(&w.user.as_subject(), &w.domain.role("R0"), &w.creds)
                        .unwrap()
                });
            },
        );
        let token = w
            .acl
            .authorize_once(
                &w.user.as_subject(),
                &w.creds,
                &w.registry,
                &w.repo,
                &w.bus,
                0,
            )
            .unwrap();
        group.bench_with_input(BenchmarkId::new("sso_check", depth), &depth, |b, _| {
            b.iter(|| token.is_valid());
        });
        group.bench_with_input(BenchmarkId::new("sso_mint", depth), &depth, |b, _| {
            b.iter(|| {
                w.acl
                    .authorize_once(
                        &w.user.as_subject(),
                        &w.creds,
                        &w.registry,
                        &w.repo,
                        &w.bus,
                        0,
                    )
                    .unwrap()
            });
        });
        // Warm mint: repeat token issuance for the same (subject, role,
        // presented set) is answered from the proof cache — the cost a
        // Guard pays per reconnect once the first client signed on.
        let cache = psf_drbac::AuthCache::new();
        w.acl
            .authorize_once_cached(
                &w.user.as_subject(),
                &w.creds,
                &w.registry,
                &w.repo,
                &w.bus,
                0,
                &cache,
            )
            .unwrap();
        group.bench_with_input(BenchmarkId::new("sso_mint_warm", depth), &depth, |b, _| {
            b.iter(|| {
                w.acl
                    .authorize_once_cached(
                        &w.user.as_subject(),
                        &w.creds,
                        &w.registry,
                        &w.repo,
                        &w.bus,
                        0,
                        &cache,
                    )
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
