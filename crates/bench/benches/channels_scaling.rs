//! **Channel-count scaling** — how many live secure channels one process
//! holds once the Switchboard reactor services them (PR 9: epoll shards,
//! timer-wheel heartbeats, zero threads per TCP channel).
//!
//! The harness establishes a fleet of reactor-backed secure TCP channels
//! (both endpoints in-process, spread over loopback addresses), leaves
//! timer-wheel heartbeats running across the whole fleet, and then
//! measures the operations that matter at scale: RPC latency through one
//! channel while the rest idle-heartbeat, an explicit heartbeat
//! round-trip under fleet load, and the per-batch establishment rate.
//!
//! Full runs target 100k channels; `PSF_BENCH_QUICK=1` (CI bench-smoke)
//! drops to 10k. Either way the fleet is clamped to what
//! `RLIMIT_NOFILE` permits — each in-process channel pair costs 4 fds —
//! and the achieved count is printed so clamped runs are never mistaken
//! for full ones. `psf bench --json` re-measures the same shape outside
//! criterion (with a thread-per-connection RSS baseline) and writes the
//! gated numbers to `BENCH_pr9.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psf_drbac::entity::{Entity, EntityRegistry};
use psf_drbac::repository::Repository;
use psf_drbac::revocation::RevocationBus;
use psf_drbac::DelegationBuilder;
use psf_switchboard::{
    connect_tcp, listen_tcp, AuthSuite, Authorizer, Channel, ChannelBackend, ChannelConfig,
    ClockRef,
};
use std::time::Duration;

const LANES: usize = 8;

fn suites() -> (AuthSuite, AuthSuite) {
    let registry = EntityRegistry::new();
    let repository = Repository::new();
    let bus = RevocationBus::new();
    let clock = ClockRef::new();
    let domain = Entity::with_seed("Dom", b"f9ch");
    let server = Entity::with_seed("Srv", b"f9ch");
    let client = Entity::with_seed("Cli", b"f9ch");
    for e in [&domain, &server, &client] {
        registry.register(e);
    }
    let client_cred = DelegationBuilder::new(&domain)
        .subject_entity(&client)
        .role(domain.role("Member"))
        .sign();
    let server_cred = DelegationBuilder::new(&domain)
        .subject_entity(&server)
        .role(domain.role("Service"))
        .sign();
    let auth = |role: &str| {
        Authorizer::new(
            registry.clone(),
            repository.clone(),
            bus.clone(),
            clock.clone(),
            domain.role(role),
        )
    };
    (
        AuthSuite::new(client, vec![client_cred], auth("Service")),
        AuthSuite::new(server, vec![server_cred], auth("Member")),
    )
}

fn config(heartbeat: Option<Duration>) -> ChannelConfig {
    ChannelConfig {
        heartbeat_interval: heartbeat,
        rpc_timeout: Duration::from_secs(10),
        backend: ChannelBackend::Reactor,
    }
}

/// Establish `n` secure reactor channel pairs across `LANES` loopback
/// listener addresses with one connector/acceptor thread pair per lane.
fn establish(
    n: usize,
    client_suite: &AuthSuite,
    server_suite: &AuthSuite,
    heartbeat: Option<Duration>,
) -> (Vec<Channel>, Vec<Channel>) {
    let lanes = LANES.min(n.max(1));
    let listeners: Vec<_> = (0..lanes)
        .map(|lane| listen_tcp(&format!("127.0.0.{}:0", lane + 1)).expect("listen"))
        .collect();
    std::thread::scope(|s| {
        let mut acceptors = Vec::new();
        let mut connectors = Vec::new();
        for (lane, listener) in listeners.iter().enumerate() {
            let count = n / lanes + usize::from(lane < n % lanes);
            let addr = listener.local_addr().expect("addr").to_string();
            acceptors.push(s.spawn(move || -> Vec<Channel> {
                (0..count)
                    .map(|_| listener.accept(server_suite, config(heartbeat)).unwrap())
                    .collect()
            }));
            connectors.push(s.spawn(move || -> Vec<Channel> {
                (0..count)
                    .map(|_| connect_tcp(&addr, client_suite, config(heartbeat)).unwrap())
                    .collect()
            }));
        }
        let mut servers = Vec::with_capacity(n);
        let mut clients = Vec::with_capacity(n);
        for a in acceptors {
            servers.extend(a.join().expect("acceptor"));
        }
        for c in connectors {
            clients.extend(c.join().expect("connector"));
        }
        (clients, servers)
    })
}

/// Channels the fd budget allows: 4 fds per in-process pair, headroom
/// for listeners/epoll/wakeups.
fn fd_clamp(target: usize) -> usize {
    let (soft, _hard) = psf_switchboard::reactor::raise_nofile_limit();
    target.min(((soft as usize).saturating_sub(1024) / 4).max(64))
}

fn bench_channels_scaling(c: &mut Criterion) {
    let quick = std::env::var_os("PSF_BENCH_QUICK").is_some();
    let target: usize = if quick { 10_000 } else { 100_000 };
    let fleet_size = fd_clamp(target);
    if fleet_size < target {
        eprintln!("channels_scaling: RLIMIT_NOFILE clamps the fleet to {fleet_size} channels");
    }
    let (client_suite, server_suite) = suites();
    let hb = Duration::from_secs(1);

    let mut group = c.benchmark_group("channels_scaling");
    group.sample_size(10);

    // Establishment rate, measured on small batches so iteration stays
    // inside the fd budget (channels torn down between iterations).
    group.bench_function(BenchmarkId::new("establish_batch", 64), |b| {
        b.iter(|| {
            let (clients, servers) = establish(64, &client_suite, &server_suite, None);
            for ch in clients.iter().chain(servers.iter()) {
                ch.close();
            }
            (clients, servers)
        });
    });

    // The fleet: every channel heartbeating off the shard timer wheels.
    let (clients, servers) = establish(fleet_size, &client_suite, &server_suite, Some(hb));
    for s in &servers {
        s.register_handler("echo", |args| Ok(args.to_vec()));
    }
    eprintln!(
        "channels_scaling: fleet of {fleet_size} secure channels live on {} reactor shard(s)",
        psf_switchboard::reactor::shard_count()
    );

    // RPC through one channel while `fleet_size - 1` others idle with
    // live heartbeats: the cost of sharing a shard with the fleet.
    let payload = vec![0xa5u8; 64];
    group.bench_with_input(
        BenchmarkId::new("rpc_64b_under_fleet", fleet_size),
        &payload,
        |b, p| {
            b.iter(|| clients[0].call("echo", p).unwrap());
        },
    );

    // Explicit heartbeat round-trip under fleet load.
    group.bench_with_input(
        BenchmarkId::new("heartbeat_rtt_under_fleet", fleet_size),
        &fleet_size,
        |b, _| {
            b.iter(|| {
                clients[1].send_heartbeat().unwrap();
            });
        },
    );

    group.finish();
    for ch in clients.iter().chain(servers.iter()) {
        ch.close();
    }
}

criterion_group!(benches, bench_channels_scaling);
criterion_main!(benches);
