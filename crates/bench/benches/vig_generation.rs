//! **F3 — view generation cost** (paper §4.3): "despite their
//! flexibility, views incur management costs proportional to their
//! utility" — VIG latency scales with the size of the generated view,
//! and lazy (deferred) generation of a view family only pays for the
//! views actually deployed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psf_views::{ComponentClass, ExposureType, MethodLibrary, ViewSpec, Vig};
use std::sync::Arc;

/// A component with `n_ifaces` interfaces × `methods_per` methods each.
fn wide_class(n_ifaces: usize, methods_per: usize) -> Arc<ComponentClass> {
    let mut b = ComponentClass::builder("Wide");
    for i in 0..n_ifaces {
        let methods: Vec<String> = (0..methods_per).map(|m| format!("m_{i}_{m}")).collect();
        b = b.interface(format!("I{i}"), methods.clone());
        b = b.field(format!("f{i}"), "String");
        for m in methods {
            let field = format!("f{i}");
            b = b.method(
                m.clone(),
                format!("String {m}()"),
                &[field.as_str()],
                false,
                |st, _| Ok(st.get("f0")),
            );
        }
    }
    b.build().unwrap()
}

fn full_spec(n_ifaces: usize) -> ViewSpec {
    let mut s = ViewSpec::new("WideView", "Wide");
    for i in 0..n_ifaces {
        s = s.restrict(format!("I{i}"), ExposureType::Local);
    }
    s
}

fn print_shape_table() {
    println!("\n# F3: VIG output size scales with view utility (methods kept)");
    println!(
        "{:>8} {:>8} | {:>10} {:>12}",
        "ifaces", "methods", "entries", "src bytes"
    );
    for n in [1usize, 2, 4, 8, 16] {
        let class = wide_class(n, 4);
        let vig = Vig::new(MethodLibrary::new());
        let view = vig.generate(&class, &full_spec(n)).unwrap();
        println!(
            "{:>8} {:>8} | {:>10} {:>12}",
            n,
            n * 4,
            view.entries.len(),
            view.source.len()
        );
    }
    println!("# lazy generation: a family of K views costs K×gen only if all deploy;");
    println!("# deferring to first deployment pays exactly for what is used.\n");
}

fn bench(c: &mut Criterion) {
    print_shape_table();
    let mut group = c.benchmark_group("f3_vig");
    group.sample_size(30);

    // Generation latency vs view size.
    for n in [1usize, 4, 16] {
        let class = wide_class(n, 4);
        let spec = full_spec(n);
        let vig = Vig::new(MethodLibrary::new());
        group.bench_with_input(BenchmarkId::new("generate_ifaces", n), &n, |b, _| {
            b.iter(|| vig.generate(&class, &spec).unwrap());
        });
    }

    // XML parse + generate (the full Table 3(b) pipeline).
    let xml = psf_mail::views::PARTNER_XML;
    let class = psf_mail::mail_client_class();
    let vig = Vig::new(psf_mail::mail_method_library());
    group.bench_function("parse_and_generate_partner", |b| {
        b.iter(|| {
            let spec = ViewSpec::parse_xml(xml).unwrap();
            vig.generate(&class, &spec).unwrap()
        });
    });

    // Instantiation (the per-deployment cost once generated).
    let generated = vig
        .generate(&class, &ViewSpec::parse_xml(xml).unwrap())
        .unwrap();
    let original = class.instantiate();
    group.bench_function("instantiate_partner", |b| {
        b.iter(|| {
            generated
                .instantiate(
                    Some(psf_views::binding::InProcessRemote::switchboard(
                        original.clone(),
                    )),
                    psf_views::CoherencePolicy::WriteThrough,
                    8,
                    b"",
                )
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
