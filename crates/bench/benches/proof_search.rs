//! **F2 — proof-graph search** (paper §3.1): proof construction cost vs
//! delegation-chain depth and vs credential-set size (decoy credentials
//! in the repository), plus independent proof re-verification cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psf_drbac::entity::{Entity, EntityRegistry, RoleName, Subject};
use psf_drbac::proof::ProofEngine;
use psf_drbac::repository::Repository;
use psf_drbac::revocation::RevocationBus;
use psf_drbac::{AuthCache, DelegationBuilder};

struct ProofWorld {
    registry: EntityRegistry,
    repo: Repository,
    bus: RevocationBus,
    user: Entity,
    target: RoleName,
}

/// Chain of `depth` role mappings + `decoys` irrelevant credentials.
fn build_world(depth: usize, decoys: usize) -> ProofWorld {
    let registry = EntityRegistry::new();
    let repo = Repository::new();
    let bus = RevocationBus::new();
    let user = Entity::with_seed("User", b"bench");
    registry.register(&user);
    let mut domains = Vec::new();
    for i in 0..depth {
        let d = Entity::with_seed(format!("D{i}"), b"bench");
        registry.register(&d);
        domains.push(d);
    }
    repo.publish_at_issuer(
        DelegationBuilder::new(&domains[depth - 1])
            .subject_entity(&user)
            .role(domains[depth - 1].role("R"))
            .sign(),
    );
    for i in 0..depth - 1 {
        repo.publish_at_issuer(
            DelegationBuilder::new(&domains[i])
                .subject_role(domains[i + 1].role("R"))
                .role(domains[i].role("R"))
                .sign(),
        );
    }
    for i in 0..decoys {
        let d = Entity::with_seed(format!("X{i}"), b"bench");
        registry.register(&d);
        repo.publish_at_issuer(
            DelegationBuilder::new(&d)
                .subject_role(RoleName::new("No.Where", "Z"))
                .role(d.role("Z"))
                .sign(),
        );
    }
    let target = domains[0].role("R");
    ProofWorld {
        registry,
        repo,
        bus,
        user,
        target,
    }
}

fn prove(w: &ProofWorld) -> psf_drbac::Proof {
    let engine = ProofEngine::new(&w.registry, &w.repo, &w.bus, 0);
    engine
        .prove(
            &Subject::Entity {
                name: w.user.name.clone(),
                key: w.user.public_key(),
            },
            &w.target,
            &[],
        )
        .unwrap()
        .0
}

fn print_shape_table() {
    println!("\n# F2: proof search work vs chain depth (credentials examined)");
    println!(
        "{:>6} | {:>10} {:>12} {:>12}",
        "depth", "edges", "examined", "expanded"
    );
    for depth in [1usize, 2, 4, 8, 16] {
        let w = build_world(depth, 50);
        let engine = ProofEngine::new(&w.registry, &w.repo, &w.bus, 0);
        let (proof, stats) = engine
            .prove(
                &Subject::Entity {
                    name: w.user.name.clone(),
                    key: w.user.public_key(),
                },
                &w.target,
                &[],
            )
            .unwrap();
        println!(
            "{:>6} | {:>10} {:>12} {:>12}",
            depth,
            proof.edges.len(),
            stats.credentials_examined,
            stats.nodes_expanded
        );
        assert_eq!(proof.edges.len(), depth);
    }
    println!("# shape: work grows linearly with chain depth, decoys pruned by indexing\n");
}

fn bench(c: &mut Criterion) {
    print_shape_table();

    let mut group = c.benchmark_group("f2_proof_search");
    group.sample_size(20);
    for depth in [2usize, 4, 8, 16] {
        let w = build_world(depth, 50);
        group.bench_with_input(BenchmarkId::new("prove_depth", depth), &w, |b, w| {
            b.iter(|| prove(w));
        });
    }
    for decoys in [0usize, 100, 1_000] {
        let w = build_world(4, decoys);
        group.bench_with_input(BenchmarkId::new("prove_decoys", decoys), &w, |b, w| {
            b.iter(|| prove(w));
        });
    }
    // Verification of an already-built proof (what a remote Guard pays).
    let w = build_world(8, 0);
    let proof = prove(&w);
    group.bench_function("verify_depth_8", |b| {
        b.iter(|| proof.verify(&w.registry, &w.bus, 0).unwrap());
    });

    // Warm vs cold through the authorization fast path: cold pays the
    // full search + one Ed25519 verify per credential every call; warm
    // answers repeat decisions from the proof cache.
    let w = build_world(8, 100);
    let subject = Subject::Entity {
        name: w.user.name.clone(),
        key: w.user.public_key(),
    };
    group.bench_function("prove_cold_depth_8", |b| {
        b.iter(|| {
            let cache = AuthCache::new();
            let engine = ProofEngine::with_cache(&w.registry, &w.repo, &w.bus, 0, &cache);
            engine.prove(&subject, &w.target, &[]).unwrap()
        });
    });
    let cache = AuthCache::new();
    let engine = ProofEngine::with_cache(&w.registry, &w.repo, &w.bus, 0, &cache);
    engine.prove(&subject, &w.target, &[]).unwrap();
    group.bench_function("prove_warm_depth_8", |b| {
        b.iter(|| engine.prove(&subject, &w.target, &[]).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
