//! **F4 (data plane)** — Switchboard record-layer throughput after the
//! PR 4 optimizations: pooled zero-copy frames, in-place wide
//! ChaCha20-Poly1305, and pipelined RPC.
//!
//! The grid is payload size (64 B – 64 KiB) × mode (plain/secure) ×
//! issue discipline (serial `call` vs windowed `call_many`), plus the
//! wide-vs-scalar AEAD comparison that isolates the crypto share of the
//! win. `psf bench --json` re-measures the same shapes outside criterion
//! and writes them to `BENCH_pr4.json` for the CI gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psf_drbac::entity::{Entity, EntityRegistry};
use psf_drbac::repository::Repository;
use psf_drbac::revocation::RevocationBus;
use psf_drbac::DelegationBuilder;
use psf_switchboard::{
    pair_in_memory, pair_in_memory_plain, AuthSuite, Authorizer, Channel, ChannelConfig, ClockRef,
};
use std::time::Duration;

const WINDOW: usize = 32;
const BATCH: usize = 64;

fn quiet() -> ChannelConfig {
    ChannelConfig {
        heartbeat_interval: None,
        rpc_timeout: Duration::from_secs(10),
        ..Default::default()
    }
}

fn secure_pair() -> (Channel, Channel) {
    let registry = EntityRegistry::new();
    let repository = Repository::new();
    let bus = RevocationBus::new();
    let clock = ClockRef::new();
    let domain = Entity::with_seed("Dom", b"f4tp");
    let server = Entity::with_seed("Srv", b"f4tp");
    let client = Entity::with_seed("Cli", b"f4tp");
    for e in [&domain, &server, &client] {
        registry.register(e);
    }
    let client_cred = DelegationBuilder::new(&domain)
        .subject_entity(&client)
        .role(domain.role("Member"))
        .sign();
    let server_cred = DelegationBuilder::new(&domain)
        .subject_entity(&server)
        .role(domain.role("Service"))
        .sign();
    let auth = |role: &str| {
        Authorizer::new(
            registry.clone(),
            repository.clone(),
            bus.clone(),
            clock.clone(),
            domain.role(role),
        )
    };
    let client_suite = AuthSuite::new(client, vec![client_cred], auth("Service"));
    let server_suite = AuthSuite::new(server, vec![server_cred], auth("Member"));
    pair_in_memory(client_suite, server_suite, quiet()).unwrap()
}

fn bench_mode(
    group: &mut criterion::BenchmarkGroup<'_>,
    mode: &str,
    client: &Channel,
    size: usize,
) {
    let payload = vec![0xa5u8; size];
    group.throughput(Throughput::Bytes((size * BATCH) as u64));
    group.bench_with_input(
        BenchmarkId::new(format!("{mode}_serial"), size),
        &payload,
        |b, p| {
            b.iter(|| {
                for _ in 0..BATCH {
                    client.call("echo", p).unwrap();
                }
            });
        },
    );
    let batch: Vec<&[u8]> = (0..BATCH).map(|_| payload.as_slice()).collect();
    group.bench_with_input(
        BenchmarkId::new(format!("{mode}_pipelined"), size),
        &batch,
        |b, batch| {
            b.iter(|| {
                let results = client.call_many("echo", batch, WINDOW);
                assert!(results.iter().all(|r| r.is_ok()));
            });
        },
    );
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f4_switchboard_throughput");
    group.sample_size(20);

    let (plain_client, plain_server) = pair_in_memory_plain(quiet());
    plain_server.register_handler("echo", |a| Ok(a.to_vec()));
    let (sec_client, sec_server) = secure_pair();
    sec_server.register_handler("echo", |a| Ok(a.to_vec()));

    for size in [64usize, 1 << 10, 4 << 10, 16 << 10, 64 << 10] {
        bench_mode(&mut group, "plain", &plain_client, size);
        bench_mode(&mut group, "secure", &sec_client, size);
    }
    group.finish();

    // Crypto share of the win: wide (multi-block) vs scalar seal on a
    // 16 KiB record, the largest chunk the stream layer moves by default.
    let mut group = c.benchmark_group("f4_aead_wide_vs_scalar");
    let aead = psf_crypto::ChaCha20Poly1305::new([7u8; 32]);
    let nonce = [1u8; 12];
    let payload = vec![0x3cu8; 16 << 10];
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("seal_16k_wide", |b| {
        b.iter(|| aead.seal(&nonce, b"swbd-record", &payload));
    });
    group.bench_function("seal_16k_scalar", |b| {
        b.iter(|| aead.seal_scalar(&nonce, b"swbd-record", &payload));
    });
    let mut buf = Vec::with_capacity(8 + payload.len() + 16);
    group.bench_function("seal_16k_in_place", |b| {
        b.iter(|| {
            buf.clear();
            buf.extend_from_slice(&[0u8; 8]);
            buf.extend_from_slice(&payload);
            aead.seal_in_place(&nonce, b"swbd-record", &mut buf, 8);
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
