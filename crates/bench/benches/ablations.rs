//! Design-choice ablations (DESIGN.md §4): what each mechanism buys.
//!
//! * **A1 — regression pruning**: planner with vs without the backward
//!   relevance analysis, in a registry polluted with unrelated component
//!   families (the paper's Sekitei motivation: "cope with … network
//!   scale concerns").
//! * **A2 — discovery-tag indexing**: proof search backed by a tagged
//!   repository vs a broadcast-only one (builds on F8 but measures the
//!   *proof engine's* end-to-end latency, not just messages).
//! * **A3 — coherence cache TTL**: view read latency at TTL 0 (always
//!   re-pull) vs TTL N (serve from cache) — the object-views tradeoff the
//!   OOPSLA'99 lineage is about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psf_core::{ComponentSpec, Effect, Goal, PermissiveOracle, Planner, PlannerConfig, Registrar};
use psf_netsim::{random_topology, TopologyConfig};
use psf_views::binding::InProcessRemote;
use psf_views::{CoherencePolicy, ComponentClass, ExposureType, MethodLibrary, ViewSpec, Vig};

fn polluted_registrar(noise_families: usize) -> Registrar {
    let r = Registrar::new();
    r.register(ComponentSpec::source("MailServer", "MailI"));
    r.register(
        ComponentSpec::processor("ViewMailServer", "MailI", "MailI", Effect::Cache)
            .cpu(20)
            .view_of("MailServer"),
    );
    // Unrelated component families that regression should prune.
    for f in 0..noise_families {
        r.register(ComponentSpec::source(format!("Src{f}"), format!("I{f}_0")));
        for stage in 0..3 {
            r.register(ComponentSpec::processor(
                format!("Proc{f}_{stage}"),
                format!("I{f}_{stage}"),
                format!("I{f}_{}", stage + 1),
                Effect::Identity,
            ));
        }
    }
    r
}

fn a1_regression(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_regression_pruning");
    group.sample_size(10);
    let cfg = TopologyConfig {
        domains: 5,
        nodes_per_domain: 2,
        ..Default::default()
    };
    let (network, domains) = random_topology(&cfg);
    for noise in [0usize, 20, 60] {
        let r = polluted_registrar(noise);
        r.record_deployed("MailServer", domains[0][0]);
        let goal = Goal {
            iface: "MailI".into(),
            client_node: domains[4][1],
            max_latency_ms: Some(15.0),
            require_privacy: false,
            require_plaintext_delivery: true,
        };
        for (label, disable) in [("with_regression", false), ("no_regression", true)] {
            let planner = Planner::new(
                &r,
                &network,
                &PermissiveOracle,
                PlannerConfig {
                    disable_regression: disable,
                    ..Default::default()
                },
            );
            group.bench_with_input(BenchmarkId::new(label, noise), &goal, |b, goal| {
                b.iter(|| planner.plan(goal).unwrap())
            });
        }
    }
    // Shape check: pruning counts.
    let r = polluted_registrar(60);
    r.record_deployed("MailServer", domains[0][0]);
    let goal = Goal {
        iface: "MailI".into(),
        client_node: domains[4][1],
        max_latency_ms: Some(15.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };
    let with = Planner::new(&r, &network, &PermissiveOracle, PlannerConfig::default())
        .plan(&goal)
        .unwrap()
        .1;
    let without = Planner::new(
        &r,
        &network,
        &PermissiveOracle,
        PlannerConfig {
            disable_regression: true,
            ..Default::default()
        },
    )
    .plan(&goal)
    .unwrap()
    .1;
    println!("\n# A1: regression pruning with 60 noise families");
    println!(
        "  with:    pruned {} templates, expanded {}",
        with.pruned_irrelevant, with.expanded
    );
    println!(
        "  without: pruned {} templates, expanded {}",
        without.pruned_irrelevant, without.expanded
    );
    assert!(with.pruned_irrelevant > 0);
    assert!(without.expanded >= with.expanded);
    group.finish();
}

fn a3_coherence_ttl(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_coherence_ttl");
    group.sample_size(20);
    let class = ComponentClass::builder("Store")
        .interface("StoreI", ["get"])
        .field("blob", "bytes")
        .method("get", "bytes get()", &["blob"], false, |st, _| {
            Ok(st.get("blob"))
        })
        .build()
        .unwrap();
    let spec = ViewSpec::new("StoreView", "Store").restrict("StoreI", ExposureType::Local);
    let view = Vig::new(MethodLibrary::new())
        .generate(&class, &spec)
        .unwrap();
    for ttl in [0u64, 16, 1024] {
        let original = class.instantiate();
        original.set_field("blob", vec![7u8; 8192]);
        let inst = view
            .instantiate(
                Some(InProcessRemote::switchboard(original)),
                CoherencePolicy::WriteThrough,
                ttl,
                b"",
            )
            .unwrap();
        group.bench_with_input(BenchmarkId::new("view_get_ttl", ttl), &ttl, |b, _| {
            b.iter(|| inst.invoke("get", b"").unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, a1_regression, a3_coherence_ttl);
criterion_main!(benches);
