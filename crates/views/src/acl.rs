//! Role→view access control with single sign-on (paper §4.2, Table 4).
//!
//! "Access control lists can be established, per component, which
//! specify the level of service (the view) associated with a given dRBAC
//! role. … Views permit single sign-on usage, because authentication and
//! authorization decisions can be completed when the view is first
//! instantiated. After that clients are free to access the view they
//! receive, without additional access control."

use psf_drbac::entity::{EntityRegistry, RoleName, Subject};
use psf_drbac::proof::{Proof, ProofEngine};
use psf_drbac::repository::Repository;
use psf_drbac::revocation::{RevocationBus, ValidityMonitor};
use psf_drbac::{AuthCache, SignedDelegation, Timestamp};

/// Table 4 as data: ordered rules mapping a role (or the catch-all
/// "others") to a view name.
#[derive(Debug, Clone, Default)]
pub struct ViewAcl {
    rules: Vec<(Option<RoleName>, String)>,
}

impl ViewAcl {
    /// Empty ACL.
    pub fn new() -> ViewAcl {
        ViewAcl::default()
    }

    /// Add a role rule (checked in order, first match wins).
    pub fn rule(mut self, role: RoleName, view: impl Into<String>) -> Self {
        self.rules.push((Some(role), view.into()));
        self
    }

    /// Add the catch-all "others" rule.
    pub fn others(mut self, view: impl Into<String>) -> Self {
        self.rules.push((None, view.into()));
        self
    }

    /// The rules, for display (Table 4 rendering).
    pub fn rules(&self) -> &[(Option<RoleName>, String)] {
        &self.rules
    }

    /// The distinct view names this ACL can ever grant, in rule order —
    /// the reachability roots for the unreachable-view lint.
    pub fn view_names(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for (_, view) in &self.rules {
            if !out.contains(&view.as_str()) {
                out.push(view.as_str());
            }
        }
        out
    }

    /// Render the Table 4 layout.
    pub fn render(&self) -> String {
        let mut out = String::from("Role                 | View name\n");
        for (role, view) in &self.rules {
            let r = role
                .as_ref()
                .map(|r| r.to_string())
                .unwrap_or_else(|| "others".to_string());
            out.push_str(&format!("{r:<20} | {view}\n"));
        }
        out
    }

    /// Decide the view for a subject: "cross-domain requests are first
    /// translated by dRBAC into local roles before any access control
    /// decisions are made" — the proof search does exactly that
    /// translation. Returns the view name plus the proof when a role rule
    /// matched.
    pub fn select_view(
        &self,
        subject: &Subject,
        presented: &[SignedDelegation],
        registry: &EntityRegistry,
        repository: &Repository,
        bus: &RevocationBus,
        now: Timestamp,
    ) -> Option<(String, Option<Proof>)> {
        let engine = ProofEngine::new(registry, repository, bus, now);
        self.select_with_engine(&engine, subject, presented)
    }

    /// As [`select_view`](Self::select_view), with repeat decisions
    /// answered from `cache` (which must be dedicated to this
    /// registry/repository/bus triple).
    #[allow(clippy::too_many_arguments)]
    pub fn select_view_cached(
        &self,
        subject: &Subject,
        presented: &[SignedDelegation],
        registry: &EntityRegistry,
        repository: &Repository,
        bus: &RevocationBus,
        now: Timestamp,
        cache: &AuthCache,
    ) -> Option<(String, Option<Proof>)> {
        let engine = ProofEngine::with_cache(registry, repository, bus, now, cache);
        self.select_with_engine(&engine, subject, presented)
    }

    fn select_with_engine(
        &self,
        engine: &ProofEngine<'_>,
        subject: &Subject,
        presented: &[SignedDelegation],
    ) -> Option<(String, Option<Proof>)> {
        use psf_telemetry::audit::{self, Decision, Verdict};
        let mut span = psf_telemetry::span("psf.views", "select_view");
        for (role, view) in &self.rules {
            match role {
                Some(role) => {
                    if let Ok((proof, _)) = engine.prove(subject, role, presented) {
                        span.field("view", view);
                        audit::record(
                            Decision::SelectView,
                            subject.render(),
                            view.clone(),
                            Verdict::Allow,
                        )
                        .chain(&proof.credential_ids())
                        .detail(format!("role {role}"))
                        .commit();
                        return Some((view.clone(), Some(proof)));
                    }
                }
                None => {
                    span.field("view", view);
                    audit::record(
                        Decision::SelectView,
                        subject.render(),
                        view.clone(),
                        Verdict::Allow,
                    )
                    .detail("catch-all rule")
                    .commit();
                    return Some((view.clone(), None));
                }
            }
        }
        span.field("view", "<denied>");
        audit::record(Decision::SelectView, subject.render(), "", Verdict::Deny)
            .detail("no acl rule matched")
            .commit();
        None
    }

    /// Full single-sign-on authorization: select the view and mint a
    /// token whose monitor keeps the session alive until any underlying
    /// credential is revoked.
    #[allow(clippy::too_many_arguments)]
    pub fn authorize_once(
        &self,
        subject: &Subject,
        presented: &[SignedDelegation],
        registry: &EntityRegistry,
        repository: &Repository,
        bus: &RevocationBus,
        now: Timestamp,
    ) -> Option<SsoToken> {
        let (view, proof) = self.select_view(subject, presented, registry, repository, bus, now)?;
        Some(Self::mint(subject, view, proof, bus, now))
    }

    /// As [`authorize_once`](Self::authorize_once), with the proof search
    /// answered from `cache` — the warm single-sign-on path.
    #[allow(clippy::too_many_arguments)]
    pub fn authorize_once_cached(
        &self,
        subject: &Subject,
        presented: &[SignedDelegation],
        registry: &EntityRegistry,
        repository: &Repository,
        bus: &RevocationBus,
        now: Timestamp,
        cache: &AuthCache,
    ) -> Option<SsoToken> {
        let (view, proof) =
            self.select_view_cached(subject, presented, registry, repository, bus, now, cache)?;
        Some(Self::mint(subject, view, proof, bus, now))
    }

    fn mint(
        subject: &Subject,
        view: String,
        proof: Option<Proof>,
        bus: &RevocationBus,
        now: Timestamp,
    ) -> SsoToken {
        let monitor = bus.monitor(
            proof
                .as_ref()
                .map(|p| p.credential_ids())
                .unwrap_or_default(),
        );
        SsoToken {
            subject: subject.clone(),
            view,
            proof,
            monitor,
            issued_at: now,
        }
    }
}

/// A single-sign-on token: the outcome of the one authorization decision
/// made at view-instantiation time. Subsequent requests check only the
/// (push-updated) monitor — no proof search, no signature verification.
pub struct SsoToken {
    /// Who was authorized.
    pub subject: Subject,
    /// The view granted.
    pub view: String,
    /// The proof (None for catch-all grants).
    pub proof: Option<Proof>,
    monitor: ValidityMonitor,
    /// When the token was minted.
    pub issued_at: Timestamp,
}

impl SsoToken {
    /// The O(1) per-request check: still authorized?
    pub fn is_valid(&self) -> bool {
        self.monitor.is_valid()
    }

    /// Which credential was revoked, if the token died.
    pub fn revocation_notice(&self) -> Option<String> {
        self.monitor.try_notice().map(|n| n.credential_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psf_drbac::entity::Entity;
    use psf_drbac::DelegationBuilder;

    struct World {
        registry: EntityRegistry,
        repo: Repository,
        bus: RevocationBus,
        ny: Entity,
        sd: Entity,
        alice: Entity,
        bob: Entity,
        charlie: Entity,
    }

    fn world() -> World {
        let registry = EntityRegistry::new();
        let ny = Entity::with_seed("Comp.NY", b"acl");
        let sd = Entity::with_seed("Comp.SD", b"acl");
        let alice = Entity::with_seed("Alice", b"acl");
        let bob = Entity::with_seed("Bob", b"acl");
        let charlie = Entity::with_seed("Charlie", b"acl");
        for e in [&ny, &sd, &alice, &bob, &charlie] {
            registry.register(e);
        }
        World {
            registry,
            repo: Repository::new(),
            bus: RevocationBus::new(),
            ny,
            sd,
            alice,
            bob,
            charlie,
        }
    }

    fn table4(w: &World) -> ViewAcl {
        ViewAcl::new()
            .rule(w.ny.role("Member"), "ViewMailClient_Member")
            .rule(w.ny.role("Partner"), "ViewMailClient_Partner")
            .others("ViewMailClient_Anonymous")
    }

    #[test]
    fn t4_member_partner_others() {
        let w = world();
        let acl = table4(&w);
        // Alice is a member.
        let alice_cred = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.alice)
            .role(w.ny.role("Member"))
            .sign();
        // Bob (SD) maps to Partner via a role mapping.
        let bob_cred = DelegationBuilder::new(&w.sd)
            .subject_entity(&w.bob)
            .role(w.sd.role("Member"))
            .sign();
        let mapping = DelegationBuilder::new(&w.ny)
            .subject_role(w.sd.role("Member"))
            .role(w.ny.role("Partner"))
            .sign();

        let (view, proof) = acl
            .select_view(
                &w.alice.as_subject(),
                &[alice_cred],
                &w.registry,
                &w.repo,
                &w.bus,
                0,
            )
            .unwrap();
        assert_eq!(view, "ViewMailClient_Member");
        assert!(proof.is_some());

        let (view, proof) = acl
            .select_view(
                &w.bob.as_subject(),
                &[bob_cred, mapping],
                &w.registry,
                &w.repo,
                &w.bus,
                0,
            )
            .unwrap();
        assert_eq!(view, "ViewMailClient_Partner");
        assert_eq!(proof.unwrap().edges.len(), 2);

        // Charlie has nothing: catch-all.
        let (view, proof) = acl
            .select_view(
                &w.charlie.as_subject(),
                &[],
                &w.registry,
                &w.repo,
                &w.bus,
                0,
            )
            .unwrap();
        assert_eq!(view, "ViewMailClient_Anonymous");
        assert!(proof.is_none());
    }

    #[test]
    fn first_match_wins_in_order() {
        let w = world();
        // Alice holds both roles; Member rule comes first.
        let m = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.alice)
            .role(w.ny.role("Member"))
            .sign();
        let p = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.alice)
            .role(w.ny.role("Partner"))
            .sign();
        let acl = table4(&w);
        let (view, _) = acl
            .select_view(
                &w.alice.as_subject(),
                &[m, p],
                &w.registry,
                &w.repo,
                &w.bus,
                0,
            )
            .unwrap();
        assert_eq!(view, "ViewMailClient_Member");
    }

    #[test]
    fn no_rules_means_no_service() {
        let w = world();
        let acl = ViewAcl::new().rule(w.ny.role("Member"), "V");
        assert!(acl
            .select_view(
                &w.charlie.as_subject(),
                &[],
                &w.registry,
                &w.repo,
                &w.bus,
                0
            )
            .is_none());
    }

    #[test]
    fn sso_token_lives_until_revocation() {
        let w = world();
        let cred = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.alice)
            .role(w.ny.role("Member"))
            .monitored()
            .sign();
        let acl = table4(&w);
        let token = acl
            .authorize_once(
                &w.alice.as_subject(),
                std::slice::from_ref(&cred),
                &w.registry,
                &w.repo,
                &w.bus,
                0,
            )
            .unwrap();
        assert_eq!(token.view, "ViewMailClient_Member");
        // Many requests: only the O(1) monitor check.
        for _ in 0..1000 {
            assert!(token.is_valid());
        }
        w.bus.revoke(&cred.id());
        assert!(!token.is_valid());
        assert_eq!(token.revocation_notice(), Some(cred.id()));
    }

    #[test]
    fn render_table4() {
        let w = world();
        let text = table4(&w).render();
        assert!(text.contains("Comp.NY.Member"));
        assert!(text.contains("ViewMailClient_Member"));
        assert!(text.contains("others"));
        assert!(text.contains("ViewMailClient_Anonymous"));
    }
}
