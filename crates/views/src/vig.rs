//! **VIG — the View Generator** (paper §4.3).
//!
//! "The generation of the code for a view is deferred to the time this
//! view is first deployed … VIG takes the class file of the represented
//! object and an XML definition of the view and produces a new classfile
//! corresponding to the view." Processing order, per the paper:
//! (1) interfaces, (2) methods, (3) fields.
//!
//! * `local` interfaces are copied as-is; their method implementations
//!   are resolved through the represented class's inheritance chain and
//!   copied into the view together with "the declarations of all used
//!   class fields".
//! * `rmi` / `switchboard` interfaces become stubs forwarding to the
//!   original object over the corresponding transport.
//! * Added/customized methods come from the XML rules; VIG validates
//!   every reference ("if VIG is unable to generate correct bytecode —
//!   e.g. a new method uses a variable that is not defined … — it
//!   triggers an error that indicates how the XML rules can be
//!   rectified").
//! * Cache-coherence methods (`mergeImageIntoView` & co.) get default
//!   implementations automatically — the paper's stated *goal* ("our goal
//!   is to supply default handlers in an automatic fashion, which can be
//!   overridden as necessary") — and every view method is wrapped in
//!   `acquireImage` / `releaseImage`.
//! * VIG also emits Table 5-style source text for inspection.

use crate::binding::{RemoteCall, EXTRACT_IMAGE, MERGE_IMAGE};
use crate::coherence::{CacheManager, CoherencePolicy, Image};
use crate::component::{ComponentClass, FieldDef, FieldState, MethodBody};
use crate::library::MethodLibrary;
use crate::spec::{ExposureType, ViewSpec};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The four coherence method names of Table 3(b)/Table 5.
pub const COHERENCE_METHODS: [&str; 4] = [
    "mergeImageIntoView",
    "mergeImageIntoObj",
    "extractImageFromView",
    "extractImageFromObj",
];

/// Errors raised by VIG, phrased to guide repair of the XML rules
/// (paper: "VIG can be used to both generate views at runtime and guide
/// the programmer's effort to write correct XML files").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VigError {
    /// The spec restricts an interface the represented class lacks.
    UnknownInterface {
        /// Interface named in the spec.
        interface: String,
        /// The represented class.
        class: String,
        /// Interfaces that do exist.
        available: Vec<String>,
    },
    /// A customized method does not exist on the represented class.
    UnknownMethod {
        /// Method named in the spec.
        method: String,
        /// The represented class.
        class: String,
    },
    /// A method body uses a field the view does not have.
    UndefinedField {
        /// The missing field.
        field: String,
        /// The method whose body uses it.
        method: String,
        /// Fields the view does have.
        available: Vec<String>,
    },
    /// An `<MBody>` reference is not in the method library.
    MissingBody {
        /// The dangling reference.
        body_ref: String,
        /// The method it was meant to implement.
        method: String,
    },
    /// The same method is defined twice.
    DuplicateMethod(String),
    /// The spec's `Represents` does not match the supplied class.
    WrongClass {
        /// What the spec says.
        expected: String,
        /// What was supplied.
        got: String,
    },
}

impl core::fmt::Display for VigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VigError::UnknownInterface {
                interface,
                class,
                available,
            } => write!(
                f,
                "interface '{interface}' is not implemented by '{class}'; \
                 rectify the <Restricts> rule to one of: {}",
                available.join(", ")
            ),
            VigError::UnknownMethod { method, class } => write!(
                f,
                "method '{method}' does not exist on '{class}' (or its \
                 superclasses); remove or fix the <Customizes_Methods> rule"
            ),
            VigError::UndefinedField {
                field,
                method,
                available,
            } => write!(
                f,
                "method '{method}' uses field '{field}' which the view does \
                 not define; add it under <Adds_Fields> or restrict an \
                 interface that carries it (view fields: {})",
                available.join(", ")
            ),
            VigError::MissingBody { body_ref, method } => write!(
                f,
                "no method body registered under '{body_ref}' for \
                 '{method}'; register it in the MethodLibrary or fix <MBody>"
            ),
            VigError::DuplicateMethod(m) => {
                write!(f, "method '{m}' is defined more than once in the view")
            }
            VigError::WrongClass { expected, got } => write!(
                f,
                "view represents '{expected}' but was generated against '{got}'"
            ),
        }
    }
}

impl std::error::Error for VigError {}

/// One entry of the view's dispatch table.
#[derive(Clone)]
pub enum DispatchEntry {
    /// Runs inside the view, over the view's copied/added state.
    Local {
        /// The method (body + metadata).
        body: MethodBody,
        /// Fields used (already validated).
        uses_fields: Vec<String>,
        /// Whether coherence must push after the call.
        mutates: bool,
        /// Provenance tag for emitted source: `copied`, `customized`,
        /// `added`.
        origin: &'static str,
        /// Display signature.
        signature: String,
    },
    /// Forwards to the original object over a remote binding.
    Remote {
        /// Which interface the method belongs to.
        interface: String,
        /// rmi or switchboard.
        exposure: ExposureType,
        /// Display signature.
        signature: String,
    },
}

/// The product of VIG: a ready-to-instantiate view "classfile".
pub struct GeneratedView {
    /// The spec this was generated from.
    pub spec: ViewSpec,
    /// Dispatch table: method name → entry.
    pub entries: HashMap<String, DispatchEntry>,
    /// The view's fields (copied originals + added).
    pub fields: Vec<FieldDef>,
    /// The subset of fields shared with the original object (what the
    /// coherence image carries). Added fields are view-private.
    pub coherent_fields: Vec<String>,
    /// Constructor body, if the spec declared one.
    pub constructor: Option<MethodBody>,
    /// Emitted Table 5-style source text.
    pub source: String,
}

impl std::fmt::Debug for GeneratedView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeneratedView")
            .field("name", &self.spec.name)
            .field("represents", &self.spec.represents)
            .field("methods", &self.entries.keys().collect::<Vec<_>>())
            .field("fields", &self.fields)
            .finish()
    }
}

impl GeneratedView {
    /// Interfaces the view implements, with exposure.
    pub fn interfaces(&self) -> &[crate::spec::InterfaceRestriction] {
        &self.spec.restricts
    }

    /// Instantiate the view.
    ///
    /// `original` is the remote face of the original object (required
    /// when the view has remote interfaces or coherent fields); `policy`
    /// and `ttl_acquires` configure the cache manager.
    pub fn instantiate(
        self: &Arc<Self>,
        original: Option<Arc<dyn RemoteCall>>,
        policy: CoherencePolicy,
        ttl_acquires: u64,
        ctor_args: &[u8],
    ) -> Result<Arc<ViewInstance>, String> {
        let needs_remote = self
            .entries
            .values()
            .any(|e| matches!(e, DispatchEntry::Remote { .. }));
        if (needs_remote || !self.coherent_fields.is_empty()) && original.is_none() {
            return Err(format!(
                "view {} needs a binding to its original object",
                self.spec.name
            ));
        }
        let instance = Arc::new(ViewInstance {
            view: self.clone(),
            state: Mutex::new(FieldState::default()),
            original,
            cache: CacheManager::new(policy, ttl_acquires),
        });
        if let Some(ctor) = &self.constructor {
            let mut st = instance.state.lock();
            ctor(&mut st, ctor_args)?;
        }
        Ok(instance)
    }
}

/// A live view instance: the auxiliary component the planner deploys.
pub struct ViewInstance {
    view: Arc<GeneratedView>,
    state: Mutex<FieldState>,
    original: Option<Arc<dyn RemoteCall>>,
    cache: CacheManager,
}

impl ViewInstance {
    /// The generated view this instantiates.
    pub fn view(&self) -> &Arc<GeneratedView> {
        &self.view
    }

    /// Invoke a view method. Local methods run under
    /// acquireImage/releaseImage; remote methods forward to the original
    /// object.
    pub fn invoke(&self, method: &str, args: &[u8]) -> Result<Vec<u8>, String> {
        let entry = self.view.entries.get(method).ok_or_else(|| {
            format!(
                "view {} does not expose method '{method}'",
                self.view.spec.name
            )
        })?;
        match entry.clone() {
            DispatchEntry::Remote { .. } => {
                let remote = self
                    .original
                    .as_ref()
                    .ok_or("remote method with no binding")?;
                remote.call_remote(method, args)
            }
            DispatchEntry::Local { body, mutates, .. } => {
                self.acquire_image()?;
                let result = {
                    let mut st = self.state.lock();
                    body(&mut st, args)
                };
                self.release_image(mutates)?;
                result
            }
        }
    }

    /// acquireImage: pull a fresh image of the coherent fields from the
    /// original object if the cache says so.
    pub fn acquire_image(&self) -> Result<(), String> {
        if self.view.coherent_fields.is_empty() {
            return Ok(());
        }
        if !self.cache.on_acquire() {
            return Ok(());
        }
        let Some(remote) = self.original.as_ref() else {
            return Ok(());
        };
        let names = self.view.coherent_fields.join("\n");
        let bytes = remote.call_remote(EXTRACT_IMAGE, names.as_bytes())?;
        let image = Image::from_bytes(&bytes)?;
        let mut st = self.state.lock();
        image.merge_into(&mut st); // mergeImageIntoView
        Ok(())
    }

    /// releaseImage: after a mutating method, push per policy.
    pub fn release_image(&self, mutated: bool) -> Result<(), String> {
        if !mutated || self.view.coherent_fields.is_empty() {
            return Ok(());
        }
        if self.cache.on_mutate() {
            self.push_image()?;
        }
        Ok(())
    }

    /// Explicit write-back flush.
    pub fn flush(&self) -> Result<(), String> {
        if self.cache.flush() {
            self.push_image()?;
        }
        Ok(())
    }

    fn push_image(&self) -> Result<(), String> {
        let Some(remote) = self.original.as_ref() else {
            return Ok(());
        };
        let image = {
            let st = self.state.lock();
            Image::from_fields(&st, &self.view.coherent_fields) // extractImageFromView
        };
        remote.call_remote(MERGE_IMAGE, &image.to_bytes())?; // mergeImageIntoObj
        Ok(())
    }

    /// Invalidate the cached image (external change notification).
    pub fn invalidate_cache(&self) {
        self.cache.invalidate();
    }

    /// Coherence traffic counters.
    pub fn coherence_stats(&self) -> crate::coherence::CoherenceStats {
        self.cache.stats()
    }

    /// Read a view field (tests).
    pub fn field(&self, name: &str) -> Vec<u8> {
        self.state.lock().get(name)
    }

    /// Write a view field (initialization/tests).
    pub fn set_field(&self, name: &str, value: impl Into<Vec<u8>>) {
        self.state.lock().set(name, value);
    }
}

/// The view generator.
pub struct Vig {
    library: MethodLibrary,
}

impl Vig {
    /// Create a generator over a method library.
    pub fn new(library: MethodLibrary) -> Vig {
        Vig { library }
    }

    /// Generate a view from `spec` against the represented `class`
    /// (paper: classfile + XML in, new classfile out).
    pub fn generate(
        &self,
        class: &Arc<ComponentClass>,
        spec: &ViewSpec,
    ) -> Result<Arc<GeneratedView>, VigError> {
        let gen_start = std::time::Instant::now();
        let mut gen_span = psf_telemetry::span("psf.views", "vig.generate");
        gen_span
            .field("view", &spec.name)
            .field("represents", &spec.represents);
        psf_telemetry::counter!("psf.views.vig.generated").inc();
        let result = self.generate_inner(class, spec);
        match &result {
            Ok(view) => {
                psf_telemetry::histogram!("psf.views.vig.us").record_duration(gen_start.elapsed());
                gen_span
                    .field("methods", view.entries.len())
                    .field("fields", view.fields.len())
                    .field("ok", true);
            }
            Err(_) => {
                psf_telemetry::counter!("psf.views.vig.errors").inc();
                gen_span.field("ok", false);
            }
        }
        result
    }

    fn generate_inner(
        &self,
        class: &Arc<ComponentClass>,
        spec: &ViewSpec,
    ) -> Result<Arc<GeneratedView>, VigError> {
        if spec.represents != class.name {
            return Err(VigError::WrongClass {
                expected: spec.represents.clone(),
                got: class.name.clone(),
            });
        }

        let mut entries: HashMap<String, DispatchEntry> = HashMap::new();
        let mut fields: BTreeMap<String, FieldDef> = BTreeMap::new();
        let mut coherent_fields: Vec<String> = Vec::new();

        let customized: HashMap<String, &crate::spec::MethodSpec> = spec
            .customizes_methods
            .iter()
            .map(|m| (m.method_name(), m))
            .collect();

        // --- (1) interfaces -------------------------------------------
        for restriction in &spec.restricts {
            let iface = class.resolve_interface(&restriction.name).ok_or_else(|| {
                VigError::UnknownInterface {
                    interface: restriction.name.clone(),
                    class: class.name.clone(),
                    available: class
                        .all_interfaces()
                        .iter()
                        .map(|i| i.name.clone())
                        .collect(),
                }
            })?;
            let method_names = iface.methods.clone();
            for mname in method_names {
                if entries.contains_key(&mname) {
                    return Err(VigError::DuplicateMethod(mname));
                }
                match restriction.exposure {
                    ExposureType::Local => {
                        // --- (2) methods: copy, following inheritance.
                        let (def, _) = class.resolve_method(&mname).ok_or_else(|| {
                            VigError::UnknownMethod {
                                method: mname.clone(),
                                class: class.name.clone(),
                            }
                        })?;
                        // Customized local methods take the library body.
                        let (body, uses, mutates, origin, signature) = if let Some(custom) =
                            customized.get(&mname)
                        {
                            let entry = self.library.get(&custom.body_ref).ok_or_else(|| {
                                VigError::MissingBody {
                                    body_ref: custom.body_ref.clone(),
                                    method: mname.clone(),
                                }
                            })?;
                            (
                                entry.body.clone(),
                                entry.uses_fields.clone(),
                                entry.mutates,
                                "customized",
                                custom.signature.clone(),
                            )
                        } else {
                            (
                                def.body.clone(),
                                def.uses_fields.clone(),
                                def.mutates,
                                "copied",
                                def.signature.clone(),
                            )
                        };
                        // --- (3) fields: copy declarations of used fields.
                        for fname in &uses {
                            if let Some(fd) = class.resolve_field(fname) {
                                if !fields.contains_key(fname) {
                                    fields.insert(fname.clone(), fd.clone());
                                    coherent_fields.push(fname.clone());
                                }
                            }
                            // Added fields are checked after the
                            // Adds_Fields pass below.
                        }
                        entries.insert(
                            mname.clone(),
                            DispatchEntry::Local {
                                body,
                                uses_fields: uses,
                                mutates,
                                origin,
                                signature,
                            },
                        );
                    }
                    exposure @ (ExposureType::Rmi | ExposureType::Switchboard) => {
                        // A customization overrides the remote stub with a
                        // local body (Table 5: addMeeting is user-supplied
                        // code even though NotesI is exposed via rmi).
                        if let Some(custom) = customized.get(&mname) {
                            let entry = self.library.get(&custom.body_ref).ok_or_else(|| {
                                VigError::MissingBody {
                                    body_ref: custom.body_ref.clone(),
                                    method: mname.clone(),
                                }
                            })?;
                            entries.insert(
                                mname.clone(),
                                DispatchEntry::Local {
                                    body: entry.body.clone(),
                                    uses_fields: entry.uses_fields.clone(),
                                    mutates: entry.mutates,
                                    origin: "customized",
                                    signature: custom.signature.clone(),
                                },
                            );
                            continue;
                        }
                        let signature = class
                            .resolve_method(&mname)
                            .map(|(d, _)| d.signature.clone())
                            .unwrap_or_else(|| format!("{mname}(...)"));
                        entries.insert(
                            mname.clone(),
                            DispatchEntry::Remote {
                                interface: restriction.name.clone(),
                                exposure,
                                signature,
                            },
                        );
                    }
                }
            }
        }

        // Added fields (view-private, not coherent).
        for f in &spec.adds_fields {
            fields.insert(
                f.name.clone(),
                FieldDef {
                    name: f.name.clone(),
                    type_name: f.type_name.clone(),
                },
            );
        }

        // Added methods: constructor, coherence overrides, helpers.
        let mut constructor: Option<MethodBody> = None;
        for m in &spec.adds_methods {
            let mname = m.method_name();
            let entry = self
                .library
                .get(&m.body_ref)
                .ok_or_else(|| VigError::MissingBody {
                    body_ref: m.body_ref.clone(),
                    method: mname.clone(),
                })?;
            if mname == spec.name {
                constructor = Some(entry.body.clone());
                continue;
            }
            if COHERENCE_METHODS.contains(&mname.as_str()) {
                // Override accepted; defaults otherwise (see below). We
                // record it as a local method so it participates in
                // dispatch, but the built-in coherence path remains.
            }
            if entries.contains_key(&mname) {
                return Err(VigError::DuplicateMethod(mname));
            }
            entries.insert(
                mname.clone(),
                DispatchEntry::Local {
                    body: entry.body.clone(),
                    uses_fields: entry.uses_fields.clone(),
                    mutates: entry.mutates,
                    origin: "added",
                    signature: m.signature.clone(),
                },
            );
        }

        // Customized methods must exist somewhere in the view.
        for m in &spec.customizes_methods {
            let mname = m.method_name();
            if class.resolve_method(&mname).is_none() {
                return Err(VigError::UnknownMethod {
                    method: mname,
                    class: class.name.clone(),
                });
            }
        }

        // Field validation: every local method's used fields must exist
        // in the view.
        let available: Vec<String> = fields.keys().cloned().collect();
        for (mname, entry) in &entries {
            if let DispatchEntry::Local { uses_fields, .. } = entry {
                for f in uses_fields {
                    if !fields.contains_key(f) {
                        return Err(VigError::UndefinedField {
                            field: f.clone(),
                            method: mname.clone(),
                            available: available.clone(),
                        });
                    }
                }
            }
        }

        let spec_clone = spec.clone();
        let fields_vec: Vec<FieldDef> = fields.into_values().collect();
        let source = emit_source(&spec_clone, class, &entries, &fields_vec);
        Ok(Arc::new(GeneratedView {
            spec: spec_clone,
            entries,
            fields: fields_vec,
            coherent_fields,
            constructor,
            source,
        }))
    }
}

/// Emit Table 5-style source text for the generated view.
fn emit_source(
    spec: &ViewSpec,
    class: &ComponentClass,
    entries: &HashMap<String, DispatchEntry>,
    fields: &[FieldDef],
) -> String {
    let mut out = String::new();
    // Interface declarations with the paper's marker supertypes.
    for r in &spec.restricts {
        let extends = match r.exposure {
            ExposureType::Local => String::new(),
            ExposureType::Rmi => " extends Remote".to_string(),
            ExposureType::Switchboard => " extends Serializable".to_string(),
        };
        out.push_str(&format!("public interface {}{} {{\n", r.name, extends));
        if let Some(iface) = class.resolve_interface(&r.name) {
            for m in &iface.methods {
                if let Some(e) = entries.get(m) {
                    let sig = match e {
                        DispatchEntry::Local { signature, .. } => signature.clone(),
                        DispatchEntry::Remote {
                            signature,
                            exposure,
                            ..
                        } => {
                            if *exposure == ExposureType::Rmi {
                                format!("{signature} throws RemoteException")
                            } else {
                                signature.clone()
                            }
                        }
                    };
                    out.push_str(&format!("  public {sig}\n"));
                }
            }
        }
        out.push_str("}\n");
    }
    // Class body.
    let ifaces: Vec<&str> = spec.restricts.iter().map(|r| r.name.as_str()).collect();
    out.push_str(&format!(
        "public class {} implements {} {{\n",
        spec.name,
        ifaces.join(", ")
    ));
    for f in fields {
        out.push_str(&format!("  {} {};\n", f.type_name, f.name));
    }
    out.push_str("  CacheManager cacheManager;\n");
    for r in &spec.restricts {
        match r.exposure {
            ExposureType::Rmi => {
                out.push_str(&format!("  {} {}_rmi;\n", r.name, stub_field(&r.name)))
            }
            ExposureType::Switchboard => {
                out.push_str(&format!("  {} {}_switch;\n", r.name, stub_field(&r.name)))
            }
            ExposureType::Local => {}
        }
    }
    // Constructor.
    out.push_str(&format!("  public {}( String[] args ) {{\n", spec.name));
    for r in &spec.restricts {
        match r.exposure {
            ExposureType::Rmi => out.push_str(&format!(
                "    {}_rmi = ({}) Naming.lookup(...);\n",
                stub_field(&r.name),
                r.name
            )),
            ExposureType::Switchboard => out.push_str(&format!(
                "    {}_switch = ({}) Switchboard.lookup(...);\n",
                stub_field(&r.name),
                r.name
            )),
            ExposureType::Local => {}
        }
    }
    out.push_str("    cacheManager = new CacheManager( properties, name );\n");
    out.push_str("  }\n");
    // Methods, sorted for stable output.
    let mut names: Vec<&String> = entries.keys().collect();
    names.sort();
    for name in names {
        match &entries[name] {
            DispatchEntry::Local {
                origin, signature, ..
            } => {
                let comment = match *origin {
                    "copied" => "/** the original code **/",
                    "customized" => "/** user supplied code **/",
                    _ => "/** added method **/",
                };
                out.push_str(&format!("  public {signature} {{ {comment} }}\n"));
            }
            DispatchEntry::Remote {
                interface,
                exposure,
                signature,
            } => {
                let stub = match exposure {
                    ExposureType::Rmi => format!("{}_rmi", stub_field(interface)),
                    _ => format!("{}_switch", stub_field(interface)),
                };
                out.push_str(&format!(
                    "  public {signature} {{ return {stub}.{name}(...); }}\n"
                ));
            }
        }
    }
    // Coherence methods (defaults supplied by VIG).
    for m in COHERENCE_METHODS {
        out.push_str(&format!(
            "  private byte[] {m}(...) {{ /** VIG default coherence handler **/ }}\n"
        ));
    }
    out.push_str("}\n");
    out
}

fn stub_field(interface: &str) -> String {
    let mut s = interface.to_string();
    if let Some(first) = s.get_mut(0..1) {
        first.make_ascii_lowercase();
    }
    s
}
