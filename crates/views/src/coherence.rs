//! Cache coherence for views (paper §4.1/§4.3, inherited from the
//! OOPSLA'99 object-views work).
//!
//! A view "contains only the subset of object state required for its
//! local methods" and synchronizes with the original object through four
//! coherence methods: `extractImageFromObj`, `mergeImageIntoView`,
//! `extractImageFromView`, `mergeImageIntoObj`. VIG wraps every view
//! method in `acquireImage` / `releaseImage` so methods always run
//! against a current image. The paper's VIG required programmers to
//! supply these; ours generates default handlers automatically (their
//! stated goal) while allowing override.

use crate::component::FieldState;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A serializable snapshot of a field subset — the unit moved between a
/// view and its original object.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Image {
    fields: BTreeMap<String, Vec<u8>>,
}

impl Image {
    /// Capture `fields` from a state.
    pub fn from_fields(state: &FieldState, fields: &[String]) -> Image {
        let mut out = BTreeMap::new();
        for f in fields {
            out.insert(f.clone(), state.get(f));
        }
        Image { fields: out }
    }

    /// Apply this image onto a state (merge = overwrite captured fields).
    pub fn merge_into(&self, state: &mut FieldState) {
        for (k, v) in &self.fields {
            state.set(k, v.clone());
        }
    }

    /// Serialize to bytes (length-prefixed pairs).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.fields.len() as u32).to_le_bytes());
        for (k, v) in &self.fields {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        out
    }

    /// Deserialize from [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(buf: &[u8]) -> Result<Image, String> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
            if *pos + n > buf.len() {
                return Err("truncated image".into());
            }
            let s = &buf[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        if count > 1 << 16 {
            return Err("oversized image".into());
        }
        let mut fields = BTreeMap::new();
        for _ in 0..count {
            let klen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            let k = String::from_utf8(take(&mut pos, klen)?.to_vec())
                .map_err(|_| "bad field name".to_string())?;
            let vlen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            let v = take(&mut pos, vlen)?.to_vec();
            fields.insert(k, v);
        }
        if pos != buf.len() {
            return Err("trailing bytes in image".into());
        }
        Ok(Image { fields })
    }

    /// Field names captured by this image.
    pub fn field_names(&self) -> Vec<&str> {
        self.fields.keys().map(String::as_str).collect()
    }
}

/// When view updates flow back to the original object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherencePolicy {
    /// Push after every mutating method (strongest, chattiest).
    WriteThrough,
    /// Accumulate locally; push on explicit [`CacheManager::flush`] or
    /// release.
    WriteBack,
}

/// Counters describing coherence traffic (experiment F7 uses these).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CoherenceStats {
    /// Images pulled from the original object.
    pub pulls: u64,
    /// Images pushed back to the original object.
    pub pushes: u64,
    /// acquireImage calls that were satisfied by the local cache.
    pub cache_hits: u64,
}

/// The per-view cache manager: decides when to pull/push images through
/// the view's coherence transport.
pub struct CacheManager {
    policy: CoherencePolicy,
    /// Time-to-live for a pulled image in acquire counts: 0 = always
    /// re-pull (strict), N = serve N acquires from cache before
    /// re-pulling.
    ttl_acquires: u64,
    acquires_since_pull: AtomicU64,
    fresh: std::sync::atomic::AtomicBool,
    dirty: std::sync::atomic::AtomicBool,
    pulls: AtomicU64,
    pushes: AtomicU64,
    cache_hits: AtomicU64,
}

impl CacheManager {
    /// Create a manager with the given policy and cache TTL (in acquire
    /// counts).
    pub fn new(policy: CoherencePolicy, ttl_acquires: u64) -> CacheManager {
        CacheManager {
            policy,
            ttl_acquires,
            acquires_since_pull: AtomicU64::new(0),
            fresh: std::sync::atomic::AtomicBool::new(false),
            dirty: std::sync::atomic::AtomicBool::new(false),
            pulls: AtomicU64::new(0),
            pushes: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> CoherencePolicy {
        self.policy
    }

    /// Decide whether `acquireImage` must pull a fresh image. Updates
    /// stats; the caller performs the actual transport on `true`.
    pub fn on_acquire(&self) -> bool {
        let fresh = self.fresh.load(Ordering::SeqCst);
        let since = self.acquires_since_pull.fetch_add(1, Ordering::SeqCst);
        if fresh && since < self.ttl_acquires {
            self.cache_hits.fetch_add(1, Ordering::SeqCst);
            false
        } else {
            self.pulls.fetch_add(1, Ordering::SeqCst);
            self.acquires_since_pull.store(0, Ordering::SeqCst);
            self.fresh.store(true, Ordering::SeqCst);
            true
        }
    }

    /// Record a mutating method completion; returns whether the image
    /// must be pushed now (write-through).
    pub fn on_mutate(&self) -> bool {
        match self.policy {
            CoherencePolicy::WriteThrough => {
                self.pushes.fetch_add(1, Ordering::SeqCst);
                true
            }
            CoherencePolicy::WriteBack => {
                self.dirty.store(true, Ordering::SeqCst);
                false
            }
        }
    }

    /// Explicit flush (write-back): returns whether a push is needed and
    /// clears the dirty flag.
    pub fn flush(&self) -> bool {
        if self.dirty.swap(false, Ordering::SeqCst) {
            self.pushes.fetch_add(1, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    /// Invalidate the cached image (e.g. the original object changed).
    pub fn invalidate(&self) {
        self.fresh.store(false, Ordering::SeqCst);
    }

    /// Traffic counters.
    pub fn stats(&self) -> CoherenceStats {
        CoherenceStats {
            pulls: self.pulls.load(Ordering::SeqCst),
            pushes: self.pushes.load(Ordering::SeqCst),
            cache_hits: self.cache_hits.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_roundtrip_bytes() {
        let mut st = FieldState::default();
        st.set("a", "hello");
        st.set("b", vec![0u8, 1, 2]);
        let img = Image::from_fields(&st, &["a".into(), "b".into()]);
        let back = Image::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(back, img);
        let mut st2 = FieldState::default();
        back.merge_into(&mut st2);
        assert_eq!(st2.get_str("a"), "hello");
        assert_eq!(st2.get("b"), vec![0, 1, 2]);
    }

    #[test]
    fn image_subset_only() {
        let mut st = FieldState::default();
        st.set("keep", "x");
        st.set("drop", "y");
        let img = Image::from_fields(&st, &["keep".into()]);
        assert_eq!(img.field_names(), vec!["keep"]);
    }

    #[test]
    fn image_rejects_garbage() {
        assert!(Image::from_bytes(&[1, 2, 3]).is_err());
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Image::from_bytes(&huge).is_err());
    }

    #[test]
    fn strict_ttl_always_pulls() {
        let cm = CacheManager::new(CoherencePolicy::WriteThrough, 0);
        assert!(cm.on_acquire());
        assert!(cm.on_acquire());
        assert_eq!(cm.stats().pulls, 2);
        assert_eq!(cm.stats().cache_hits, 0);
    }

    #[test]
    fn ttl_serves_from_cache() {
        let cm = CacheManager::new(CoherencePolicy::WriteThrough, 3);
        assert!(cm.on_acquire()); // pull
        assert!(!cm.on_acquire()); // hit 1
        assert!(!cm.on_acquire()); // hit 2
        assert!(!cm.on_acquire()); // hit 3
        assert!(cm.on_acquire()); // ttl exhausted → pull
        let s = cm.stats();
        assert_eq!((s.pulls, s.cache_hits), (2, 3));
    }

    #[test]
    fn write_through_pushes_every_mutation() {
        let cm = CacheManager::new(CoherencePolicy::WriteThrough, 10);
        assert!(cm.on_mutate());
        assert!(cm.on_mutate());
        assert_eq!(cm.stats().pushes, 2);
        assert!(!cm.flush()); // nothing pending
    }

    #[test]
    fn write_back_defers_until_flush() {
        let cm = CacheManager::new(CoherencePolicy::WriteBack, 10);
        assert!(!cm.on_mutate());
        assert!(!cm.on_mutate());
        assert_eq!(cm.stats().pushes, 0);
        assert!(cm.flush());
        assert!(!cm.flush()); // already clean
        assert_eq!(cm.stats().pushes, 1);
    }

    #[test]
    fn invalidate_forces_repull() {
        let cm = CacheManager::new(CoherencePolicy::WriteThrough, 100);
        assert!(cm.on_acquire());
        assert!(!cm.on_acquire());
        cm.invalidate();
        assert!(cm.on_acquire());
    }
}
