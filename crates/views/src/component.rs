//! The component model: classes (method tables over typed interfaces)
//! and instances (field state + dispatch).
//!
//! This is the Rust substitution for the paper's Java objects: a
//! [`ComponentClass`] plays the role of a class file — it names its
//! interfaces, fields, and methods, and VIG manipulates it the way
//! Javassist manipulates bytecode. Method bodies are closures over the
//! instance's field state; arguments and results are byte strings so the
//! same methods can be invoked locally, over RMI-style channels, or over
//! Switchboard.

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A field's state across method invocations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FieldState(pub BTreeMap<String, Vec<u8>>);

impl FieldState {
    /// Read a field (empty if never written).
    pub fn get(&self, name: &str) -> Vec<u8> {
        self.0.get(name).cloned().unwrap_or_default()
    }

    /// Read a field as UTF-8.
    pub fn get_str(&self, name: &str) -> String {
        String::from_utf8_lossy(&self.get(name)).into_owned()
    }

    /// Write a field.
    pub fn set(&mut self, name: &str, value: impl Into<Vec<u8>>) {
        self.0.insert(name.to_string(), value.into());
    }
}

/// The executable body of a method: mutable field state + argument bytes
/// in, result bytes out.
pub type MethodBody = Arc<dyn Fn(&mut FieldState, &[u8]) -> Result<Vec<u8>, String> + Send + Sync>;

/// A field declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name (`accounts`).
    pub name: String,
    /// Display type (`Account[]`) — carried through to emitted source.
    pub type_name: String,
}

/// A typed interface: a named set of methods (paper §2.1: components
/// "implement and require typed interfaces").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceDef {
    /// Interface name (`MessageI`).
    pub name: String,
    /// Method names belonging to the interface.
    pub methods: Vec<String>,
}

/// A method declaration + body.
#[derive(Clone)]
pub struct MethodDef {
    /// Method name (`getPhone`).
    pub name: String,
    /// Display signature (`String getPhone(String name)`).
    pub signature: String,
    /// Fields this method reads or writes — VIG copies exactly these into
    /// views ("VIG parses the method code and copies the declarations of
    /// all used class fields").
    pub uses_fields: Vec<String>,
    /// Whether the method mutates state (drives coherence write-back).
    pub mutates: bool,
    /// Executable body.
    pub body: MethodBody,
}

impl std::fmt::Debug for MethodDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MethodDef")
            .field("name", &self.name)
            .field("signature", &self.signature)
            .field("uses_fields", &self.uses_fields)
            .field("mutates", &self.mutates)
            .finish()
    }
}

/// A component class: the original object's "class file".
pub struct ComponentClass {
    /// Class name (`MailClient`).
    pub name: String,
    /// Implemented interfaces.
    pub interfaces: Vec<InterfaceDef>,
    /// Declared fields.
    pub fields: Vec<FieldDef>,
    /// Methods by name (interface methods + private helpers).
    pub methods: HashMap<String, MethodDef>,
    /// Superclass, if any — VIG follows this chain to find method
    /// implementations (paper §4.3 inheritance handling).
    pub parent: Option<Arc<ComponentClass>>,
}

impl ComponentClass {
    /// Start building a class.
    pub fn builder(name: impl Into<String>) -> ComponentClassBuilder {
        ComponentClassBuilder {
            class: ComponentClass {
                name: name.into(),
                interfaces: Vec::new(),
                fields: Vec::new(),
                methods: HashMap::new(),
                parent: None,
            },
        }
    }

    /// Find a method, following the inheritance chain upward.
    pub fn resolve_method(&self, name: &str) -> Option<(&MethodDef, &ComponentClass)> {
        if let Some(m) = self.methods.get(name) {
            return Some((m, self));
        }
        self.parent.as_deref().and_then(|p| p.resolve_method(name))
    }

    /// Find a field declaration, following the inheritance chain.
    pub fn resolve_field(&self, name: &str) -> Option<&FieldDef> {
        self.fields
            .iter()
            .find(|f| f.name == name)
            .or_else(|| self.parent.as_deref().and_then(|p| p.resolve_field(name)))
    }

    /// Find an interface, following the inheritance chain.
    pub fn resolve_interface(&self, name: &str) -> Option<&InterfaceDef> {
        self.interfaces.iter().find(|i| i.name == name).or_else(|| {
            self.parent
                .as_deref()
                .and_then(|p| p.resolve_interface(name))
        })
    }

    /// All interfaces including inherited ones.
    pub fn all_interfaces(&self) -> Vec<&InterfaceDef> {
        let mut out: Vec<&InterfaceDef> = self.interfaces.iter().collect();
        if let Some(p) = self.parent.as_deref() {
            out.extend(p.all_interfaces());
        }
        out
    }

    /// Instantiate with default (empty) field state.
    pub fn instantiate(self: &Arc<Self>) -> Arc<ComponentInstance> {
        Arc::new(ComponentInstance {
            class: self.clone(),
            state: Mutex::new(FieldState::default()),
        })
    }
}

impl std::fmt::Debug for ComponentClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComponentClass")
            .field("name", &self.name)
            .field("interfaces", &self.interfaces)
            .field("fields", &self.fields)
            .field("methods", &self.methods.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Fluent builder for [`ComponentClass`].
pub struct ComponentClassBuilder {
    class: ComponentClass,
}

impl ComponentClassBuilder {
    /// Declare an interface with its method names.
    pub fn interface<I, S>(mut self, name: impl Into<String>, methods: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.class.interfaces.push(InterfaceDef {
            name: name.into(),
            methods: methods.into_iter().map(Into::into).collect(),
        });
        self
    }

    /// Declare a field.
    pub fn field(mut self, name: impl Into<String>, type_name: impl Into<String>) -> Self {
        self.class.fields.push(FieldDef {
            name: name.into(),
            type_name: type_name.into(),
        });
        self
    }

    /// Declare a method.
    pub fn method<F>(
        mut self,
        name: impl Into<String>,
        signature: impl Into<String>,
        uses_fields: &[&str],
        mutates: bool,
        body: F,
    ) -> Self
    where
        F: Fn(&mut FieldState, &[u8]) -> Result<Vec<u8>, String> + Send + Sync + 'static,
    {
        let name = name.into();
        self.class.methods.insert(
            name.clone(),
            MethodDef {
                name,
                signature: signature.into(),
                uses_fields: uses_fields.iter().map(|s| s.to_string()).collect(),
                mutates,
                body: Arc::new(body),
            },
        );
        self
    }

    /// Set the superclass.
    pub fn extends(mut self, parent: Arc<ComponentClass>) -> Self {
        self.class.parent = Some(parent);
        self
    }

    /// Validate and finish: every interface method must resolve somewhere
    /// in the chain.
    pub fn build(self) -> Result<Arc<ComponentClass>, String> {
        for iface in &self.class.interfaces {
            for m in &iface.methods {
                if self.class.resolve_method(m).is_none() {
                    return Err(format!(
                        "interface {} declares '{m}' but class {} has no implementation",
                        iface.name, self.class.name
                    ));
                }
            }
        }
        Ok(Arc::new(self.class))
    }
}

/// A running component instance: the *original object*.
pub struct ComponentInstance {
    class: Arc<ComponentClass>,
    state: Mutex<FieldState>,
}

impl ComponentInstance {
    /// The instance's class.
    pub fn class(&self) -> &Arc<ComponentClass> {
        &self.class
    }

    /// Invoke a method by name (resolves through the inheritance chain).
    pub fn invoke(&self, method: &str, args: &[u8]) -> Result<Vec<u8>, String> {
        let (def, _) = self
            .class
            .resolve_method(method)
            .ok_or_else(|| format!("no such method '{method}' on {}", self.class.name))?;
        let body = def.body.clone();
        let mut state = self.state.lock();
        body(&mut state, args)
    }

    /// Read a field snapshot (tests + coherence).
    pub fn field(&self, name: &str) -> Vec<u8> {
        self.state.lock().get(name)
    }

    /// Write a field directly (initialization).
    pub fn set_field(&self, name: &str, value: impl Into<Vec<u8>>) {
        self.state.lock().set(name, value);
    }

    /// Extract the named fields as a coherence image.
    pub fn extract_image(&self, fields: &[String]) -> crate::coherence::Image {
        let state = self.state.lock();
        crate::coherence::Image::from_fields(&state, fields)
    }

    /// Merge a coherence image into this object's state.
    pub fn merge_image(&self, image: &crate::coherence::Image) {
        let mut state = self.state.lock();
        image.merge_into(&mut state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_class() -> Arc<ComponentClass> {
        ComponentClass::builder("Counter")
            .interface("CounterI", ["incr", "get"])
            .field("count", "long")
            .method("incr", "void incr()", &["count"], true, |st, _| {
                let v: i64 = st.get_str("count").parse().unwrap_or(0);
                st.set("count", (v + 1).to_string());
                Ok(vec![])
            })
            .method("get", "long get()", &["count"], false, |st, _| {
                Ok(st.get("count"))
            })
            .build()
            .unwrap()
    }

    #[test]
    fn invoke_and_state() {
        let inst = counter_class().instantiate();
        inst.invoke("incr", b"").unwrap();
        inst.invoke("incr", b"").unwrap();
        assert_eq!(inst.invoke("get", b"").unwrap(), b"2");
    }

    #[test]
    fn unknown_method_errors() {
        let inst = counter_class().instantiate();
        assert!(inst.invoke("reset", b"").is_err());
    }

    #[test]
    fn builder_rejects_unimplemented_interface_method() {
        let r = ComponentClass::builder("Bad")
            .interface("I", ["missing"])
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn inheritance_resolves_methods_and_fields() {
        let base = counter_class();
        let derived = ComponentClass::builder("FancyCounter")
            .extends(base)
            .interface("ResetI", ["reset"])
            .method("reset", "void reset()", &["count"], true, |st, _| {
                st.set("count", "0");
                Ok(vec![])
            })
            .build()
            .unwrap();
        let inst = derived.instantiate();
        inst.invoke("incr", b"").unwrap(); // inherited
        inst.invoke("reset", b"").unwrap(); // own
        assert_eq!(inst.invoke("get", b"").unwrap(), b"0");
        assert!(derived.resolve_field("count").is_some());
        assert!(derived.resolve_interface("CounterI").is_some());
        assert_eq!(derived.all_interfaces().len(), 2);
    }

    #[test]
    fn instances_have_independent_state() {
        let class = counter_class();
        let a = class.instantiate();
        let b = class.instantiate();
        a.invoke("incr", b"").unwrap();
        assert_eq!(a.invoke("get", b"").unwrap(), b"1");
        assert_eq!(b.invoke("get", b"").unwrap(), b"");
    }

    #[test]
    fn image_roundtrip() {
        let inst = counter_class().instantiate();
        inst.set_field("count", "41");
        let img = inst.extract_image(&["count".to_string()]);
        let other = counter_class().instantiate();
        other.merge_image(&img);
        other.invoke("incr", b"").unwrap();
        assert_eq!(other.invoke("get", b"").unwrap(), b"42");
    }
}
