//! View definitions — the XML rule language of Table 3(b).
//!
//! ```xml
//! <View name="ViewMailClient_Partner">
//!   <Represents name="MailClient"/>
//!   <Restricts>
//!     <Interface name="MessageI" type="local"/>
//!     <Interface name="NotesI"   type="rmi"/>
//!     <Interface name="AddressI" type="switchboard"/>
//!   </Restricts>
//!   <Adds_Fields>
//!     <Field name="accountCopy" type="Account"/>
//!   </Adds_Fields>
//!   <Adds_Methods>
//!     <MSign>void mergeImageIntoView(byte[])</MSign>
//!     <MBody>mail.merge_image_into_view</MBody>
//!   </Adds_Methods>
//!   <Customizes_Methods>
//!     <MSign>boolean addMeeting(String name)</MSign>
//!     <MBody>mail.request_meeting</MBody>
//!   </Customizes_Methods>
//! </View>
//! ```
//!
//! `<MBody>` names a [`MethodLibrary`](crate::MethodLibrary) entry (see
//! the substitution note there). `<MSign>`/`<MBody>` appear as sibling
//! pairs exactly as in the paper's table; a nested `<Method>` wrapper is
//! accepted too.

use crate::component::ComponentClass;
use psf_xml::Element;
use std::collections::BTreeSet;

/// How an interface is exposed by a view (paper §4.1: "the view
/// description can specify a type (local, rmi, or switch)").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExposureType {
    /// Available only to clients in the same address space; state is
    /// copied into the view.
    Local,
    /// Forwarded to the original object over plain remote calls.
    Rmi,
    /// Forwarded over a secure Switchboard channel.
    Switchboard,
}

impl ExposureType {
    /// Parse the XML attribute value.
    pub fn parse(s: &str) -> Result<ExposureType, String> {
        match s {
            "local" => Ok(ExposureType::Local),
            "rmi" => Ok(ExposureType::Rmi),
            "switchboard" | "switch" => Ok(ExposureType::Switchboard),
            other => Err(format!(
                "unknown interface exposure type '{other}' (expected local/rmi/switchboard)"
            )),
        }
    }

    /// XML attribute value.
    pub fn as_str(&self) -> &'static str {
        match self {
            ExposureType::Local => "local",
            ExposureType::Rmi => "rmi",
            ExposureType::Switchboard => "switchboard",
        }
    }
}

/// One interface restriction: the view implements `name`, exposed as
/// `exposure`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceRestriction {
    /// Interface name on the represented object.
    pub name: String,
    /// Exposure type.
    pub exposure: ExposureType,
}

/// A field added by the view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddedField {
    /// Field name.
    pub name: String,
    /// Display type.
    pub type_name: String,
}

/// An added or customized method: display signature + body reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSpec {
    /// Display signature, e.g. `boolean addMeeting(String name)`.
    pub signature: String,
    /// Library reference resolving to the executable body.
    pub body_ref: String,
}

impl MethodSpec {
    /// The bare method name: the identifier before `(`.
    pub fn method_name(&self) -> String {
        let head = self.signature.split('(').next().unwrap_or("");
        head.split_whitespace().last().unwrap_or("").to_string()
    }
}

/// A complete view definition (Table 3b).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ViewSpec {
    /// View name (`ViewMailClient_Partner`).
    pub name: String,
    /// The represented (original) component class.
    pub represents: String,
    /// Interface restrictions.
    pub restricts: Vec<InterfaceRestriction>,
    /// Added fields.
    pub adds_fields: Vec<AddedField>,
    /// Added methods (constructors, coherence methods, helpers).
    pub adds_methods: Vec<MethodSpec>,
    /// Customized (overridden) methods.
    pub customizes_methods: Vec<MethodSpec>,
}

impl ViewSpec {
    /// Start a programmatic builder (alternative to XML).
    pub fn new(name: impl Into<String>, represents: impl Into<String>) -> ViewSpec {
        ViewSpec {
            name: name.into(),
            represents: represents.into(),
            ..Default::default()
        }
    }

    /// Builder: restrict an interface.
    pub fn restrict(mut self, name: impl Into<String>, exposure: ExposureType) -> Self {
        self.restricts.push(InterfaceRestriction {
            name: name.into(),
            exposure,
        });
        self
    }

    /// Builder: add a field.
    pub fn add_field(mut self, name: impl Into<String>, type_name: impl Into<String>) -> Self {
        self.adds_fields.push(AddedField {
            name: name.into(),
            type_name: type_name.into(),
        });
        self
    }

    /// Builder: add a method.
    pub fn add_method(mut self, signature: impl Into<String>, body_ref: impl Into<String>) -> Self {
        self.adds_methods.push(MethodSpec {
            signature: signature.into(),
            body_ref: body_ref.into(),
        });
        self
    }

    /// Builder: customize an existing method.
    pub fn customize_method(
        mut self,
        signature: impl Into<String>,
        body_ref: impl Into<String>,
    ) -> Self {
        self.customizes_methods.push(MethodSpec {
            signature: signature.into(),
            body_ref: body_ref.into(),
        });
        self
    }

    /// Parse from XML text.
    pub fn parse_xml(xml: &str) -> Result<ViewSpec, String> {
        let root = psf_xml::parse(xml).map_err(|e| e.to_string())?;
        ViewSpec::from_element(&root)
    }

    /// Parse from a parsed element tree.
    pub fn from_element(root: &Element) -> Result<ViewSpec, String> {
        if root.name != "View" {
            return Err(format!("expected <View>, found <{}>", root.name));
        }
        let name = root
            .get_attr("name")
            .ok_or("<View> requires a name attribute")?
            .to_string();
        let represents = root
            .find("Represents")
            .and_then(|e| e.get_attr("name"))
            .ok_or("<View> requires <Represents name=...>")?
            .to_string();
        let mut spec = ViewSpec::new(name, represents);

        if let Some(restricts) = root.find("Restricts") {
            for iface in restricts.find_all("Interface") {
                let iname = iface
                    .get_attr("name")
                    .ok_or("<Interface> requires a name")?;
                let exposure = ExposureType::parse(iface.get_attr("type").unwrap_or("local"))?;
                spec.restricts.push(InterfaceRestriction {
                    name: iname.to_string(),
                    exposure,
                });
            }
        }
        if let Some(fields) = root.find("Adds_Fields") {
            for field in fields.find_all("Field") {
                spec.adds_fields.push(AddedField {
                    name: field
                        .get_attr("name")
                        .ok_or("<Field> requires a name")?
                        .to_string(),
                    type_name: field.get_attr("type").unwrap_or("Object").to_string(),
                });
            }
        }
        if let Some(el) = root.find("Adds_Methods") {
            spec.adds_methods = parse_method_pairs(el)?;
        }
        if let Some(el) = root.find("Customizes_Methods") {
            spec.customizes_methods = parse_method_pairs(el)?;
        }
        Ok(spec)
    }

    /// The set of method names a client of this view can invoke, resolved
    /// against the represented class: every method of every restricted
    /// interface, plus added methods, plus customized methods. View
    /// constructors (an added method named like the view itself) and the
    /// VIG coherence methods are framework plumbing, not client surface,
    /// and are excluded. Errors if a restricted interface does not exist
    /// on the class — the caller (psf-analysis PSF006) reports that
    /// separately.
    pub fn exposed_method_names(&self, class: &ComponentClass) -> Result<BTreeSet<String>, String> {
        let mut out = BTreeSet::new();
        for r in &self.restricts {
            let iface = class.resolve_interface(&r.name).ok_or_else(|| {
                format!(
                    "view '{}' restricts unknown interface '{}' on class '{}'",
                    self.name, r.name, class.name
                )
            })?;
            out.extend(iface.methods.iter().cloned());
        }
        for m in self.adds_methods.iter().chain(&self.customizes_methods) {
            let name = m.method_name();
            if name == self.name || crate::vig::COHERENCE_METHODS.contains(&name.as_str()) {
                continue;
            }
            out.insert(name);
        }
        Ok(out)
    }

    /// Serialize to the Table 3(b) XML form.
    pub fn to_xml(&self) -> String {
        let mut view = Element::new("View").attr("name", &self.name);
        view = view.child(Element::new("Represents").attr("name", &self.represents));
        if !self.restricts.is_empty() {
            let mut r = Element::new("Restricts");
            for i in &self.restricts {
                r = r.child(
                    Element::new("Interface")
                        .attr("name", &i.name)
                        .attr("type", i.exposure.as_str()),
                );
            }
            view = view.child(r);
        }
        if !self.adds_fields.is_empty() {
            let mut f = Element::new("Adds_Fields");
            for field in &self.adds_fields {
                f = f.child(
                    Element::new("Field")
                        .attr("name", &field.name)
                        .attr("type", &field.type_name),
                );
            }
            view = view.child(f);
        }
        for (tag, methods) in [
            ("Adds_Methods", &self.adds_methods),
            ("Customizes_Methods", &self.customizes_methods),
        ] {
            if !methods.is_empty() {
                let mut el = Element::new(tag);
                for m in methods.iter() {
                    el = el.child(Element::new("MSign").with_text(&m.signature));
                    el = el.child(Element::new("MBody").with_text(&m.body_ref));
                }
                view = view.child(el);
            }
        }
        view.to_xml()
    }
}

fn parse_method_pairs(el: &Element) -> Result<Vec<MethodSpec>, String> {
    let mut out = Vec::new();
    let mut pending_sign: Option<String> = None;
    for child in &el.children {
        match child.name.as_str() {
            "MSign" => {
                if let Some(prev) = pending_sign.take() {
                    return Err(format!("<MSign>{prev}</MSign> has no matching <MBody>"));
                }
                pending_sign = Some(child.text.clone());
            }
            "MBody" => match pending_sign.take() {
                Some(signature) => out.push(MethodSpec {
                    signature,
                    body_ref: child.text.clone(),
                }),
                None => return Err("<MBody> without preceding <MSign>".into()),
            },
            "Method" => {
                let signature = child
                    .find("MSign")
                    .map(|e| e.text.clone())
                    .ok_or("<Method> requires <MSign>")?;
                let body_ref = child
                    .find("MBody")
                    .map(|e| e.text.clone())
                    .ok_or("<Method> requires <MBody>")?;
                out.push(MethodSpec {
                    signature,
                    body_ref,
                });
            }
            other => return Err(format!("unexpected <{other}> in method list")),
        }
    }
    if let Some(prev) = pending_sign {
        return Err(format!("<MSign>{prev}</MSign> has no matching <MBody>"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PARTNER_XML: &str = r#"
        <View name="ViewMailClient_Partner">
          <Represents name="MailClient"/>
          <Restricts>
            <Interface name="MessageI" type="local"/>
            <Interface name="NotesI" type="rmi"/>
            <Interface name="AddressI" type="switchboard"/>
          </Restricts>
          <Adds_Fields>
            <Field name="accountCopy" type="Account"/>
          </Adds_Fields>
          <Adds_Methods>
            <MSign>void mergeImageIntoView(byte[])</MSign>
            <MBody>coherence.merge_into_view</MBody>
            <MSign>byte[] extractImageFromView()</MSign>
            <MBody>coherence.extract_from_view</MBody>
          </Adds_Methods>
          <Customizes_Methods>
            <MSign>boolean addMeeting(String name)</MSign>
            <MBody>mail.request_meeting</MBody>
          </Customizes_Methods>
        </View>"#;

    #[test]
    fn t3_parse_partner_view() {
        let spec = ViewSpec::parse_xml(PARTNER_XML).unwrap();
        assert_eq!(spec.name, "ViewMailClient_Partner");
        assert_eq!(spec.represents, "MailClient");
        assert_eq!(spec.restricts.len(), 3);
        assert_eq!(spec.restricts[0].exposure, ExposureType::Local);
        assert_eq!(spec.restricts[1].exposure, ExposureType::Rmi);
        assert_eq!(spec.restricts[2].exposure, ExposureType::Switchboard);
        assert_eq!(spec.adds_fields[0].name, "accountCopy");
        assert_eq!(spec.adds_methods.len(), 2);
        assert_eq!(spec.customizes_methods[0].method_name(), "addMeeting");
    }

    #[test]
    fn xml_roundtrip() {
        let spec = ViewSpec::parse_xml(PARTNER_XML).unwrap();
        let back = ViewSpec::parse_xml(&spec.to_xml()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn builder_equivalent_to_xml() {
        let spec = ViewSpec::new("V", "C")
            .restrict("I", ExposureType::Rmi)
            .add_field("f", "int")
            .add_method("void m()", "lib.m")
            .customize_method("void c()", "lib.c");
        let back = ViewSpec::parse_xml(&spec.to_xml()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn method_name_extraction() {
        let m = MethodSpec {
            signature: "String getPhone( String name )".into(),
            body_ref: "x".into(),
        };
        assert_eq!(m.method_name(), "getPhone");
        let ctor = MethodSpec {
            signature: "ViewMailClient_Partner(String[] args)".into(),
            body_ref: "x".into(),
        };
        assert_eq!(ctor.method_name(), "ViewMailClient_Partner");
    }

    #[test]
    fn orphan_msign_rejected() {
        let xml = r#"<View name="V"><Represents name="C"/>
            <Adds_Methods><MSign>void x()</MSign></Adds_Methods></View>"#;
        assert!(ViewSpec::parse_xml(xml)
            .unwrap_err()
            .contains("no matching"));
    }

    #[test]
    fn orphan_mbody_rejected() {
        let xml = r#"<View name="V"><Represents name="C"/>
            <Adds_Methods><MBody>lib.x</MBody></Adds_Methods></View>"#;
        assert!(ViewSpec::parse_xml(xml).is_err());
    }

    #[test]
    fn missing_represents_rejected() {
        assert!(ViewSpec::parse_xml(r#"<View name="V"/>"#).is_err());
    }

    #[test]
    fn bad_exposure_rejected() {
        let xml = r#"<View name="V"><Represents name="C"/>
            <Restricts><Interface name="I" type="carrier-pigeon"/></Restricts></View>"#;
        let err = ViewSpec::parse_xml(xml).unwrap_err();
        assert!(err.contains("carrier-pigeon"));
    }

    #[test]
    fn method_wrapper_form_accepted() {
        let xml = r#"<View name="V"><Represents name="C"/>
            <Adds_Methods><Method><MSign>void m()</MSign><MBody>lib.m</MBody></Method></Adds_Methods></View>"#;
        let spec = ViewSpec::parse_xml(xml).unwrap();
        assert_eq!(spec.adds_methods.len(), 1);
    }
}
