//! Bindings: how a view's non-local interfaces reach the original object.
//!
//! Table 3(b) gives each restricted interface an exposure type:
//! `local` (same address space), `rmi` (plain remote calls), or
//! `switchboard` (secure monitored channel). [`RemoteCall`] abstracts the
//! two remote flavours; Switchboard channels implement it directly (a
//! plain-mode channel *is* our RMI substitute — see DESIGN.md).

use crate::component::ComponentInstance;
use std::sync::Arc;

/// Something that can carry a remote method invocation.
pub trait RemoteCall: Send + Sync {
    /// Invoke `method` with `args` on the remote original object.
    fn call_remote(&self, method: &str, args: &[u8]) -> Result<Vec<u8>, String>;

    /// Short transport label for emitted source / diagnostics.
    fn transport_label(&self) -> &'static str;
}

impl RemoteCall for psf_switchboard::Channel {
    fn call_remote(&self, method: &str, args: &[u8]) -> Result<Vec<u8>, String> {
        self.call(method, args).map_err(|e| e.to_string())
    }

    fn transport_label(&self) -> &'static str {
        if self.peer().is_some() {
            "switchboard"
        } else {
            "rmi"
        }
    }
}

/// An in-process remote stand-in: calls go straight to a component
/// instance. Used by tests and by co-located deployments.
pub struct InProcessRemote {
    target: Arc<ComponentInstance>,
    label: &'static str,
}

impl InProcessRemote {
    /// Wrap an instance as an "rmi" endpoint.
    pub fn rmi(target: Arc<ComponentInstance>) -> Arc<dyn RemoteCall> {
        Arc::new(InProcessRemote {
            target,
            label: "rmi",
        })
    }

    /// Wrap an instance as a "switchboard" endpoint.
    pub fn switchboard(target: Arc<ComponentInstance>) -> Arc<dyn RemoteCall> {
        Arc::new(InProcessRemote {
            target,
            label: "switchboard",
        })
    }
}

impl RemoteCall for InProcessRemote {
    fn call_remote(&self, method: &str, args: &[u8]) -> Result<Vec<u8>, String> {
        dispatch_with_coherence(&self.target, method, args)
    }

    fn transport_label(&self) -> &'static str {
        self.label
    }
}

/// Reserved method name: pull a coherence image of the named fields
/// (args = newline-separated field names).
pub const EXTRACT_IMAGE: &str = "__extract_image";
/// Reserved method name: merge a coherence image (args = image bytes).
pub const MERGE_IMAGE: &str = "__merge_image";

/// Serve a component's methods *plus* the reserved coherence endpoints —
/// the dispatch every remote-facing host uses, whether in-process or
/// behind a Switchboard channel.
pub fn dispatch_with_coherence(
    target: &Arc<ComponentInstance>,
    method: &str,
    args: &[u8],
) -> Result<Vec<u8>, String> {
    match method {
        EXTRACT_IMAGE => {
            let fields: Vec<String> = String::from_utf8_lossy(args)
                .lines()
                .map(str::to_string)
                .collect();
            Ok(target.extract_image(&fields).to_bytes())
        }
        MERGE_IMAGE => {
            let image = crate::coherence::Image::from_bytes(args)?;
            target.merge_image(&image);
            Ok(Vec::new())
        }
        _ => target.invoke(method, args),
    }
}

/// Register every method of `instance` (and the coherence endpoints) as
/// handlers on a Switchboard channel, making the channel a remote face of
/// the original object.
pub fn serve_on_channel(channel: &psf_switchboard::Channel, instance: Arc<ComponentInstance>) {
    let mut methods: Vec<String> = instance.class().methods.keys().cloned().collect();
    let mut parent = instance.class().parent.clone();
    while let Some(p) = parent {
        methods.extend(p.methods.keys().cloned());
        parent = p.parent.clone();
    }
    for m in methods {
        let inst = instance.clone();
        let name = m.clone();
        channel.register_handler(m, move |args| inst.invoke(&name, args));
    }
    let inst = instance.clone();
    channel.register_handler(EXTRACT_IMAGE, move |args| {
        dispatch_with_coherence(&inst, EXTRACT_IMAGE, args)
    });
    let inst = instance;
    channel.register_handler(MERGE_IMAGE, move |args| {
        dispatch_with_coherence(&inst, MERGE_IMAGE, args)
    });
}

/// Where a view's interface traffic goes.
#[derive(Clone)]
pub enum Binding {
    /// Methods run inside the view itself (state was copied in).
    Local,
    /// Methods forward over an unauthenticated remote channel.
    Rmi(Arc<dyn RemoteCall>),
    /// Methods forward over a secure, monitored Switchboard channel.
    Switchboard(Arc<dyn RemoteCall>),
}

impl Binding {
    /// The remote transport, if any.
    pub fn remote(&self) -> Option<&Arc<dyn RemoteCall>> {
        match self {
            Binding::Local => None,
            Binding::Rmi(r) | Binding::Switchboard(r) => Some(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ComponentClass;

    #[test]
    fn in_process_remote_forwards() {
        let class = ComponentClass::builder("Echo")
            .interface("EchoI", ["echo"])
            .method("echo", "byte[] echo(byte[])", &[], false, |_, a| {
                Ok(a.to_vec())
            })
            .build()
            .unwrap();
        let inst = class.instantiate();
        let remote = InProcessRemote::rmi(inst);
        assert_eq!(remote.call_remote("echo", b"hi").unwrap(), b"hi");
        assert_eq!(remote.transport_label(), "rmi");
    }
}
