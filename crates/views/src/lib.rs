//! # psf-views
//!
//! **Object views** (HPDC'03 §4): "Views provide a mechanism by which to
//! define multiple physical realizations of the same logical component."
//! A view of an *original object* (1) implements a subset of its
//! functionality — an *object view* — and/or (2) works with a subset of
//! its data — a *data view*; the interesting views are hybrids of both.
//!
//! The pieces, mapped to the paper:
//!
//! * [`component`] — the component model: classes as method tables over
//!   named interfaces, instances with field state. This is our Rust
//!   substitution for Java classes (DESIGN.md): behaviour lives in
//!   dispatchable method bodies rather than bytecode.
//! * [`spec`] — the XML view-definition language of Table 3(b):
//!   `<View> <Represents> <Restricts> <Adds_Fields> <Adds_Methods>
//!   <Customizes_Methods>`, with an exposure type per interface
//!   (`local`, `rmi`, `switchboard`).
//! * [`vig`] — **VIG**, the view generator (§4.3): defers generation to
//!   first deployment, copies local methods (following the inheritance
//!   chain), turns `rmi`/`switchboard` interfaces into remote stubs
//!   against the original object, injects cache-coherence methods, wraps
//!   every view method in `acquireImage`/`releaseImage`, and rejects
//!   specs that reference undefined fields/methods with errors that guide
//!   repair. Also emits Table 5-style source for inspection.
//! * [`coherence`] — the cache manager: view state as a mergeable /
//!   extractable *image*, pull-on-acquire and write-through/write-back
//!   policies.
//! * [`binding`] — how remote interfaces reach the original object: a
//!   [`RemoteCall`](binding::RemoteCall) abstraction implemented by
//!   Switchboard channels (both secure and plain/rmi modes) and by
//!   in-process handles for tests.
//! * [`acl`] — Table 4: role→view access-control tables with
//!   single-sign-on tokens (authorization happens once, at view
//!   instantiation; subsequent requests ride the already-authorized view).
//! * [`auto`] — the paper's §6 future work, implemented: fully automatic
//!   view derivation from capability hints ("these rules are also used
//!   for automatic view creation", Table 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod auto;
pub mod binding;
pub mod coherence;
pub mod component;
pub mod library;
pub mod spec;
pub mod vig;

pub use acl::{SsoToken, ViewAcl};
pub use auto::{derive_spec, AutoViewError, CapabilityRule};
pub use binding::{Binding, RemoteCall};
pub use coherence::{CacheManager, CoherencePolicy, Image};
pub use component::{
    ComponentClass, ComponentClassBuilder, ComponentInstance, FieldDef, InterfaceDef, MethodDef,
};
pub use library::MethodLibrary;
pub use spec::{ExposureType, MethodSpec, ViewSpec};
pub use vig::{GeneratedView, ViewInstance, Vig, VigError};
