//! Automatic view derivation — the paper's stated goal, implemented.
//!
//! §6: "Ideally, VIG should automatically generate the entire view code
//! … In the future, we plan to fully automate the process of creating
//! views based on a few hints from the programmer." And Table 4's
//! caption: the role→view rules "are also used for automatic view
//! creation."
//!
//! [`CapabilityRule`] is the hint language: per role, which methods are
//! allowed (or explicitly denied) and how interfaces should be exposed.
//! [`derive_spec`] turns a rule plus the represented class into a
//! complete [`ViewSpec`] — selecting interfaces, choosing exposure types,
//! and synthesizing deny-stubs for carved-out methods — which then flows
//! through the ordinary VIG pipeline.

use crate::component::ComponentClass;
use crate::library::MethodLibrary;
use crate::spec::{ExposureType, ViewSpec};
use std::collections::{BTreeMap, BTreeSet};

/// The "few hints from the programmer": a capability set for one role.
#[derive(Debug, Clone, Default)]
pub struct CapabilityRule {
    /// View name to generate (e.g. `ViewMailClient_Partner`).
    pub view_name: String,
    /// Methods the role may call. An interface is included iff it has at
    /// least one allowed method.
    pub allow: BTreeSet<String>,
    /// Methods that must be *visible but denied* (present on an included
    /// interface yet not allowed) get synthesized deny-stubs; listing a
    /// method here additionally forces the stub even if `allow` contains
    /// it (deny wins).
    pub deny: BTreeSet<String>,
    /// Exposure overrides per interface; interfaces not listed default to
    /// [`default_exposure`](Self::default_exposure).
    pub exposure: BTreeMap<String, ExposureType>,
    /// Default exposure for included interfaces (the safe default is
    /// `Switchboard`: state stays on the original object behind a secure
    /// channel).
    pub default_exposure: Option<ExposureType>,
}

impl CapabilityRule {
    /// Start a rule for a view name.
    pub fn new(view_name: impl Into<String>) -> CapabilityRule {
        CapabilityRule {
            view_name: view_name.into(),
            ..Default::default()
        }
    }

    /// Allow a method.
    pub fn allow(mut self, method: impl Into<String>) -> Self {
        self.allow.insert(method.into());
        self
    }

    /// Allow every method of an interface (resolved at derivation).
    pub fn allow_interface(mut self, iface: impl Into<String>) -> Self {
        // Marker: resolved against the class in derive_spec.
        self.allow.insert(format!("{}::*", iface.into()));
        self
    }

    /// Explicitly deny a method (synthesizes a deny-stub).
    pub fn deny(mut self, method: impl Into<String>) -> Self {
        self.deny.insert(method.into());
        self
    }

    /// Set an interface's exposure.
    pub fn expose(mut self, iface: impl Into<String>, exposure: ExposureType) -> Self {
        self.exposure.insert(iface.into(), exposure);
        self
    }

    /// Set the default exposure for included interfaces.
    pub fn default_expose(mut self, exposure: ExposureType) -> Self {
        self.default_exposure = Some(exposure);
        self
    }
}

/// Errors from automatic derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutoViewError {
    /// An allowed/denied method does not exist on the class.
    UnknownMethod(String),
    /// An exposure override names an interface the class lacks.
    UnknownInterface(String),
    /// The rule allows nothing: the view would be empty.
    EmptyView(String),
}

impl core::fmt::Display for AutoViewError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AutoViewError::UnknownMethod(m) => {
                write!(f, "hint names method '{m}' which the class does not define")
            }
            AutoViewError::UnknownInterface(i) => {
                write!(
                    f,
                    "hint names interface '{i}' which the class does not implement"
                )
            }
            AutoViewError::EmptyView(v) => {
                write!(
                    f,
                    "rule for '{v}' allows no methods; refusing to derive an empty view"
                )
            }
        }
    }
}

impl std::error::Error for AutoViewError {}

/// The deny-stub body reference prefix registered by [`derive_spec`].
pub const DENY_BODY_PREFIX: &str = "auto.deny.";

/// Derive a complete [`ViewSpec`] from a capability rule, registering any
/// synthesized deny-stub bodies into `library`.
pub fn derive_spec(
    class: &ComponentClass,
    rule: &CapabilityRule,
    library: &mut MethodLibrary,
) -> Result<ViewSpec, AutoViewError> {
    // Expand interface wildcards and validate every named method.
    let all_ifaces = class.all_interfaces();
    let mut allowed: BTreeSet<String> = BTreeSet::new();
    for entry in &rule.allow {
        if let Some(iface_name) = entry.strip_suffix("::*") {
            let iface = all_ifaces
                .iter()
                .find(|i| i.name == iface_name)
                .ok_or_else(|| AutoViewError::UnknownInterface(iface_name.to_string()))?;
            allowed.extend(iface.methods.iter().cloned());
        } else {
            if class.resolve_method(entry).is_none() {
                return Err(AutoViewError::UnknownMethod(entry.clone()));
            }
            allowed.insert(entry.clone());
        }
    }
    for m in &rule.deny {
        if class.resolve_method(m).is_none() {
            return Err(AutoViewError::UnknownMethod(m.clone()));
        }
        allowed.remove(m);
    }
    for iface in rule.exposure.keys() {
        if !all_ifaces.iter().any(|i| &i.name == iface) {
            return Err(AutoViewError::UnknownInterface(iface.clone()));
        }
    }
    if allowed.is_empty() {
        return Err(AutoViewError::EmptyView(rule.view_name.clone()));
    }

    // Include interfaces with ≥1 allowed method; deny-stub the rest of
    // their methods (method-granularity access control, §4.2).
    let mut spec = ViewSpec::new(&rule.view_name, &class.name);
    for iface in all_ifaces {
        let iface_allowed: Vec<&String> = iface
            .methods
            .iter()
            .filter(|m| allowed.contains(*m))
            .collect();
        if iface_allowed.is_empty() {
            continue;
        }
        let exposure = rule
            .exposure
            .get(&iface.name)
            .copied()
            .or(rule.default_exposure)
            .unwrap_or(ExposureType::Switchboard);
        spec = spec.restrict(iface.name.clone(), exposure);

        // Carve out the not-allowed methods on included interfaces.
        for m in &iface.methods {
            if allowed.contains(m) {
                continue;
            }
            let body_ref = format!("{DENY_BODY_PREFIX}{}.{m}", rule.view_name);
            let denied_method = m.clone();
            let view_name = rule.view_name.clone();
            library.register_full(body_ref.clone(), &[], false, move |_, _| {
                Err(format!(
                    "access denied: '{denied_method}' is not granted to {view_name}"
                ))
            });
            let signature = class
                .resolve_method(m)
                .map(|(d, _)| d.signature.clone())
                .unwrap_or_else(|| format!("{m}(...)"));
            spec = spec.customize_method(signature, body_ref);
        }
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::InProcessRemote;
    use crate::coherence::CoherencePolicy;
    use crate::vig::Vig;
    use std::sync::Arc;

    fn mail_client() -> Arc<ComponentClass> {
        ComponentClass::builder("MailClient")
            .interface("MessageI", ["sendMessage", "receiveMessages"])
            .interface("AddressI", ["getPhone", "getEmail"])
            .interface("NotesI", ["addNote", "addMeeting"])
            .field("accounts", "Account[]")
            .field("state", "String")
            .method(
                "sendMessage",
                "void sendMessage(Message)",
                &["state"],
                true,
                |st, a| {
                    st.set("state", a.to_vec());
                    Ok(vec![])
                },
            )
            .method(
                "receiveMessages",
                "Set receiveMessages()",
                &["state"],
                false,
                |st, _| Ok(st.get("state")),
            )
            .method(
                "getPhone",
                "String getPhone(String)",
                &["accounts"],
                false,
                |_, _| Ok(b"555".to_vec()),
            )
            .method(
                "getEmail",
                "String getEmail(String)",
                &["accounts"],
                false,
                |_, _| Ok(b"a@b".to_vec()),
            )
            .method(
                "addNote",
                "void addNote(String)",
                &["state"],
                true,
                |_, _| Ok(vec![]),
            )
            .method(
                "addMeeting",
                "boolean addMeeting(String)",
                &["state"],
                true,
                |_, _| Ok(b"true".to_vec()),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn derives_anonymous_view_from_capabilities() {
        // "others have only the right to browse the email directory".
        let class = mail_client();
        let rule = CapabilityRule::new("AutoAnonymous").allow("getEmail");
        let mut lib = MethodLibrary::new();
        let spec = derive_spec(&class, &rule, &mut lib).unwrap();
        // Only AddressI included; getPhone deny-stubbed.
        assert_eq!(spec.restricts.len(), 1);
        assert_eq!(spec.restricts[0].name, "AddressI");
        assert_eq!(spec.customizes_methods.len(), 1);

        let view = Vig::new(lib).generate(&class, &spec).unwrap();
        let original = class.instantiate();
        let inst = view
            .instantiate(
                Some(InProcessRemote::switchboard(original)),
                CoherencePolicy::WriteThrough,
                0,
                b"",
            )
            .unwrap();
        assert_eq!(inst.invoke("getEmail", b"x").unwrap(), b"a@b");
        let err = inst.invoke("getPhone", b"x").unwrap_err();
        assert!(err.contains("access denied"), "{err}");
        assert!(inst.invoke("sendMessage", b"x").is_err()); // not exposed at all
    }

    #[test]
    fn interface_wildcard_and_exposure_hints() {
        let class = mail_client();
        let rule = CapabilityRule::new("AutoMember")
            .allow_interface("MessageI")
            .allow_interface("NotesI")
            .allow_interface("AddressI")
            .expose("MessageI", ExposureType::Local)
            .expose("NotesI", ExposureType::Rmi)
            .default_expose(ExposureType::Switchboard);
        let mut lib = MethodLibrary::new();
        let spec = derive_spec(&class, &rule, &mut lib).unwrap();
        assert_eq!(spec.restricts.len(), 3);
        let exp: BTreeMap<_, _> = spec
            .restricts
            .iter()
            .map(|r| (r.name.clone(), r.exposure))
            .collect();
        assert_eq!(exp["MessageI"], ExposureType::Local);
        assert_eq!(exp["NotesI"], ExposureType::Rmi);
        assert_eq!(exp["AddressI"], ExposureType::Switchboard);
        assert!(spec.customizes_methods.is_empty());
        // And it generates + runs.
        let view = Vig::new(lib).generate(&class, &spec).unwrap();
        assert!(view.entries.len() == 6);
    }

    #[test]
    fn deny_overrides_allow() {
        let class = mail_client();
        let rule = CapabilityRule::new("AutoPartnerish")
            .allow_interface("NotesI")
            .deny("addMeeting");
        let mut lib = MethodLibrary::new();
        let spec = derive_spec(&class, &rule, &mut lib).unwrap();
        let view = Vig::new(lib).generate(&class, &spec).unwrap();
        let original = class.instantiate();
        let inst = view
            .instantiate(
                Some(InProcessRemote::switchboard(original)),
                CoherencePolicy::WriteThrough,
                0,
                b"",
            )
            .unwrap();
        inst.invoke("addNote", b"ok").unwrap();
        assert!(inst
            .invoke("addMeeting", b"no")
            .unwrap_err()
            .contains("denied"));
    }

    #[test]
    fn unknown_hints_rejected() {
        let class = mail_client();
        let mut lib = MethodLibrary::new();
        assert!(matches!(
            derive_spec(
                &class,
                &CapabilityRule::new("V").allow("teleport"),
                &mut lib
            ),
            Err(AutoViewError::UnknownMethod(_))
        ));
        assert!(matches!(
            derive_spec(
                &class,
                &CapabilityRule::new("V").allow_interface("CalendarI"),
                &mut lib
            ),
            Err(AutoViewError::UnknownInterface(_))
        ));
        assert!(matches!(
            derive_spec(&class, &CapabilityRule::new("V"), &mut lib),
            Err(AutoViewError::EmptyView(_))
        ));
        // Allowing then denying everything also yields an empty view.
        assert!(matches!(
            derive_spec(
                &class,
                &CapabilityRule::new("V").allow("getEmail").deny("getEmail"),
                &mut lib
            ),
            Err(AutoViewError::EmptyView(_))
        ));
    }

    #[test]
    fn derived_specs_roundtrip_through_xml() {
        let class = mail_client();
        let rule = CapabilityRule::new("AutoX")
            .allow_interface("AddressI")
            .deny("getPhone");
        let mut lib = MethodLibrary::new();
        let spec = derive_spec(&class, &rule, &mut lib).unwrap();
        let back = ViewSpec::parse_xml(&spec.to_xml()).unwrap();
        assert_eq!(back, spec);
    }
}
