//! The method library: named executable bodies referenced by view specs.
//!
//! **Substitution note** (DESIGN.md): the paper's XML rules embed Java
//! source in `<MBody>` elements, compiled by Javassist at generation
//! time. Rust has no runtime code loading, so an `<MBody>` here names a
//! body registered in a [`MethodLibrary`] — together with the fields the
//! body uses, which is exactly the information Javassist recovers by
//! parsing the embedded source. VIG resolves the reference at generation
//! time and raises the same class of "fix your XML" errors the paper
//! describes when a body is missing or touches an undefined field.

use crate::component::MethodBody;
use std::collections::HashMap;
use std::sync::Arc;

/// A registered body: the closure plus the fields it reads/writes and
/// whether it mutates state.
#[derive(Clone)]
pub struct LibraryEntry {
    /// Executable body.
    pub body: MethodBody,
    /// Fields the body references (validated against the view's fields).
    pub uses_fields: Vec<String>,
    /// Whether the body mutates view state (drives coherence push).
    pub mutates: bool,
}

/// Named method bodies available to VIG.
#[derive(Clone, Default)]
pub struct MethodLibrary {
    bodies: HashMap<String, LibraryEntry>,
}

impl MethodLibrary {
    /// New empty library.
    pub fn new() -> MethodLibrary {
        MethodLibrary::default()
    }

    /// Register a non-mutating body that uses no fields.
    pub fn register<F>(&mut self, name: impl Into<String>, body: F)
    where
        F: Fn(&mut crate::component::FieldState, &[u8]) -> Result<Vec<u8>, String>
            + Send
            + Sync
            + 'static,
    {
        self.register_full(name, &[], false, body);
    }

    /// Register a body with declared field uses and mutation flag.
    pub fn register_full<F>(
        &mut self,
        name: impl Into<String>,
        uses_fields: &[&str],
        mutates: bool,
        body: F,
    ) where
        F: Fn(&mut crate::component::FieldState, &[u8]) -> Result<Vec<u8>, String>
            + Send
            + Sync
            + 'static,
    {
        self.bodies.insert(
            name.into(),
            LibraryEntry {
                body: Arc::new(body),
                uses_fields: uses_fields.iter().map(|s| s.to_string()).collect(),
                mutates,
            },
        );
    }

    /// Look up an entry.
    pub fn get(&self, name: &str) -> Option<&LibraryEntry> {
        self.bodies.get(name)
    }

    /// Registered reference names (sorted, for error messages).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.bodies.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_get() {
        let mut lib = MethodLibrary::new();
        lib.register("body.echo", |_, a| Ok(a.to_vec()));
        lib.register_full("body.bump", &["count"], true, |st, _| {
            let v: i64 = st.get_str("count").parse().unwrap_or(0);
            st.set("count", (v + 1).to_string());
            Ok(vec![])
        });
        assert!(lib.get("body.echo").is_some());
        assert!(lib.get("body.missing").is_none());
        assert_eq!(lib.get("body.bump").unwrap().uses_fields, vec!["count"]);
        assert!(lib.get("body.bump").unwrap().mutates);
        assert_eq!(lib.names(), vec!["body.bump", "body.echo"]);
    }
}
