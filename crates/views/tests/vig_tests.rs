//! Integration tests for VIG: generation of the paper's
//! `ViewMailClient_Partner` (Tables 3 & 5), error-guided spec repair,
//! coherence wrapping, and remote stubs over real bindings.

use psf_views::binding::InProcessRemote;
use psf_views::{
    CoherencePolicy, ComponentClass, ExposureType, MethodLibrary, ViewSpec, Vig, VigError,
};
use std::sync::Arc;

/// A MailClient-shaped component (Table 3a): MessageI, AddressI, NotesI.
fn mail_client_class() -> Arc<ComponentClass> {
    ComponentClass::builder("MailClient")
        .interface("MessageI", ["sendMessage", "receiveMessages"])
        .interface("AddressI", ["getPhone", "getEmail"])
        .interface("NotesI", ["addNote", "addMeeting"])
        .field("accounts", "Account[]")
        .field("outbox", "List")
        .field("notes", "List")
        .method(
            "sendMessage",
            "void sendMessage(Message mes)",
            &["outbox"],
            true,
            |st, args| {
                let mut outbox = st.get_str("outbox");
                if !outbox.is_empty() {
                    outbox.push('\n');
                }
                outbox.push_str(&String::from_utf8_lossy(args));
                st.set("outbox", outbox);
                Ok(vec![])
            },
        )
        .method(
            "receiveMessages",
            "Set receiveMessages()",
            &["outbox"],
            false,
            |st, _| Ok(st.get("outbox")),
        )
        .method(
            "getPhone",
            "String getPhone(String name)",
            &["accounts"],
            false,
            |st, args| lookup_account(&st.get_str("accounts"), &String::from_utf8_lossy(args), 1),
        )
        .method(
            "getEmail",
            "String getEmail(String name)",
            &["accounts"],
            false,
            |st, args| lookup_account(&st.get_str("accounts"), &String::from_utf8_lossy(args), 2),
        )
        .method(
            "addNote",
            "void addNote(String note)",
            &["notes"],
            true,
            |st, args| {
                let mut notes = st.get_str("notes");
                notes.push_str(&String::from_utf8_lossy(args));
                notes.push('\n');
                st.set("notes", notes);
                Ok(vec![])
            },
        )
        .method(
            "addMeeting",
            "boolean addMeeting(String name)",
            &["notes"],
            true,
            |st, args| {
                let mut notes = st.get_str("notes");
                notes.push_str(&format!("MEETING:{}\n", String::from_utf8_lossy(args)));
                st.set("notes", notes);
                Ok(b"true".to_vec())
            },
        )
        .build()
        .unwrap()
}

/// accounts format: "name,phone,email" per line.
fn lookup_account(accounts: &str, name: &str, col: usize) -> Result<Vec<u8>, String> {
    for line in accounts.lines() {
        let parts: Vec<&str> = line.split(',').collect();
        if parts.first() == Some(&name) {
            return Ok(parts.get(col).unwrap_or(&"").as_bytes().to_vec());
        }
    }
    Err(format!("no account for {name}"))
}

fn partner_spec() -> ViewSpec {
    ViewSpec::new("ViewMailClient_Partner", "MailClient")
        .restrict("MessageI", ExposureType::Local)
        .restrict("NotesI", ExposureType::Rmi)
        .restrict("AddressI", ExposureType::Switchboard)
        .add_field("accountCopy", "Account")
        .customize_method("boolean addMeeting(String name)", "mail.request_meeting")
}

fn library() -> MethodLibrary {
    let mut lib = MethodLibrary::new();
    // The partner's addMeeting "is reduced to only requesting the right
    // to set up a meeting" (§4.2).
    lib.register_full("mail.request_meeting", &[], false, |_, args| {
        Ok(format!("REQUESTED:{}", String::from_utf8_lossy(args)).into_bytes())
    });
    lib
}

#[test]
fn t5_generate_partner_view_structure() {
    let class = mail_client_class();
    let vig = Vig::new(library());
    let view = vig.generate(&class, &partner_spec()).unwrap();
    // Local interface methods copied; remote interfaces stubbed;
    // customization overrides the rmi stub with local code.
    use psf_views::vig::DispatchEntry;
    assert!(matches!(
        view.entries["sendMessage"],
        DispatchEntry::Local {
            origin: "copied",
            ..
        }
    ));
    assert!(matches!(
        view.entries["getPhone"],
        DispatchEntry::Remote {
            exposure: ExposureType::Switchboard,
            ..
        }
    ));
    assert!(matches!(
        view.entries["addNote"],
        DispatchEntry::Remote {
            exposure: ExposureType::Rmi,
            ..
        }
    ));
    assert!(matches!(
        view.entries["addMeeting"],
        DispatchEntry::Local {
            origin: "customized",
            ..
        }
    ));
    // Fields: outbox copied (used by local MessageI), accountCopy added;
    // accounts NOT copied (AddressI is remote).
    let names: Vec<&str> = view.fields.iter().map(|f| f.name.as_str()).collect();
    assert!(names.contains(&"outbox"));
    assert!(names.contains(&"accountCopy"));
    assert!(!names.contains(&"accounts"));
    assert_eq!(view.coherent_fields, vec!["outbox"]);
}

#[test]
fn t5_emitted_source_matches_paper_shape() {
    let class = mail_client_class();
    let view = Vig::new(library())
        .generate(&class, &partner_spec())
        .unwrap();
    let src = &view.source;
    // Table 5 landmarks.
    assert!(src.contains("public interface AddressI extends Serializable"));
    assert!(src.contains("public interface NotesI extends Remote"));
    assert!(src.contains("throws RemoteException"));
    assert!(
        src.contains("public class ViewMailClient_Partner implements MessageI, NotesI, AddressI")
    );
    assert!(src.contains("Switchboard.lookup"));
    assert!(src.contains("Naming.lookup"));
    assert!(src.contains("cacheManager = new CacheManager"));
    assert!(src.contains("/** the original code **/"));
    assert!(src.contains("/** user supplied code **/"));
    assert!(src.contains("mergeImageIntoView"));
    assert!(src.contains("extractImageFromObj"));
}

#[test]
fn view_executes_local_remote_and_customized_methods() {
    let class = mail_client_class();
    let original = class.instantiate();
    original.set_field(
        "accounts",
        "alice,555-0100,alice@comp\nbob,555-0199,bob@comp",
    );
    let view = Vig::new(library())
        .generate(&class, &partner_spec())
        .unwrap();
    let remote = InProcessRemote::switchboard(original.clone());
    let inst = view
        .instantiate(Some(remote), CoherencePolicy::WriteThrough, 0, b"")
        .unwrap();

    // Local: sendMessage runs in the view and writes through to the
    // original via coherence.
    inst.invoke("sendMessage", b"hello partner").unwrap();
    assert_eq!(original.field("outbox"), b"hello partner");

    // Remote (switchboard exposure): getPhone forwards to the original.
    assert_eq!(inst.invoke("getPhone", b"alice").unwrap(), b"555-0100");
    assert_eq!(inst.invoke("getEmail", b"bob").unwrap(), b"bob@comp");

    // Remote (rmi exposure): addNote forwards too.
    inst.invoke("addNote", b"remember the milk").unwrap();
    assert!(original.field("notes").starts_with(b"remember the milk"));

    // Customized: addMeeting only *requests* the meeting.
    let out = inst.invoke("addMeeting", b"board-review").unwrap();
    assert_eq!(out, b"REQUESTED:board-review");
    // The original's notes must NOT contain a meeting (restricted view).
    assert!(!String::from_utf8_lossy(&original.field("notes")).contains("MEETING"));
}

#[test]
fn coherence_pulls_fresh_state_from_original() {
    let class = mail_client_class();
    let original = class.instantiate();
    let view = Vig::new(library())
        .generate(&class, &partner_spec())
        .unwrap();
    let inst = view
        .instantiate(
            Some(InProcessRemote::switchboard(original.clone())),
            CoherencePolicy::WriteThrough,
            0, // strict: re-pull on every acquire
            b"",
        )
        .unwrap();
    // Someone else updates the original object.
    original.invoke("sendMessage", b"out-of-band").unwrap();
    // The view's local read sees it because acquireImage re-pulls.
    assert_eq!(inst.invoke("receiveMessages", b"").unwrap(), b"out-of-band");
    assert!(inst.coherence_stats().pulls >= 1);
}

#[test]
fn write_back_policy_defers_pushes() {
    let class = mail_client_class();
    let original = class.instantiate();
    let view = Vig::new(library())
        .generate(&class, &partner_spec())
        .unwrap();
    let inst = view
        .instantiate(
            Some(InProcessRemote::switchboard(original.clone())),
            CoherencePolicy::WriteBack,
            1000,
            b"",
        )
        .unwrap();
    inst.invoke("sendMessage", b"one").unwrap();
    inst.invoke("sendMessage", b"two").unwrap();
    assert_eq!(original.field("outbox"), b""); // not pushed yet
    inst.flush().unwrap();
    assert_eq!(original.field("outbox"), b"one\ntwo");
    assert_eq!(inst.coherence_stats().pushes, 1);
}

#[test]
fn unknown_interface_error_guides_repair() {
    let class = mail_client_class();
    let spec = ViewSpec::new("V", "MailClient").restrict("CalendarI", ExposureType::Local);
    let err = Vig::new(library()).generate(&class, &spec).unwrap_err();
    match &err {
        VigError::UnknownInterface {
            interface,
            available,
            ..
        } => {
            assert_eq!(interface, "CalendarI");
            assert!(available.contains(&"MessageI".to_string()));
        }
        other => panic!("wrong error {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("rectify"));
    assert!(msg.contains("MessageI"));
}

#[test]
fn missing_body_error_guides_repair() {
    let class = mail_client_class();
    let spec = ViewSpec::new("V", "MailClient")
        .restrict("MessageI", ExposureType::Local)
        .add_method("void extra()", "lib.not_registered");
    let err = Vig::new(library()).generate(&class, &spec).unwrap_err();
    assert!(matches!(err, VigError::MissingBody { .. }));
    assert!(err.to_string().contains("lib.not_registered"));
}

#[test]
fn undefined_field_error_guides_repair() {
    let class = mail_client_class();
    let mut lib = library();
    lib.register_full("lib.uses_ghost", &["ghostField"], false, |_, _| Ok(vec![]));
    let spec = ViewSpec::new("V", "MailClient")
        .restrict("MessageI", ExposureType::Local)
        .add_method("void ghost()", "lib.uses_ghost");
    let err = Vig::new(lib).generate(&class, &spec).unwrap_err();
    match &err {
        VigError::UndefinedField { field, method, .. } => {
            assert_eq!(field, "ghostField");
            assert_eq!(method, "ghost");
        }
        other => panic!("wrong error {other:?}"),
    }
    assert!(err.to_string().contains("Adds_Fields"));
}

#[test]
fn unknown_customized_method_rejected() {
    let class = mail_client_class();
    let spec = ViewSpec::new("V", "MailClient")
        .restrict("MessageI", ExposureType::Local)
        .customize_method("void nonexistent()", "mail.request_meeting");
    let err = Vig::new(library()).generate(&class, &spec).unwrap_err();
    assert!(matches!(err, VigError::UnknownMethod { .. }));
}

#[test]
fn wrong_class_rejected() {
    let other = ComponentClass::builder("Other").build().unwrap();
    let err = Vig::new(library())
        .generate(&other, &partner_spec())
        .unwrap_err();
    assert!(matches!(err, VigError::WrongClass { .. }));
}

#[test]
fn view_without_remote_needs_no_binding() {
    // A fully-local view of a standalone class works unbound.
    let class = ComponentClass::builder("Calc")
        .interface("CalcI", ["add"])
        .field("total", "long")
        .method("add", "long add(long)", &["total"], true, |st, args| {
            let v: i64 = st.get_str("total").parse().unwrap_or(0);
            let inc: i64 = String::from_utf8_lossy(args).parse().map_err(|_| "nan")?;
            st.set("total", (v + inc).to_string());
            Ok(st.get("total"))
        })
        .build()
        .unwrap();
    let spec = ViewSpec::new("CalcView", "Calc").restrict("CalcI", ExposureType::Local);
    let view = Vig::new(MethodLibrary::new())
        .generate(&class, &spec)
        .unwrap();
    // Coherent fields exist (total) so a binding is required — bind to a
    // fresh original.
    let original = class.instantiate();
    let inst = view
        .instantiate(
            Some(InProcessRemote::rmi(original)),
            CoherencePolicy::WriteThrough,
            0,
            b"",
        )
        .unwrap();
    assert_eq!(inst.invoke("add", b"5").unwrap(), b"5");
    assert_eq!(inst.invoke("add", b"7").unwrap(), b"12");
}

#[test]
fn view_rejects_unexposed_methods() {
    // The Anonymous view exposes only AddressI.getEmail-style browsing;
    // everything else must be refused by construction.
    let class = mail_client_class();
    let spec = ViewSpec::new("ViewMailClient_Anonymous", "MailClient")
        .restrict("AddressI", ExposureType::Switchboard);
    let view = Vig::new(library()).generate(&class, &spec).unwrap();
    let original = class.instantiate();
    original.set_field("accounts", "alice,555-0100,alice@comp");
    let inst = view
        .instantiate(
            Some(InProcessRemote::switchboard(original)),
            CoherencePolicy::WriteThrough,
            0,
            b"",
        )
        .unwrap();
    assert_eq!(inst.invoke("getEmail", b"alice").unwrap(), b"alice@comp");
    // sendMessage is not part of this view at all.
    let err = inst.invoke("sendMessage", b"spam").unwrap_err();
    assert!(err.contains("does not expose"));
}

#[test]
fn constructor_runs_at_instantiation() {
    let class = mail_client_class();
    let mut lib = library();
    lib.register_full("ctor.partner", &["accountCopy"], true, |st, args| {
        st.set("accountCopy", args.to_vec());
        Ok(vec![])
    });
    let spec = partner_spec().add_method("ViewMailClient_Partner(String[] args)", "ctor.partner");
    let view = Vig::new(lib).generate(&class, &spec).unwrap();
    let original = class.instantiate();
    let inst = view
        .instantiate(
            Some(InProcessRemote::switchboard(original)),
            CoherencePolicy::WriteThrough,
            0,
            b"cached-account",
        )
        .unwrap();
    assert_eq!(inst.field("accountCopy"), b"cached-account");
}

#[test]
fn generation_is_deferred_and_cheap_to_repeat() {
    // "views incur management costs proportional to their utility":
    // generating twice yields structurally identical views.
    let class = mail_client_class();
    let vig = Vig::new(library());
    let v1 = vig.generate(&class, &partner_spec()).unwrap();
    let v2 = vig.generate(&class, &partner_spec()).unwrap();
    assert_eq!(v1.source, v2.source);
    assert_eq!(v1.coherent_fields, v2.coherent_fields);
    assert_eq!(v1.fields.len(), v2.fields.len());
}
