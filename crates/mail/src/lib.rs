//! # psf-mail
//!
//! The paper's evaluation application (§2.2): "a security-aware mail
//! application … *mail clients* with different capabilities, a *mail
//! server* that manages the mail accounts for all users, *view mail
//! server* components that can be replicated as a cache close to the
//! client, and *encryption/decryption* components that ensure the privacy
//! of all messages sent over insecure links."
//!
//! * [`message`] — the mail data model and its byte codec.
//! * [`components`] — the `MailClient` of Table 3(a) (MessageI, AddressI,
//!   NotesI) and the `MailServer` component.
//! * [`views`] — the three views of Table 4
//!   (`ViewMailClient_Member` / `_Partner` / `_Anonymous`), their XML
//!   definitions, and the method library VIG resolves them against.
//! * [`cryptomw`] — the `<encryptor/decryptor>` pair as endpoint
//!   middleware carrying real ChaCha20-Poly1305 between them.
//! * [`scenario`] — the full three-site world: Comp.NY / Comp.SD / Inc.SE
//!   guards, every Table 2 credential (1)–(17), the Table 4 ACL, the
//!   registrar/planner/deployer wiring, and client request helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod cryptomw;
pub mod message;
pub mod scenario;
pub mod views;

pub use components::{mail_client_class, mail_server_class};
pub use cryptomw::CipherPair;
pub use message::Message;
pub use scenario::MailWorld;
pub use views::{mail_method_library, view_anonymous, view_member, view_partner};
