//! The `<encryptor/decryptor>` pair (paper §2.2) as data-plane endpoint
//! middleware.
//!
//! The planner places an `Encryptor` where plaintext would otherwise
//! leave a secure island and a `Decryptor` on the client's side; between
//! them only ChaCha20-Poly1305 ciphertext flows. The two middleware
//! halves share a symmetric key issued at deployment time (in the paper
//! the deployment infrastructure provisions the pair; the key exchange
//! mechanics live in Switchboard's handshake, which the channels under
//! this middleware already perform — this pair protects the *payload*
//! end-to-end across any number of hops).
//!
//! Wire format per protected buffer: `nonce₁₂ ‖ AEAD(method-bound AAD,
//! payload)`.

use psf_crypto::aead::ChaCha20Poly1305;
use psf_views::binding::RemoteCall;
use rand::Rng;
use std::sync::Arc;

/// A matched encryptor/decryptor middleware pair sharing a payload key.
pub struct CipherPair {
    key: [u8; 32],
}

impl CipherPair {
    /// Create a pair with a fresh random key.
    pub fn generate() -> CipherPair {
        let mut key = [0u8; 32];
        rand::rng().fill_bytes(&mut key);
        CipherPair { key }
    }

    /// Create from an explicit key (deterministic tests).
    pub fn from_key(key: [u8; 32]) -> CipherPair {
        CipherPair { key }
    }

    /// The server-side half ("Encryptor" in the plan): expects encrypted
    /// requests from downstream, decrypts them, calls the plaintext
    /// upstream, and encrypts the response.
    pub fn encryptor(
        &self,
    ) -> impl Fn(Arc<dyn RemoteCall>) -> Arc<dyn RemoteCall> + Send + Sync + Clone {
        let key = self.key;
        move |upstream: Arc<dyn RemoteCall>| -> Arc<dyn RemoteCall> {
            Arc::new(EncryptorSide {
                upstream,
                aead: ChaCha20Poly1305::new(key),
            })
        }
    }

    /// The client-side half ("Decryptor" in the plan): encrypts requests
    /// for the wire and decrypts responses.
    pub fn decryptor(
        &self,
    ) -> impl Fn(Arc<dyn RemoteCall>) -> Arc<dyn RemoteCall> + Send + Sync + Clone {
        let key = self.key;
        move |upstream: Arc<dyn RemoteCall>| -> Arc<dyn RemoteCall> {
            Arc::new(DecryptorSide {
                upstream,
                aead: ChaCha20Poly1305::new(key),
            })
        }
    }
}

fn seal(aead: &ChaCha20Poly1305, method: &str, payload: &[u8]) -> Vec<u8> {
    let mut nonce = [0u8; 12];
    rand::rng().fill_bytes(&mut nonce);
    let mut out = nonce.to_vec();
    out.extend_from_slice(&aead.seal(&nonce, method.as_bytes(), payload));
    out
}

fn open(aead: &ChaCha20Poly1305, method: &str, buf: &[u8]) -> Result<Vec<u8>, String> {
    if buf.len() < 12 {
        return Err("ciphertext too short".into());
    }
    let nonce: [u8; 12] = buf[..12].try_into().unwrap();
    aead.open(&nonce, method.as_bytes(), &buf[12..])
        .map_err(|e| format!("payload decryption failed: {e}"))
}

struct EncryptorSide {
    upstream: Arc<dyn RemoteCall>,
    aead: ChaCha20Poly1305,
}

impl RemoteCall for EncryptorSide {
    fn call_remote(&self, method: &str, args: &[u8]) -> Result<Vec<u8>, String> {
        let plain_args = open(&self.aead, method, args)?;
        let response = self.upstream.call_remote(method, &plain_args)?;
        Ok(seal(&self.aead, method, &response))
    }
    fn transport_label(&self) -> &'static str {
        "encryptor"
    }
}

struct DecryptorSide {
    upstream: Arc<dyn RemoteCall>,
    aead: ChaCha20Poly1305,
}

impl RemoteCall for DecryptorSide {
    fn call_remote(&self, method: &str, args: &[u8]) -> Result<Vec<u8>, String> {
        let sealed_args = seal(&self.aead, method, args);
        let sealed_response = self.upstream.call_remote(method, &sealed_args)?;
        open(&self.aead, method, &sealed_response)
    }
    fn transport_label(&self) -> &'static str {
        "decryptor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    /// Records every byte that crosses it — the "insecure WAN tap".
    struct Tap {
        upstream: Arc<dyn RemoteCall>,
        seen: Arc<Mutex<Vec<Vec<u8>>>>,
    }

    impl RemoteCall for Tap {
        fn call_remote(&self, method: &str, args: &[u8]) -> Result<Vec<u8>, String> {
            self.seen.lock().push(args.to_vec());
            let out = self.upstream.call_remote(method, args)?;
            self.seen.lock().push(out.clone());
            Ok(out)
        }
        fn transport_label(&self) -> &'static str {
            "tap"
        }
    }

    struct Echo;
    impl RemoteCall for Echo {
        fn call_remote(&self, _m: &str, a: &[u8]) -> Result<Vec<u8>, String> {
            Ok(format!("echo:{}", String::from_utf8_lossy(a)).into_bytes())
        }
        fn transport_label(&self) -> &'static str {
            "echo"
        }
    }

    #[test]
    fn pair_roundtrips_and_hides_plaintext() {
        let pair = CipherPair::from_key([7u8; 32]);
        let seen = Arc::new(Mutex::new(Vec::new()));
        // client → decryptor → tap (the WAN) → encryptor → echo server
        let server: Arc<dyn RemoteCall> = Arc::new(Echo);
        let enc = pair.encryptor()(server);
        let tapped: Arc<dyn RemoteCall> = Arc::new(Tap {
            upstream: enc,
            seen: seen.clone(),
        });
        let client = pair.decryptor()(tapped);

        let reply = client
            .call_remote("fetch", b"super secret mailbox contents")
            .unwrap();
        assert_eq!(reply, b"echo:super secret mailbox contents");

        // Nothing crossing the tap contains the plaintext.
        for buf in seen.lock().iter() {
            let s = String::from_utf8_lossy(buf);
            assert!(!s.contains("secret"), "plaintext leaked on the wire");
            assert!(!s.contains("echo:"), "response plaintext leaked");
        }
        assert_eq!(seen.lock().len(), 2);
    }

    #[test]
    fn mismatched_keys_fail_closed() {
        let a = CipherPair::from_key([1u8; 32]);
        let b = CipherPair::from_key([2u8; 32]);
        let server: Arc<dyn RemoteCall> = Arc::new(Echo);
        let enc = a.encryptor()(server);
        let client = b.decryptor()(enc);
        assert!(client.call_remote("m", b"x").is_err());
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let pair = CipherPair::from_key([3u8; 32]);
        struct Corruptor(Arc<dyn RemoteCall>);
        impl RemoteCall for Corruptor {
            fn call_remote(&self, m: &str, a: &[u8]) -> Result<Vec<u8>, String> {
                let mut tampered = a.to_vec();
                let last = tampered.len() - 1;
                tampered[last] ^= 1;
                self.0.call_remote(m, &tampered)
            }
            fn transport_label(&self) -> &'static str {
                "corruptor"
            }
        }
        let server: Arc<dyn RemoteCall> = Arc::new(Echo);
        let enc = pair.encryptor()(server);
        let corrupted: Arc<dyn RemoteCall> = Arc::new(Corruptor(enc));
        let client = pair.decryptor()(corrupted);
        let err = client.call_remote("m", b"x").unwrap_err();
        assert!(err.contains("decryption failed"));
    }

    #[test]
    fn method_binding_prevents_splicing() {
        // A ciphertext captured for one method cannot be replayed against
        // another (the method name is AAD).
        let pair = CipherPair::from_key([4u8; 32]);
        let aead = ChaCha20Poly1305::new([4u8; 32]);
        let sealed = seal(&aead, "fetch", b"payload");
        assert!(open(&aead, "fetch", &sealed).is_ok());
        assert!(open(&aead, "send", &sealed).is_err());
        let _ = pair;
    }

    #[test]
    fn generated_pairs_use_distinct_keys() {
        let a = CipherPair::generate();
        let b = CipherPair::generate();
        assert_ne!(a.key, b.key);
    }
}
