//! The mail components: the `MailClient` of Table 3(a) and the
//! `MailServer` it talks to.
//!
//! Field encodings:
//! * `accounts` — one `name,phone,email` record per line;
//! * `messages` — one encoded [`Message`] list holding every delivered
//!   message (fetch filters by recipient); a single field so view
//!   coherence images capture the whole store;
//! * `notes` / `meetings` — newline-joined text.

use crate::message::Message;
use psf_views::component::FieldState;
use psf_views::ComponentClass;
use std::sync::Arc;

fn account_column(state: &FieldState, name: &str, col: usize) -> Result<Vec<u8>, String> {
    for line in state.get_str("accounts").lines() {
        let parts: Vec<&str> = line.split(',').collect();
        if parts.first() == Some(&name) {
            return Ok(parts.get(col).unwrap_or(&"").as_bytes().to_vec());
        }
    }
    Err(format!("no account for '{name}'"))
}

fn push_message(state: &mut FieldState, message: &Message) -> Result<(), String> {
    let existing = state.get("messages");
    let mut list = if existing.is_empty() {
        Vec::new()
    } else {
        Message::decode_list(&existing)?
    };
    list.push(message.clone());
    state.set("messages", Message::encode_list(&list));
    Ok(())
}

/// The `MailServer`: manages "the mail accounts for all users".
///
/// Interfaces: `MailI` (send/fetch) and `AddressI` (directory lookups).
pub fn mail_server_class() -> Arc<ComponentClass> {
    ComponentClass::builder("MailServer")
        .interface("MailI", ["send", "fetch", "createAccount"])
        .interface("AddressI", ["getPhone", "getEmail"])
        .field("accounts", "Account[]")
        .field("messages", "List<Message>")
        .method(
            "createAccount",
            "void createAccount(String name, String phone, String email)",
            &["accounts"],
            true,
            |st, args| {
                let record = String::from_utf8_lossy(args).to_string();
                if record.split(',').count() != 3 {
                    return Err("expected name,phone,email".into());
                }
                let mut accounts = st.get_str("accounts");
                if !accounts.is_empty() {
                    accounts.push('\n');
                }
                accounts.push_str(&record);
                st.set("accounts", accounts);
                Ok(vec![])
            },
        )
        .method(
            "send",
            "void send(Message mes)",
            &["accounts", "messages"],
            true,
            |st, args| {
                let (message, _) = Message::from_bytes(args)?;
                // Recipient must exist.
                account_column(st, &message.to, 0)?;
                push_message(st, &message)?;
                Ok(vec![])
            },
        )
        .method(
            "fetch",
            "Set fetch(String user)",
            &["messages"],
            false,
            |st, args| {
                let user = String::from_utf8_lossy(args).to_string();
                let stored = st.get("messages");
                let all = if stored.is_empty() {
                    Vec::new()
                } else {
                    Message::decode_list(&stored)?
                };
                let mine: Vec<Message> = all.into_iter().filter(|m| m.to == user).collect();
                Ok(Message::encode_list(&mine))
            },
        )
        .method(
            "getPhone",
            "String getPhone(String name)",
            &["accounts"],
            false,
            |st, args| account_column(st, &String::from_utf8_lossy(args), 1),
        )
        .method(
            "getEmail",
            "String getEmail(String name)",
            &["accounts"],
            false,
            |st, args| account_column(st, &String::from_utf8_lossy(args), 2),
        )
        .build()
        .expect("MailServer class is well-formed")
}

/// The `MailClient` of Table 3(a): implements `MessageI`, `AddressI`,
/// `NotesI` over an `accounts` field (plus a local outbox/notes store).
pub fn mail_client_class() -> Arc<ComponentClass> {
    ComponentClass::builder("MailClient")
        .interface("MessageI", ["sendMessage", "receiveMessages"])
        .interface("AddressI", ["getPhone", "getEmail"])
        .interface("NotesI", ["addNote", "addMeeting"])
        .field("accounts", "Account[]")
        .field("outbox", "List<Message>")
        .field("inbox", "List<Message>")
        .field("notes", "List<String>")
        .field("meetings", "List<String>")
        .method(
            "sendMessage",
            "void sendMessage(Message mes)",
            &["outbox"],
            true,
            |st, args| {
                let (message, _) = Message::from_bytes(args)?;
                let existing = st.get("outbox");
                let mut list = if existing.is_empty() {
                    Vec::new()
                } else {
                    Message::decode_list(&existing)?
                };
                list.push(message);
                st.set("outbox", Message::encode_list(&list));
                Ok(vec![])
            },
        )
        .method(
            "receiveMessages",
            "Set receiveMessages()",
            &["inbox"],
            false,
            |st, _| {
                let stored = st.get("inbox");
                if stored.is_empty() {
                    Ok(Message::encode_list(&[]))
                } else {
                    Ok(stored)
                }
            },
        )
        .method(
            "getPhone",
            "String getPhone(String name)",
            &["accounts"],
            false,
            |st, args| account_column(st, &String::from_utf8_lossy(args), 1),
        )
        .method(
            "getEmail",
            "String getEmail(String name)",
            &["accounts"],
            false,
            |st, args| account_column(st, &String::from_utf8_lossy(args), 2),
        )
        .method(
            "addNote",
            "void addNote(String note)",
            &["notes"],
            true,
            |st, args| {
                let mut notes = st.get_str("notes");
                notes.push_str(&String::from_utf8_lossy(args));
                notes.push('\n');
                st.set("notes", notes);
                Ok(vec![])
            },
        )
        .method(
            "addMeeting",
            "boolean addMeeting(String name)",
            &["meetings"],
            true,
            |st, args| {
                let mut meetings = st.get_str("meetings");
                meetings.push_str(&String::from_utf8_lossy(args));
                meetings.push('\n');
                st.set("meetings", meetings);
                Ok(b"true".to_vec())
            },
        )
        .build()
        .expect("MailClient class is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_account_lifecycle() {
        let server = mail_server_class().instantiate();
        server
            .invoke("createAccount", b"alice,555-0100,alice@comp")
            .unwrap();
        server
            .invoke("createAccount", b"bob,555-0199,bob@comp")
            .unwrap();
        assert_eq!(server.invoke("getPhone", b"alice").unwrap(), b"555-0100");
        assert_eq!(server.invoke("getEmail", b"bob").unwrap(), b"bob@comp");
        assert!(server.invoke("getPhone", b"mallory").is_err());
        assert!(server.invoke("createAccount", b"broken").is_err());
    }

    #[test]
    fn server_send_and_fetch() {
        let server = mail_server_class().instantiate();
        server
            .invoke("createAccount", b"alice,1,alice@comp")
            .unwrap();
        server.invoke("createAccount", b"bob,2,bob@comp").unwrap();
        let m1 = Message::new("alice", "bob", "hi", "lunch?");
        let m2 = Message::new("alice", "bob", "re", "or dinner");
        server.invoke("send", &m1.to_bytes()).unwrap();
        server.invoke("send", &m2.to_bytes()).unwrap();
        let inbox = Message::decode_list(&server.invoke("fetch", b"bob").unwrap()).unwrap();
        assert_eq!(inbox, vec![m1, m2]);
        // Alice has no mail.
        let empty = Message::decode_list(&server.invoke("fetch", b"alice").unwrap()).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn send_to_unknown_recipient_fails() {
        let server = mail_server_class().instantiate();
        let m = Message::new("alice", "ghost", "?", "?");
        assert!(server.invoke("send", &m.to_bytes()).is_err());
    }

    #[test]
    fn client_notes_and_meetings() {
        let client = mail_client_class().instantiate();
        client.invoke("addNote", b"buy milk").unwrap();
        client.invoke("addMeeting", b"standup").unwrap();
        assert_eq!(client.field("notes"), b"buy milk\n");
        assert_eq!(client.field("meetings"), b"standup\n");
    }

    #[test]
    fn client_outbox_accumulates() {
        let client = mail_client_class().instantiate();
        let m = Message::new("me", "you", "s", "b");
        client.invoke("sendMessage", &m.to_bytes()).unwrap();
        client.invoke("sendMessage", &m.to_bytes()).unwrap();
        let outbox = Message::decode_list(&client.field("outbox")).unwrap();
        assert_eq!(outbox.len(), 2);
    }
}
