//! The full three-site scenario (paper §2.2/§3.3): "the mail service is
//! used by a company (*Comp*) … across three sites: the main office in
//! New York, a branch office in San Diego, and a partner organization
//! (*Inc*) in Seattle", with **all seventeen Table 2 credentials**, the
//! Table 4 ACL, and the planner/deployer wiring.

use crate::components::{mail_client_class, mail_server_class};
use crate::cryptomw::CipherPair;
use crate::views::{mail_method_library, view_anonymous, view_member, view_partner};
use psf_core::{
    AppBundle, ComponentSpec, Deployer, Deployment, DrbacOracle, Effect, Goal, Plan, Planner,
    PlannerConfig, PsfError, Registrar,
};
use psf_drbac::entity::{Entity, EntityRegistry, RoleName, Subject};
use psf_drbac::guard::Guard;
use psf_drbac::repository::Repository;
use psf_drbac::revocation::RevocationBus;
use psf_drbac::{AttrSet, AttrValue, DelegationBuilder, SignedDelegation};
use psf_netsim::{three_site_scenario, NodeId, ThreeSites};
use psf_switchboard::ClockRef;
use psf_views::ViewAcl;
use psf_views::{ExposureType, ViewSpec};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The assembled world: network, security, users, and framework modules.
pub struct MailWorld {
    /// The three-site network.
    pub sites: ThreeSites,
    /// Shared PKI directory.
    pub registry: EntityRegistry,
    /// Shared credential repository.
    pub repository: Repository,
    /// Shared revocation bus.
    pub bus: RevocationBus,
    /// Shared logical clock.
    pub clock: ClockRef,
    /// NY-Guard ("responsible for the correct use of the mail application
    /// and all clients located in New York").
    pub ny_guard: Arc<Guard>,
    /// SD-Guard.
    pub sd_guard: Arc<Guard>,
    /// SE-Guard.
    pub se_guard: Arc<Guard>,
    /// The mail application's own policy entity (`Mail`).
    pub mail: Entity,
    /// Hardware vendors.
    pub dell: Entity,
    /// Hardware vendors.
    pub ibm: Entity,
    /// The three users of §3.3.
    pub alice: Entity,
    /// Bob works in San Diego.
    pub bob: Entity,
    /// Charlie belongs to the Seattle partner.
    pub charlie: Entity,
    /// Per-node machine identities.
    pub node_identities: BTreeMap<NodeId, Entity>,
    /// The seventeen Table 2 credentials by their paper number, plus
    /// extension (18) for the ViewMailServer template (documented in
    /// EXPERIMENTS.md).
    pub creds: BTreeMap<u8, SignedDelegation>,
    /// Component templates.
    pub registrar: Registrar,
    /// dRBAC constraint oracle for the planner.
    pub oracle: DrbacOracle,
    /// Deployment infrastructure (issues credentials through NY-Guard).
    pub deployer: Deployer,
    /// Table 4 role→view ACL.
    pub acl: ViewAcl,
}

impl MailWorld {
    /// Assemble the world with `per_site` nodes per site.
    pub fn build(per_site: usize) -> MailWorld {
        let sites = three_site_scenario(per_site);
        let registry = EntityRegistry::new();
        let repository = Repository::new();
        let bus = RevocationBus::new();
        let clock = ClockRef::new();

        let ny_guard = Arc::new(Guard::new(
            Entity::with_seed("Comp.NY", b"mail-world"),
            registry.clone(),
            repository.clone(),
            bus.clone(),
        ));
        let sd_guard = Arc::new(Guard::new(
            Entity::with_seed("Comp.SD", b"mail-world"),
            registry.clone(),
            repository.clone(),
            bus.clone(),
        ));
        let se_guard = Arc::new(Guard::new(
            Entity::with_seed("Inc.SE", b"mail-world"),
            registry.clone(),
            repository.clone(),
            bus.clone(),
        ));
        let mail = Entity::with_seed("Mail", b"mail-world");
        let dell = Entity::with_seed("Dell", b"mail-world");
        let ibm = Entity::with_seed("IBM", b"mail-world");
        for e in [&mail, &dell, &ibm] {
            registry.register(e);
        }

        let alice = ny_guard.create_principal("Alice");
        let bob = sd_guard.create_principal("Bob");
        let charlie = se_guard.create_principal("Charlie");

        // Machine identities + site-PC roles.
        let mut node_identities = BTreeMap::new();
        let mut site_pcs = Vec::new();
        for (guard, nodes, label) in [
            (&ny_guard, &sites.ny, "Comp.NY.PC"),
            (&sd_guard, &sites.sd, "Comp.SD.PC"),
            (&se_guard, &sites.se, "Inc.SE.PC"),
        ] {
            for (i, &node) in nodes.iter().enumerate() {
                let pc = guard.create_principal(format!("{label}-{i}"));
                // [ pc → <Site>.PC ] <Site>-Guard — membership in the
                // site's machine class.
                guard.publish(
                    guard
                        .issue()
                        .subject_entity(&pc)
                        .role(guard.role("PC"))
                        .sign(),
                );
                node_identities.insert(node, pc);
                site_pcs.push((label, node));
            }
        }

        let ny = ny_guard.entity().clone();
        let sd = sd_guard.entity().clone();
        let se = se_guard.entity().clone();

        let mut creds: BTreeMap<u8, SignedDelegation> = BTreeMap::new();
        fn publish_numbered(
            creds: &mut BTreeMap<u8, SignedDelegation>,
            n: u8,
            guard: &Arc<Guard>,
            cred: SignedDelegation,
        ) {
            creds.insert(n, guard.publish(cred));
        }

        // ---- New York -------------------------------------------------
        // (1) [ Alice → Comp.NY.Member ] Comp.NY
        publish_numbered(
            &mut creds,
            1,
            &ny_guard,
            ny_guard
                .issue()
                .subject_entity(&alice)
                .role(ny.role("Member"))
                .sign(),
        );
        // (2) [ Comp.SD.Member → Comp.NY.Member ] Comp.NY
        publish_numbered(
            &mut creds,
            2,
            &ny_guard,
            ny_guard
                .issue()
                .subject_role(sd.role("Member"))
                .role(ny.role("Member"))
                .sign(),
        );
        // (3) [ Comp.SD → Comp.NY.Partner ' ] Comp.NY
        publish_numbered(
            &mut creds,
            3,
            &ny_guard,
            ny_guard
                .issue()
                .subject_entity(&sd)
                .assignment()
                .role(ny.role("Partner"))
                .sign(),
        );
        // (4)-(6): Mail's node policy. The Mail entity signs these; they
        // are published at its own home shard.
        fn direct_publish(
            repository: &Repository,
            creds: &mut BTreeMap<u8, SignedDelegation>,
            n: u8,
            cred: SignedDelegation,
        ) {
            repository.publish_at_issuer(cred.clone());
            creds.insert(n, cred);
        }
        direct_publish(
            &repository,
            &mut creds,
            4,
            DelegationBuilder::new(&mail)
                .subject_role(RoleName::new("Dell", "Linux"))
                .role(mail.role("Node"))
                .attr("Secure", AttrValue::set(["true", "false"]))
                .attr("Trust", AttrValue::Range(0, 10))
                .sign(),
        );
        direct_publish(
            &repository,
            &mut creds,
            5,
            DelegationBuilder::new(&mail)
                .subject_role(RoleName::new("Dell", "SuSe"))
                .role(mail.role("Node"))
                .attr("Secure", AttrValue::set(["true", "false"]))
                .attr("Trust", AttrValue::Range(0, 7))
                .sign(),
        );
        direct_publish(
            &repository,
            &mut creds,
            6,
            DelegationBuilder::new(&mail)
                .subject_role(RoleName::new("IBM", "Windows"))
                .role(mail.role("Node"))
                .attr("Secure", AttrValue::set(["false"]))
                .attr("Trust", AttrValue::Range(0, 1))
                .sign(),
        );
        // (7) [ Comp.NY.PC → Dell.Linux ] Dell
        direct_publish(
            &repository,
            &mut creds,
            7,
            DelegationBuilder::new(&dell)
                .subject_role(ny.role("PC"))
                .role(dell.role("Linux"))
                .sign(),
        );
        // (8)-(10): NY certifies the mail components.
        for (n, comp) in [(8u8, "MailClient"), (9, "Encryptor"), (10, "Decryptor")] {
            publish_numbered(
                &mut creds,
                n,
                &ny_guard,
                ny_guard
                    .issue()
                    .subject_role(RoleName::new("Mail", comp))
                    .role(ny.role("Executable"))
                    .attr("CPU", AttrValue::Capacity(100))
                    .sign(),
            );
        }

        // ---- San Diego -------------------------------------------------
        // (11) [ Bob → Comp.SD.Member ] Comp.SD
        publish_numbered(
            &mut creds,
            11,
            &sd_guard,
            sd_guard
                .issue()
                .subject_entity(&bob)
                .role(sd.role("Member"))
                .sign(),
        );
        // (12) [ Inc.SE.Member → Comp.NY.Partner ] Comp.SD  (third-party,
        // authorized by (3)).
        publish_numbered(
            &mut creds,
            12,
            &sd_guard,
            sd_guard
                .issue()
                .subject_role(se.role("Member"))
                .role(ny.role("Partner"))
                .sign(),
        );
        // (13) [ Comp.SD.PC → Dell.SuSe ] Dell
        direct_publish(
            &repository,
            &mut creds,
            13,
            DelegationBuilder::new(&dell)
                .subject_role(sd.role("PC"))
                .role(dell.role("SuSe"))
                .sign(),
        );
        // (14) [ Comp.NY.Executable → Comp.SD.Executable with CPU=80 ] Comp.SD
        publish_numbered(
            &mut creds,
            14,
            &sd_guard,
            sd_guard
                .issue()
                .subject_role(ny.role("Executable"))
                .role(sd.role("Executable"))
                .attr("CPU", AttrValue::Capacity(80))
                .sign(),
        );

        // ---- Seattle ---------------------------------------------------
        // (15) [ Charlie → Inc.SE.Member ] Inc.SE
        publish_numbered(
            &mut creds,
            15,
            &se_guard,
            se_guard
                .issue()
                .subject_entity(&charlie)
                .role(se.role("Member"))
                .sign(),
        );
        // (16) [ Inc.SE.PC → IBM.Windows ] IBM
        direct_publish(
            &repository,
            &mut creds,
            16,
            DelegationBuilder::new(&ibm)
                .subject_role(se.role("PC"))
                .role(ibm.role("Windows"))
                .sign(),
        );
        // (17) [ Comp.NY.Executable → Inc.SE.Executable with CPU=40 ] Inc.SE
        publish_numbered(
            &mut creds,
            17,
            &se_guard,
            se_guard
                .issue()
                .subject_role(ny.role("Executable"))
                .role(se.role("Executable"))
                .attr("CPU", AttrValue::Capacity(40))
                .sign(),
        );
        // (18, extension): the ViewMailServer cache template gets its own
        // executable credential, mirroring (8)-(10).
        publish_numbered(
            &mut creds,
            18,
            &ny_guard,
            ny_guard
                .issue()
                .subject_role(RoleName::new("Mail", "ViewMailServer"))
                .role(ny.role("Executable"))
                .attr("CPU", AttrValue::Capacity(100))
                .sign(),
        );

        // ---- Component templates ---------------------------------------
        let registrar = Registrar::new();
        registrar.register(ComponentSpec::source("MailServer", "MailI"));
        registrar.register(
            ComponentSpec::processor("Encryptor", "MailI", "MailI", Effect::Encrypt)
                .requires_encrypted(false)
                .cpu(10)
                .exec_role(RoleName::new("Mail", "Encryptor"))
                .node_role(mail.role("Node"), AttrSet::new()),
        );
        registrar.register(
            ComponentSpec::processor("Decryptor", "MailI", "MailI", Effect::Decrypt)
                .requires_encrypted(true)
                .cpu(10)
                .exec_role(RoleName::new("Mail", "Decryptor"))
                .node_role(mail.role("Node"), AttrSet::new()),
        );
        // The cache holds plaintext mail for many users: it demands a
        // secure, reasonably trusted node.
        registrar.register(
            ComponentSpec::processor("ViewMailServer", "MailI", "MailI", Effect::Cache)
                .cpu(20)
                .exec_role(RoleName::new("Mail", "ViewMailServer"))
                .node_role(
                    mail.role("Node"),
                    AttrSet::new()
                        .with("Secure", AttrValue::set(["true"]))
                        .with("Trust", AttrValue::Range(5, 10)),
                )
                .view_of("MailServer"),
        );

        // ---- Oracle -----------------------------------------------------
        let mut oracle = DrbacOracle::new(
            registry.clone(),
            repository.clone(),
            bus.clone(),
            sites.network.clone(),
            clock.now(),
        );
        for (&node, pc) in &node_identities {
            oracle.set_node_subject(node, pc.as_subject());
        }
        for &node in &sites.ny {
            oracle.set_node_exec_role(node, ny.role("Executable"), AttrSet::new());
        }
        for &node in &sites.sd {
            oracle.set_node_exec_role(node, sd.role("Executable"), AttrSet::new());
        }
        for &node in &sites.se {
            oracle.set_node_exec_role(node, se.role("Executable"), AttrSet::new());
        }
        oracle.add_component_credentials(
            [8u8, 9, 10, 14, 17, 18]
                .iter()
                .map(|n| creds[n].clone())
                .collect(),
        );

        // ---- Deployment bundle -----------------------------------------
        let pair = Arc::new(CipherPair::generate());
        let enc_factory = pair.encryptor();
        let dec_factory = pair.decryptor();
        let bundle = AppBundle::new()
            .class("MailServer", mail_server_class())
            .class("MailClient", mail_client_class())
            .view(
                "ViewMailServer",
                ViewSpec::new("ViewMailServer", "MailServer")
                    .restrict("MailI", ExposureType::Local),
            )
            .with_library(mail_method_library())
            .middleware_factory("Encryptor", Arc::new(enc_factory))
            .middleware_factory("Decryptor", Arc::new(dec_factory))
            .cpu_cost("Encryptor", 10)
            .cpu_cost("Decryptor", 10)
            .cpu_cost("ViewMailServer", 20);
        let deployer = Deployer::new(ny_guard.clone(), clock.clone(), bundle)
            .with_network(sites.network.clone());

        // The mail server runs in New York.
        registrar.record_deployed("MailServer", sites.ny[0]);
        let server = deployer
            .start_source("MailServer", sites.ny[0])
            .expect("MailServer class registered");
        // Seed the directory.
        for record in [
            "alice,555-0100,alice@comp.ny",
            "bob,555-0199,bob@comp.sd",
            "charlie,555-0177,charlie@inc.se",
        ] {
            server
                .invoke("createAccount", record.as_bytes())
                .expect("seed account");
        }

        // ---- Table 4 ACL -------------------------------------------------
        let acl = ViewAcl::new()
            .rule(ny.role("Member"), "ViewMailClient_Member")
            .rule(ny.role("Partner"), "ViewMailClient_Partner")
            .others("ViewMailClient_Anonymous");

        MailWorld {
            sites,
            registry,
            repository,
            bus,
            clock,
            ny_guard,
            sd_guard,
            se_guard,
            mail,
            dell,
            ibm,
            alice,
            bob,
            charlie,
            node_identities,
            creds,
            registrar,
            oracle,
            deployer,
            acl,
        }
    }

    /// The authorization matrix the Table 2 credentials are *intended* to
    /// establish: every (subject, role) pair an administrator meant to
    /// grant, directly or through role mapping. Static analysis
    /// (psf-analysis PSF001) compares the computed delegation-graph
    /// closure against this list — any reachable pair missing here is a
    /// privilege escalation.
    pub fn expected_grants(&self) -> Vec<(Subject, RoleName)> {
        let ny = self.ny_guard.entity();
        let sd = self.sd_guard.entity();
        let se = self.se_guard.entity();
        let mut out = vec![
            // Users: direct memberships plus the §3.3 cross-site mappings
            // (11→2 gives Bob NY.Member; 15→12 gives Charlie NY.Partner).
            (self.alice.as_subject(), ny.role("Member")),
            (self.bob.as_subject(), sd.role("Member")),
            (self.bob.as_subject(), ny.role("Member")),
            (self.charlie.as_subject(), se.role("Member")),
            (self.charlie.as_subject(), ny.role("Partner")),
        ];
        // Machines: site PC class, vendor machine class, mail node policy.
        for (&node, pc) in &self.node_identities {
            let subject = pc.as_subject();
            let (site_pc, machine_class) = if self.sites.ny.contains(&node) {
                (ny.role("PC"), self.dell.role("Linux"))
            } else if self.sites.sd.contains(&node) {
                (sd.role("PC"), self.dell.role("SuSe"))
            } else {
                (se.role("PC"), self.ibm.role("Windows"))
            };
            out.push((subject.clone(), site_pc));
            out.push((subject.clone(), machine_class));
            out.push((subject, self.mail.role("Node")));
        }
        out
    }

    /// The client-side view name (and dRBAC proof) Table 4 grants a user.
    pub fn client_view(&self, who: &Entity) -> Option<(String, Option<psf_drbac::Proof>)> {
        self.acl.select_view(
            &who.as_subject(),
            &[],
            &self.registry,
            &self.repository,
            &self.bus,
            self.clock.now(),
        )
    }

    /// Generate the VIG view instance a user is entitled to, bound to a
    /// fresh `MailClient` original (single-sign-on path).
    pub fn instantiate_client_view(
        &self,
        who: &Entity,
    ) -> Option<(String, Arc<psf_views::ViewInstance>)> {
        let (view_name, _proof) = self.client_view(who)?;
        let spec = match view_name.as_str() {
            "ViewMailClient_Member" => view_member(),
            "ViewMailClient_Partner" => view_partner(),
            _ => view_anonymous(),
        };
        let class = mail_client_class();
        let vig = psf_views::Vig::new(mail_method_library());
        let generated = vig.generate(&class, &spec).ok()?;
        let original = class.instantiate();
        original.set_field(
            "accounts",
            "alice,555-0100,alice@comp.ny\nbob,555-0199,bob@comp.sd",
        );
        let inst = generated
            .instantiate(
                Some(psf_views::binding::InProcessRemote::switchboard(original)),
                psf_views::CoherencePolicy::WriteThrough,
                0,
                who.name.0.as_bytes(),
            )
            .ok()?;
        Some((view_name, inst))
    }

    /// Plan mail-service delivery to a client node.
    pub fn plan_service(&self, goal: &Goal) -> Result<(Plan, psf_core::PlannerStats), PsfError> {
        let planner = Planner::new(
            &self.registrar,
            &self.sites.network,
            &self.oracle,
            PlannerConfig::default(),
        );
        planner.plan(goal)
    }

    /// Plan and deploy in one go.
    pub fn deliver(&self, goal: &Goal) -> Result<(Plan, Deployment), PsfError> {
        let mut span = psf_telemetry::span("psf.mail", "deliver");
        span.field("goal_iface", &goal.iface)
            .field("client_node", goal.client_node.0);
        psf_telemetry::counter!("psf.mail.deliveries").inc();
        let (plan, _) = self.plan_service(goal)?;
        let deployment = self.deployer.execute(&plan, goal)?;
        span.field("steps", plan.steps.len())
            .field("channels", deployment.channel_count());
        Ok((plan, deployment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builds_with_all_credentials() {
        let w = MailWorld::build(2);
        assert_eq!(w.creds.len(), 18);
        // Every paper credential renders in Table 2 syntax.
        assert_eq!(
            w.creds[&1].body.render(),
            "[ Alice -> Comp.NY.Member ] Comp.NY"
        );
        assert_eq!(
            w.creds[&3].body.render(),
            "[ Comp.SD -> Comp.NY.Partner ' ] Comp.NY"
        );
        assert_eq!(
            w.creds[&12].body.render(),
            "[ Inc.SE.Member -> Comp.NY.Partner ] Comp.SD"
        );
        assert!(w.creds[&4].body.render().contains("Trust=(0,10)"));
        assert!(w.creds[&6].body.render().contains("Secure={false}"));
        assert!(w.creds[&14].body.render().contains("CPU=80"));
    }
}
