//! The mail data model: messages, accounts, and their byte codecs.
//!
//! Field values travel as byte strings through the component model, so
//! the codecs here are deliberately simple line/record formats.

/// One mail message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sender account name.
    pub from: String,
    /// Recipient account name.
    pub to: String,
    /// Subject line.
    pub subject: String,
    /// Body text.
    pub body: String,
}

impl Message {
    /// Create a message.
    pub fn new(
        from: impl Into<String>,
        to: impl Into<String>,
        subject: impl Into<String>,
        body: impl Into<String>,
    ) -> Message {
        Message {
            from: from.into(),
            to: to.into(),
            subject: subject.into(),
            body: body.into(),
        }
    }

    /// Encode as length-prefixed records.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for part in [&self.from, &self.to, &self.subject, &self.body] {
            out.extend_from_slice(&(part.len() as u32).to_le_bytes());
            out.extend_from_slice(part.as_bytes());
        }
        out
    }

    /// Decode one message, returning it and the bytes consumed.
    pub fn from_bytes(buf: &[u8]) -> Result<(Message, usize), String> {
        let mut pos = 0usize;
        let mut parts = Vec::with_capacity(4);
        for _ in 0..4 {
            if pos + 4 > buf.len() {
                return Err("truncated message".into());
            }
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if pos + len > buf.len() {
                return Err("truncated message field".into());
            }
            parts.push(
                String::from_utf8(buf[pos..pos + len].to_vec())
                    .map_err(|_| "invalid UTF-8 in message".to_string())?,
            );
            pos += len;
        }
        let body = parts.pop().unwrap();
        let subject = parts.pop().unwrap();
        let to = parts.pop().unwrap();
        let from = parts.pop().unwrap();
        Ok((
            Message {
                from,
                to,
                subject,
                body,
            },
            pos,
        ))
    }

    /// Encode a list of messages.
    pub fn encode_list(messages: &[Message]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(messages.len() as u32).to_le_bytes());
        for m in messages {
            out.extend_from_slice(&m.to_bytes());
        }
        out
    }

    /// Decode a list of messages.
    pub fn decode_list(buf: &[u8]) -> Result<Vec<Message>, String> {
        if buf.len() < 4 {
            return Err("truncated message list".into());
        }
        let count = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        if count > 1 << 20 {
            return Err("oversized message list".into());
        }
        let mut pos = 4usize;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let (m, used) = Message::from_bytes(&buf[pos..])?;
            out.push(m);
            pos += used;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single() {
        let m = Message::new("alice", "bob", "hi", "lunch at noon?");
        let (back, used) = Message::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
        assert_eq!(used, m.to_bytes().len());
    }

    #[test]
    fn roundtrip_list() {
        let list = vec![
            Message::new("a", "b", "s1", "x"),
            Message::new("c", "d", "s2", "y with unicode é"),
        ];
        let back = Message::decode_list(&Message::encode_list(&list)).unwrap();
        assert_eq!(back, list);
    }

    #[test]
    fn empty_list() {
        assert_eq!(
            Message::decode_list(&Message::encode_list(&[])).unwrap(),
            vec![]
        );
    }

    #[test]
    fn truncation_rejected() {
        let m = Message::new("alice", "bob", "hi", "body");
        let bytes = m.to_bytes();
        assert!(Message::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(Message::from_bytes(&[]).is_err());
        assert!(Message::decode_list(&[1, 0]).is_err());
    }

    #[test]
    fn empty_fields_ok() {
        let m = Message::new("", "", "", "");
        let (back, _) = Message::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
    }
}
