//! The three mail-client views of Table 4 and their XML definitions.
//!
//! | Role            | View name                  |
//! |-----------------|----------------------------|
//! | Comp.NY.Member  | `ViewMailClient_Member`    |
//! | Comp.NY.Partner | `ViewMailClient_Partner`   |
//! | others          | `ViewMailClient_Anonymous` |
//!
//! * **Member** — full functionality: messaging local, directory over
//!   Switchboard, notes/meetings over RMI.
//! * **Partner** — same, except "the functionality for setting up a
//!   meeting is reduced to only requesting the right to set up a meeting"
//!   (Table 3b's customization).
//! * **Anonymous** — "only the right to browse the email directory":
//!   AddressI over Switchboard with `getPhone` overridden to deny —
//!   method-level access control (§4.2).

use psf_views::{MethodLibrary, ViewSpec};

/// XML definition of `ViewMailClient_Member`.
pub const MEMBER_XML: &str = r#"
<View name="ViewMailClient_Member">
  <Represents name="MailClient"/>
  <Restricts>
    <Interface name="MessageI" type="local"/>
    <Interface name="NotesI" type="rmi"/>
    <Interface name="AddressI" type="switchboard"/>
  </Restricts>
</View>"#;

/// XML definition of `ViewMailClient_Partner` (Table 3b).
pub const PARTNER_XML: &str = r#"
<View name="ViewMailClient_Partner">
  <Represents name="MailClient"/>
  <Restricts>
    <Interface name="MessageI" type="local"/>
    <Interface name="NotesI" type="rmi"/>
    <Interface name="AddressI" type="switchboard"/>
  </Restricts>
  <Adds_Fields>
    <Field name="accountCopy" type="Account"/>
  </Adds_Fields>
  <Adds_Methods>
    <MSign>ViewMailClient_Partner(String[] args)</MSign>
    <MBody>mail.partner_ctor</MBody>
  </Adds_Methods>
  <Customizes_Methods>
    <MSign>boolean addMeeting(String name)</MSign>
    <MBody>mail.request_meeting</MBody>
  </Customizes_Methods>
</View>"#;

/// XML definition of `ViewMailClient_Anonymous`.
pub const ANONYMOUS_XML: &str = r#"
<View name="ViewMailClient_Anonymous">
  <Represents name="MailClient"/>
  <Restricts>
    <Interface name="AddressI" type="switchboard"/>
  </Restricts>
  <Customizes_Methods>
    <MSign>String getPhone(String name)</MSign>
    <MBody>mail.deny_phone</MBody>
  </Customizes_Methods>
</View>"#;

/// Parse the Member view spec.
pub fn view_member() -> ViewSpec {
    ViewSpec::parse_xml(MEMBER_XML).expect("member XML is valid")
}

/// Parse the Partner view spec.
pub fn view_partner() -> ViewSpec {
    ViewSpec::parse_xml(PARTNER_XML).expect("partner XML is valid")
}

/// Parse the Anonymous view spec.
pub fn view_anonymous() -> ViewSpec {
    ViewSpec::parse_xml(ANONYMOUS_XML).expect("anonymous XML is valid")
}

/// The method library resolving every `<MBody>` reference above.
pub fn mail_method_library() -> MethodLibrary {
    let mut lib = MethodLibrary::new();
    // Partner constructor: cache the partner's own account record.
    lib.register_full("mail.partner_ctor", &["accountCopy"], true, |st, args| {
        st.set("accountCopy", args.to_vec());
        Ok(vec![])
    });
    // Partners only *request* meetings (§4.2).
    lib.register_full("mail.request_meeting", &[], false, |_, args| {
        Ok(format!("REQUESTED:{}", String::from_utf8_lossy(args)).into_bytes())
    });
    // Anonymous clients may not read phone numbers — method-level denial.
    lib.register_full("mail.deny_phone", &[], false, |_, _| {
        Err("access denied: anonymous clients may only browse email addresses".into())
    });
    lib
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::mail_client_class;
    use psf_views::binding::InProcessRemote;
    use psf_views::{CoherencePolicy, ExposureType, Vig};

    #[test]
    fn t3_partner_spec_matches_table() {
        let spec = view_partner();
        assert_eq!(spec.name, "ViewMailClient_Partner");
        assert_eq!(spec.represents, "MailClient");
        assert_eq!(spec.restricts.len(), 3);
        assert_eq!(spec.restricts[0].exposure, ExposureType::Local);
        assert_eq!(spec.restricts[1].exposure, ExposureType::Rmi);
        assert_eq!(spec.restricts[2].exposure, ExposureType::Switchboard);
        assert_eq!(spec.adds_fields[0].name, "accountCopy");
        assert_eq!(spec.customizes_methods[0].method_name(), "addMeeting");
    }

    #[test]
    fn all_three_views_generate() {
        let class = mail_client_class();
        let vig = Vig::new(mail_method_library());
        for spec in [view_member(), view_partner(), view_anonymous()] {
            let view = vig
                .generate(&class, &spec)
                .unwrap_or_else(|e| panic!("{} failed to generate: {e}", spec.name));
            assert!(!view.source.is_empty());
        }
    }

    #[test]
    fn member_has_full_meeting_rights_partner_only_requests() {
        let class = mail_client_class();
        let vig = Vig::new(mail_method_library());
        let original = class.instantiate();

        let member = vig
            .generate(&class, &view_member())
            .unwrap()
            .instantiate(
                Some(InProcessRemote::rmi(original.clone())),
                CoherencePolicy::WriteThrough,
                0,
                b"",
            )
            .unwrap();
        assert_eq!(member.invoke("addMeeting", b"retro").unwrap(), b"true");
        assert!(String::from_utf8_lossy(&original.field("meetings")).contains("retro"));

        let partner = vig
            .generate(&class, &view_partner())
            .unwrap()
            .instantiate(
                Some(InProcessRemote::rmi(original.clone())),
                CoherencePolicy::WriteThrough,
                0,
                b"partner-account",
            )
            .unwrap();
        let out = partner.invoke("addMeeting", b"takeover").unwrap();
        assert_eq!(out, b"REQUESTED:takeover");
        assert!(!String::from_utf8_lossy(&original.field("meetings")).contains("takeover"));
        // Constructor populated the added field.
        assert_eq!(partner.field("accountCopy"), b"partner-account");
    }

    #[test]
    fn anonymous_browses_email_but_not_phone() {
        let class = mail_client_class();
        let original = class.instantiate();
        original.set_field("accounts", "alice,555-0100,alice@comp");
        let vig = Vig::new(mail_method_library());
        let anon = vig
            .generate(&class, &view_anonymous())
            .unwrap()
            .instantiate(
                Some(InProcessRemote::switchboard(original)),
                CoherencePolicy::WriteThrough,
                0,
                b"",
            )
            .unwrap();
        assert_eq!(anon.invoke("getEmail", b"alice").unwrap(), b"alice@comp");
        let err = anon.invoke("getPhone", b"alice").unwrap_err();
        assert!(err.contains("denied"));
        // Messaging is entirely absent from the anonymous view.
        assert!(anon.invoke("sendMessage", b"x").is_err());
        assert!(anon.invoke("addMeeting", b"x").is_err());
    }

    #[test]
    fn views_form_a_functionality_lattice() {
        // Member ⊇ Partner ⊇ Anonymous in terms of exposed methods.
        let class = mail_client_class();
        let vig = Vig::new(mail_method_library());
        let count = |spec| vig.generate(&class, &spec).unwrap().entries.len();
        let member = count(view_member());
        let partner = count(view_partner());
        let anonymous = count(view_anonymous());
        assert!(member >= partner, "{member} vs {partner}");
        assert!(partner > anonymous, "{partner} vs {anonymous}");
    }
}
