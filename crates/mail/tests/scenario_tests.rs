//! End-to-end scenario tests reproducing the paper's §3.3 walkthrough
//! (Table 2 credentials in action), Table 4 access control, and the §2.2
//! QoS-adaptation claims (experiment F7).

use psf_core::{Goal, PlanStep};
use psf_drbac::proof::ProofEngine;
use psf_mail::{MailWorld, Message};

fn world() -> MailWorld {
    MailWorld::build(2)
}

// ---------------------------------------------------------------- T2 --

#[test]
fn t2_client_authorization_bob_is_ny_member_via_2_and_11() {
    let w = world();
    // "dRBAC proves that Bob is Comp.NY.Member by presenting credentials
    // (2) and (11)."
    let engine = ProofEngine::new(&w.registry, &w.repository, &w.bus, 0);
    let (proof, _) = engine
        .prove(
            &w.bob.as_subject(),
            &w.ny_guard.entity().role("Member"),
            &[],
        )
        .expect("Bob must map to Comp.NY.Member");
    assert_eq!(proof.edges.len(), 2);
    let ids: Vec<String> = proof.edges.iter().map(|e| e.credential.id()).collect();
    assert!(ids.contains(&w.creds[&11].id()), "chain must use (11)");
    assert!(ids.contains(&w.creds[&2].id()), "chain must use (2)");
    proof.verify(&w.registry, &w.bus, 0).unwrap();
}

#[test]
fn t2_charlie_is_ny_partner_via_15_12_supported_by_3() {
    let w = world();
    // Charlie: (15) Inc.SE.Member, (12) third-party mapping by Comp.SD,
    // authorized by the assignment delegation (3).
    let engine = ProofEngine::new(&w.registry, &w.repository, &w.bus, 0);
    let (proof, _) = engine
        .prove(
            &w.charlie.as_subject(),
            &w.ny_guard.entity().role("Partner"),
            &[],
        )
        .expect("Charlie must map to Comp.NY.Partner");
    // Membership chain: (15) then (12).
    assert_eq!(proof.edges.len(), 2);
    // The third-party edge (12) must carry the (3) assignment support.
    let support = proof.edges[1]
        .support
        .as_ref()
        .expect("(12) is third-party and needs support");
    assert!(support.assignment);
    assert_eq!(support.edges[0].credential.id(), w.creds[&3].id());
    proof.verify(&w.registry, &w.bus, 0).unwrap();
}

#[test]
fn t2_alice_is_direct_member() {
    let w = world();
    let engine = ProofEngine::new(&w.registry, &w.repository, &w.bus, 0);
    let (proof, _) = engine
        .prove(
            &w.alice.as_subject(),
            &w.ny_guard.entity().role("Member"),
            &[],
        )
        .unwrap();
    assert_eq!(proof.edges.len(), 1);
    assert_eq!(proof.edges[0].credential.id(), w.creds[&1].id());
}

#[test]
fn t2_node_authorization_sd_maps_13_to_5() {
    let w = world();
    // "the machines from San Diego can be mapped from credential (13) to
    // credential (5)" — via the site-PC role chain.
    let engine = ProofEngine::new(&w.registry, &w.repository, &w.bus, 0);
    let sd_pc = &w.node_identities[&w.sites.sd[0]];
    let (proof, _) = engine
        .prove(&sd_pc.as_subject(), &w.mail.role("Node"), &[])
        .expect("SD node must map onto Mail.Node");
    // Trust attenuated to the Dell.SuSe bound (0,7).
    assert_eq!(
        proof.attrs.get("Trust"),
        Some(&psf_drbac::AttrValue::Range(0, 7))
    );
    let ids: Vec<String> = proof.edges.iter().map(|e| e.credential.id()).collect();
    assert!(ids.contains(&w.creds[&13].id()));
    assert!(ids.contains(&w.creds[&5].id()));
}

#[test]
fn t2_se_nodes_are_insecure_low_trust() {
    let w = world();
    let engine = ProofEngine::new(&w.registry, &w.repository, &w.bus, 0);
    let se_pc = &w.node_identities[&w.sites.se[0]];
    let (proof, _) = engine
        .prove(&se_pc.as_subject(), &w.mail.role("Node"), &[])
        .unwrap();
    assert_eq!(
        proof.attrs.get("Secure"),
        Some(&psf_drbac::AttrValue::set(["false"]))
    );
    assert_eq!(
        proof.attrs.get("Trust"),
        Some(&psf_drbac::AttrValue::Range(0, 1))
    );
}

#[test]
fn t2_component_authorization_cpu_attenuates_per_site() {
    let w = world();
    let engine = ProofEngine::new(&w.registry, &w.repository, &w.bus, 0);
    // The Encryptor's credential chain into each domain.
    let subject = psf_drbac::Subject::Role(psf_drbac::RoleName::new("Mail", "Encryptor"));
    // In SD: (9) + (14) → CPU min(100, 80) = 80.
    let (proof, _) = engine
        .prove(&subject, &w.sd_guard.entity().role("Executable"), &[])
        .unwrap();
    assert_eq!(
        proof.attrs.get("CPU"),
        Some(&psf_drbac::AttrValue::Capacity(80))
    );
    // In SE: (9) + (17) → CPU min(100, 40) = 40.
    let (proof, _) = engine
        .prove(&subject, &w.se_guard.entity().role("Executable"), &[])
        .unwrap();
    assert_eq!(
        proof.attrs.get("CPU"),
        Some(&psf_drbac::AttrValue::Capacity(40))
    );
}

// ---------------------------------------------------------------- T4 --

#[test]
fn t4_acl_selects_views_per_role() {
    let w = world();
    assert_eq!(w.client_view(&w.alice).unwrap().0, "ViewMailClient_Member");
    // Bob holds Member through the cross-domain mapping, so the Member
    // rule fires first for him too (first match wins).
    assert_eq!(w.client_view(&w.bob).unwrap().0, "ViewMailClient_Member");
    // Charlie is only a Partner.
    assert_eq!(
        w.client_view(&w.charlie).unwrap().0,
        "ViewMailClient_Partner"
    );
    // A stranger gets the anonymous view.
    let mallory = psf_drbac::Entity::with_seed("Mallory", b"outside");
    w.registry.register(&mallory);
    assert_eq!(
        w.client_view(&mallory).unwrap().0,
        "ViewMailClient_Anonymous"
    );
}

#[test]
fn t4_instantiated_views_enforce_capability_differences() {
    let w = world();
    let (name, charlie_view) = w.instantiate_client_view(&w.charlie).unwrap();
    assert_eq!(name, "ViewMailClient_Partner");
    // Charlie can send messages and add notes…
    charlie_view
        .invoke(
            "sendMessage",
            &Message::new("charlie", "alice", "hello", "from seattle").to_bytes(),
        )
        .unwrap();
    // …but may only *request* meetings.
    let out = charlie_view.invoke("addMeeting", b"q3-sync").unwrap();
    assert_eq!(out, b"REQUESTED:q3-sync");

    let (_, alice_view) = w.instantiate_client_view(&w.alice).unwrap();
    assert_eq!(
        alice_view.invoke("addMeeting", b"q3-sync").unwrap(),
        b"true"
    );

    let mallory = psf_drbac::Entity::with_seed("Mallory", b"outside");
    w.registry.register(&mallory);
    let (name, anon_view) = w.instantiate_client_view(&mallory).unwrap();
    assert_eq!(name, "ViewMailClient_Anonymous");
    assert!(anon_view.invoke("sendMessage", b"junk").is_err());
    assert!(anon_view.invoke("getPhone", b"alice").is_err());
    assert_eq!(
        anon_view.invoke("getEmail", b"alice").unwrap(),
        b"alice@comp.ny"
    );
}

// ---------------------------------------------------------------- F7 --

#[test]
fn f7_privacy_over_insecure_wan_deploys_cipher_pair_and_mail_flows() {
    let w = world();
    // Bob (San Diego) wants private mail service.
    let goal = Goal::private("MailI", w.sites.sd[1]);
    let (plan, deployment) = w.deliver(&goal).unwrap();

    let deploys: Vec<&str> = plan
        .steps
        .iter()
        .filter_map(|s| match s {
            PlanStep::Deploy { spec, .. } => Some(spec.as_str()),
            _ => None,
        })
        .collect();
    assert!(deploys.contains(&"Encryptor"), "plan: {}", plan.render());
    assert!(deploys.contains(&"Decryptor"), "plan: {}", plan.render());
    assert!(!plan.delivered.plaintext_exposed);

    // End-to-end mail flow through the deployed chain.
    deployment
        .endpoint
        .call_remote(
            "send",
            &Message::new("bob", "alice", "subject", "private body").to_bytes(),
        )
        .unwrap();
    let inbox =
        Message::decode_list(&deployment.endpoint.call_remote("fetch", b"alice").unwrap()).unwrap();
    assert_eq!(inbox.len(), 1);
    assert_eq!(inbox[0].body, "private body");

    // The message reached the NY server (not stranded in a cache).
    let server = w.deployer.source("MailServer", w.sites.ny[0]).unwrap();
    let all = Message::decode_list(&server.invoke("fetch", b"alice").unwrap()).unwrap();
    assert_eq!(all.len(), 1);
}

#[test]
fn f7_latency_bound_in_sd_deploys_cache_view() {
    let w = world();
    // Low-latency (non-private) access in San Diego: the WAN's 40 ms
    // forces a ViewMailServer cache onto a SD node — which is authorized
    // because Dell.SuSe maps to a secure, trust-7 Mail.Node (cred 5).
    let goal = Goal {
        iface: "MailI".into(),
        client_node: w.sites.sd[1],
        max_latency_ms: Some(10.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };
    let (plan, deployment) = w.deliver(&goal).unwrap();
    let cache_deployed = plan
        .steps
        .iter()
        .any(|s| matches!(s, PlanStep::Deploy { spec, .. } if spec == "ViewMailServer"));
    assert!(cache_deployed, "plan: {}", plan.render());
    assert!(plan.delivered.latency_ms <= 10.0);

    // The cache serves reads and writes through to the origin.
    deployment
        .endpoint
        .call_remote(
            "send",
            &Message::new("bob", "alice", "s", "cached write").to_bytes(),
        )
        .unwrap();
    let server = w.deployer.source("MailServer", w.sites.ny[0]).unwrap();
    let inbox = Message::decode_list(&server.invoke("fetch", b"alice").unwrap()).unwrap();
    assert_eq!(
        inbox.len(),
        1,
        "write must reach the origin through coherence"
    );
}

#[test]
fn f7_cache_is_not_authorized_on_seattle_nodes() {
    let w = world();
    // The same latency demand in Seattle cannot be met: the cache demands
    // Secure={true}, Trust=(5,10) but IBM.Windows maps to Secure={false},
    // Trust=(0,1) (cred 6). The planner must fail rather than place
    // plaintext mail on an untrusted node.
    let goal = Goal {
        iface: "MailI".into(),
        client_node: w.sites.se[1],
        max_latency_ms: Some(10.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };
    let err = w.plan_service(&goal);
    assert!(err.is_err(), "Seattle cache deployment must be refused");
}

#[test]
fn f7_direct_access_without_constraints_needs_no_deployments() {
    let w = world();
    let goal = Goal {
        iface: "MailI".into(),
        client_node: w.sites.ny[1],
        max_latency_ms: None,
        require_privacy: true,
        require_plaintext_delivery: true,
    };
    let (plan, _) = w.plan_service(&goal).unwrap();
    assert_eq!(
        plan.deployments(),
        0,
        "LAN access is direct: {}",
        plan.render()
    );
}

#[test]
fn f6_views_increase_deployment_success() {
    // "Views … increase the likelihood of the planner finding a component
    // deployment in constrained environments."
    let w = world();
    let goal = Goal {
        iface: "MailI".into(),
        client_node: w.sites.sd[1],
        max_latency_ms: Some(10.0),
        require_privacy: false,
        require_plaintext_delivery: true,
    };
    assert!(w.plan_service(&goal).is_ok(), "with views: plan exists");
    // Remove the view template: the same goal becomes unsatisfiable.
    w.registrar.unregister("ViewMailServer");
    assert!(w.plan_service(&goal).is_err(), "without views: no plan");
}

#[test]
fn revocation_of_member_credential_downgrades_bob() {
    let w = world();
    assert_eq!(w.client_view(&w.bob).unwrap().0, "ViewMailClient_Member");
    // SD-Guard revokes Bob's membership (11).
    w.sd_guard.revoke(&w.creds[&11]);
    // Bob falls through to the anonymous catch-all.
    assert_eq!(w.client_view(&w.bob).unwrap().0, "ViewMailClient_Anonymous");
}

#[test]
fn credential_numbering_matches_paper_table() {
    let w = world();
    let expected: &[(u8, &str)] = &[
        (1, "[ Alice -> Comp.NY.Member ] Comp.NY"),
        (2, "[ Comp.SD.Member -> Comp.NY.Member ] Comp.NY"),
        (3, "[ Comp.SD -> Comp.NY.Partner ' ] Comp.NY"),
        (7, "[ Comp.NY.PC -> Dell.Linux ] Dell"),
        (11, "[ Bob -> Comp.SD.Member ] Comp.SD"),
        (12, "[ Inc.SE.Member -> Comp.NY.Partner ] Comp.SD"),
        (13, "[ Comp.SD.PC -> Dell.SuSe ] Dell"),
        (15, "[ Charlie -> Inc.SE.Member ] Inc.SE"),
        (16, "[ Inc.SE.PC -> IBM.Windows ] IBM"),
    ];
    for (n, text) in expected {
        assert_eq!(&w.creds[n].body.render(), text, "credential ({n})");
    }
    assert!(w.creds[&8]
        .body
        .render()
        .starts_with("[ Mail.MailClient -> Comp.NY.Executable ] Comp.NY"));
    assert!(w.creds[&17].body.render().contains("Inc.SE.Executable"));
}
