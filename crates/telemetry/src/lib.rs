//! # psf-telemetry
//!
//! Observability substrate for the PSF workspace: a structured tracing
//! layer and a metrics registry, both designed to be cheap enough to leave
//! enabled in hot paths (planner frontier expansion, proof search,
//! Switchboard heartbeats).
//!
//! ## Tracing
//!
//! [`span`] opens a named span under a dotted target (`psf.planner`,
//! `psf.drbac`, `psf.swbd`, …); the returned RAII guard records
//! `(target, name, fields, start, duration)` into a bounded in-memory ring
//! buffer when dropped. Spans nest: a span opened while another is live on
//! the same thread records it as its parent, so exported traces reconstruct
//! the call tree (planning → proof search → deployment → handshake).
//! [`event`] records a zero-duration span for point-in-time facts (replan
//! triggered, link flapped, CLI milestones). [`export_jsonl`] serializes
//! the buffer one JSON object per line.
//!
//! ## Metrics
//!
//! [`metrics::Registry`] holds named counters, gauges, and log₂-bucketed
//! latency histograms, all updated with relaxed atomics — no locks on the
//! hot path. The [`counter!`]/[`gauge!`]/[`histogram!`] macros cache the
//! `Arc` handle in a per-call-site static so steady-state cost is a single
//! atomic add. [`metrics::Registry::render_prometheus`] emits a
//! Prometheus-text-format snapshot with p50/p90/p99 summaries.
//!
//! ## Naming conventions
//!
//! Dotted lowercase names, `psf.<subsystem>.<thing>[.<unit>]`:
//! `psf.planner.expanded`, `psf.drbac.prove.us`, `psf.swbd.hb.rtt.us`,
//! `psf.deploy.step.us`. Histograms that measure time carry a `.us`
//! (microseconds) suffix.

//! ## Causal tracing, audit, SLOs
//!
//! Every span belongs to a 128-bit [`trace::TraceId`]; [`TraceContext`]
//! carries the ambient trace across thread hops and RPC envelopes so one
//! request yields one causal tree. The [`audit`] module keeps a bounded
//! append-only log of every authorization decision (subject, object,
//! verdict, delegation-chain digest, cache provenance, trace id), and the
//! [`slo`] module evaluates declarative latency objectives — with
//! histogram exemplars linking a burning p99 back to the trace behind it.

#![forbid(unsafe_code)]

pub mod audit;
pub mod metrics;
pub mod slo;
pub mod trace;

pub use audit::{AuditLog, AuditRecord, AuditSink, CacheOutcome, Decision, Verdict};
pub use metrics::{global as registry, Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use slo::{Percentile, SloReport, SloSpec, SloTable};
pub use trace::{
    current_trace_id, event, export_jsonl, global as tracer, span, span_with_context, untraced,
    ContextGuard, SpanGuard, SpanRecord, TraceContext, TraceId, Tracer, UntracedGuard,
};
