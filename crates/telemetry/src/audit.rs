//! Authorization audit trail: an append-only, bounded log of every
//! authorize / prove / select_view / revocation decision made anywhere in
//! the process.
//!
//! Each [`AuditRecord`] captures who asked for what, the verdict, a digest
//! of the delegation chain the decision rested on, where the answer came
//! from (fresh proof search vs. positive/negative cache hit, and at which
//! repository epoch), and the trace id of the causal tree the decision
//! belongs to — so `psf audit` can replay the decision history behind any
//! trace and `psf trace --tree` can show where its latency went.
//!
//! The log is a ring buffer like the span tracer: bounded, lock-guarded,
//! oldest-evicted, with an eviction counter mirrored to the
//! `psf.audit.dropped` gauge (global log only). Export is JSONL with the
//! same escaping rules as span export.

use crate::trace::{escape_into, TraceId};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Ring-buffer capacity of the global audit log.
pub const DEFAULT_CAPACITY: usize = 8192;

/// What kind of decision an [`AuditRecord`] documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// A dRBAC proof search (`ProofEngine::prove`).
    Prove,
    /// A role→view ACL selection (`ViewAcl::select_view`).
    SelectView,
    /// A method/service-level authorization (`Guard`, Switchboard
    /// `Authorizer`).
    Authorize,
    /// A credential revocation (`RevocationBus::revoke`).
    Revocation,
}

impl Decision {
    /// Stable lowercase name used in JSONL and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            Decision::Prove => "prove",
            Decision::SelectView => "select_view",
            Decision::Authorize => "authorize",
            Decision::Revocation => "revocation",
        }
    }
}

/// The outcome of a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The request was granted.
    Allow,
    /// The request was denied.
    Deny,
    /// A credential was revoked (revocation records only).
    Revoked,
}

impl Verdict {
    /// Stable lowercase name used in JSONL and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Allow => "allow",
            Verdict::Deny => "deny",
            Verdict::Revoked => "revoked",
        }
    }
}

/// Where the answer came from: cache provenance of the decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheOutcome {
    /// No cache was consulted (uncached engine, or not applicable).
    #[default]
    Uncached,
    /// Answered from a cached positive proof.
    Hit,
    /// Answered from a cached negative result.
    NegativeHit,
    /// Cache consulted but missed; a fresh search ran.
    Miss,
    /// Decided by the independent certificate checker — no proof search
    /// and no repository access; the verdict rests on a presented or
    /// cached `AuthCertificate`.
    CertVerified,
}

impl CacheOutcome {
    /// Stable lowercase name used in JSONL and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Uncached => "uncached",
            CacheOutcome::Hit => "hit",
            CacheOutcome::NegativeHit => "negative",
            CacheOutcome::Miss => "miss",
            CacheOutcome::CertVerified => "cert-verified",
        }
    }
}

/// One audited decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Monotonic sequence number (1-based), assigned at record time.
    pub seq: u64,
    /// Microseconds since the Unix epoch at record time.
    pub t_us: u64,
    /// The causal trace the decision belongs to, if one was live.
    pub trace: Option<TraceId>,
    /// What kind of decision this is.
    pub decision: Decision,
    /// The requesting subject (entity or role), rendered.
    pub subject: String,
    /// What was decided about: a role for proofs, a view name for view
    /// selections, a method/service for authorizations, a credential id
    /// for revocations.
    pub object: String,
    /// The outcome.
    pub verdict: Verdict,
    /// FNV-1a digest (16 hex chars) over the ordered credential ids of the
    /// delegation chain the verdict rested on; empty when no chain was
    /// involved (catch-all grants, denials, revocations).
    pub chain_digest: String,
    /// Cache provenance of the answer.
    pub cache: CacheOutcome,
    /// Repository epoch the answer is pinned to, when a cache was
    /// consulted.
    pub epoch: Option<u64>,
    /// Truncated hex digest of the authorization certificate the decision
    /// rested on (emission or checker verdicts); empty when no
    /// certificate was involved.
    pub cert_digest: String,
    /// Free-form detail (error text for denials, rule matched, …).
    pub detail: String,
}

/// Digest an ordered delegation chain (credential ids) into the compact
/// hex form stored in [`AuditRecord::chain_digest`]. FNV-1a over the ids
/// separated by `\n` — stable across processes, cheap on the warm path.
pub fn chain_digest<S: AsRef<str>>(credential_ids: &[S]) -> String {
    if credential_ids.is_empty() {
        return String::new();
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for id in credential_ids {
        for b in id.as_ref().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Append-only bounded audit log (ring buffer, oldest evicted).
pub struct AuditLog {
    buf: Mutex<VecDeque<AuditRecord>>,
    capacity: usize,
    next_seq: AtomicU64,
    dropped: AtomicU64,
    drop_gauge: OnceLock<Arc<crate::metrics::Gauge>>,
    report_drops: bool,
}

impl AuditLog {
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        AuditLog {
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            next_seq: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            drop_gauge: OnceLock::new(),
            report_drops: false,
        }
    }

    /// Append a decision. `seq` and `t_us` on the passed record are
    /// overwritten; callers fill in the decision fields only.
    pub fn record(&self, mut record: AuditRecord) {
        record.seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        record.t_us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let mut buf = self.buf.lock();
        if buf.len() >= self.capacity {
            buf.pop_front();
            let dropped = self.dropped.fetch_add(1, Ordering::Relaxed) + 1;
            if self.report_drops {
                self.drop_gauge
                    .get_or_init(|| crate::metrics::global().gauge("psf.audit.dropped"))
                    .set(dropped as i64);
            }
        }
        buf.push_back(record);
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted due to capacity pressure.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy out the buffered records, oldest first.
    pub fn snapshot(&self) -> Vec<AuditRecord> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Clear the buffer (tests, or after exporting).
    pub fn clear(&self) {
        self.buf.lock().clear();
    }

    /// Snapshot filtered: by subject substring, denials only, and/or
    /// trace id. `None` filters match everything.
    pub fn query(
        &self,
        subject: Option<&str>,
        deny_only: bool,
        trace: Option<TraceId>,
    ) -> Vec<AuditRecord> {
        self.snapshot()
            .into_iter()
            .filter(|r| subject.is_none_or(|s| r.subject.contains(s)))
            .filter(|r| !deny_only || r.verdict != Verdict::Allow)
            .filter(|r| trace.is_none_or(|t| r.trace == Some(t)))
            .collect()
    }

    /// Serialize the buffer as JSON lines, one record per line.
    pub fn export_jsonl(&self) -> String {
        let records = self.snapshot();
        let mut out = String::with_capacity(records.len() * 160);
        for r in &records {
            Self::write_jsonl(r, &mut out);
        }
        out
    }

    /// Serialize one record as a JSON line (no trailing newline).
    pub fn render_jsonl(record: &AuditRecord) -> String {
        let mut out = String::with_capacity(160);
        Self::write_jsonl(record, &mut out);
        out.pop(); // trailing '\n'
        out
    }

    fn write_jsonl(r: &AuditRecord, out: &mut String) {
        let _ = write!(out, "{{\"seq\":{},\"t_us\":{},\"trace\":", r.seq, r.t_us);
        match r.trace {
            Some(t) => {
                let _ = write!(out, "\"{t}\"");
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"decision\":\"{}\",\"subject\":\"",
            r.decision.as_str()
        );
        escape_into(&r.subject, out);
        out.push_str("\",\"object\":\"");
        escape_into(&r.object, out);
        let _ = write!(
            out,
            "\",\"verdict\":\"{}\",\"chain_digest\":\"{}\",\"cache\":\"{}\",\"epoch\":",
            r.verdict.as_str(),
            r.chain_digest,
            r.cache.as_str()
        );
        match r.epoch {
            Some(e) => {
                let _ = write!(out, "{e}");
            }
            None => out.push_str("null"),
        }
        if !r.cert_digest.is_empty() {
            out.push_str(",\"cert\":\"");
            escape_into(&r.cert_digest, out);
            out.push('"');
        }
        if !r.detail.is_empty() {
            out.push_str(",\"detail\":\"");
            escape_into(&r.detail, out);
            out.push('"');
        }
        out.push_str("}\n");
    }
}

impl Default for AuditLog {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

/// The process-wide audit log all PSF decision points report to.
pub fn global() -> &'static AuditLog {
    static GLOBAL: OnceLock<AuditLog> = OnceLock::new();
    GLOBAL.get_or_init(|| AuditLog {
        report_drops: true,
        ..AuditLog::default()
    })
}

/// Convenience builder for the common "record on the global log" path.
/// The trace id is captured from the calling thread's current context.
pub fn record(
    decision: Decision,
    subject: impl Into<String>,
    object: impl Into<String>,
    verdict: Verdict,
) -> AuditRecordBuilder {
    AuditRecordBuilder {
        record: AuditRecord {
            seq: 0,
            t_us: 0,
            trace: crate::trace::current_trace_id(),
            decision,
            subject: subject.into(),
            object: object.into(),
            verdict,
            chain_digest: String::new(),
            cache: CacheOutcome::Uncached,
            epoch: None,
            cert_digest: String::new(),
            detail: String::new(),
        },
    }
}

/// Builder returned by [`record`]; commits to the global log on
/// [`AuditRecordBuilder::commit`] (or silently on drop).
pub struct AuditRecordBuilder {
    record: AuditRecord,
}

impl AuditRecordBuilder {
    /// Set the delegation-chain digest from the ordered credential ids.
    pub fn chain<S: AsRef<str>>(mut self, credential_ids: &[S]) -> Self {
        self.record.chain_digest = chain_digest(credential_ids);
        self
    }

    /// Set cache provenance.
    pub fn cache(mut self, outcome: CacheOutcome, epoch: Option<u64>) -> Self {
        self.record.cache = outcome;
        self.record.epoch = epoch;
        self
    }

    /// Attach the digest of the authorization certificate the decision
    /// rested on.
    pub fn cert(mut self, digest: impl Into<String>) -> Self {
        self.record.cert_digest = digest.into();
        self
    }

    /// Attach free-form detail (error text, matched rule, …).
    pub fn detail(mut self, detail: impl Into<String>) -> Self {
        self.record.detail = detail.into();
        self
    }

    /// Append to the global audit log.
    pub fn commit(self) {
        global().record(self.record);
        crate::counter!("psf.audit.records").inc();
    }
}

/// A JSONL audit export target with optional crash-durability: when
/// `fsync_on_drop` is set, the file is fsynced before the handle closes,
/// so the audit trail survives the same `kill -9` the repository WAL
/// does. Off by default — export paths that only feed dashboards should
/// not pay the sync.
pub struct AuditSink {
    file: std::fs::File,
    path: std::path::PathBuf,
    fsync_on_drop: bool,
    lines: usize,
}

impl AuditSink {
    /// Create (truncate) the sink file.
    pub fn create(path: impl Into<std::path::PathBuf>) -> std::io::Result<AuditSink> {
        let path = path.into();
        Ok(AuditSink {
            file: std::fs::File::create(&path)?,
            path,
            fsync_on_drop: false,
            lines: 0,
        })
    }

    /// Opt in to fsync-on-drop durability.
    pub fn fsync_on_drop(mut self, on: bool) -> AuditSink {
        self.fsync_on_drop = on;
        self
    }

    /// Where the sink writes.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// JSONL lines written so far.
    pub fn lines_written(&self) -> usize {
        self.lines
    }

    /// Write a log's current buffer as JSON lines. Returns the number of
    /// records written.
    pub fn write_log(&mut self, log: &AuditLog) -> std::io::Result<usize> {
        use std::io::Write as _;
        let jsonl = log.export_jsonl();
        let n = jsonl.lines().count();
        self.file.write_all(jsonl.as_bytes())?;
        self.lines += n;
        Ok(n)
    }

    /// Append a single record as one JSON line.
    pub fn write_record(&mut self, record: &AuditRecord) -> std::io::Result<()> {
        use std::io::Write as _;
        let mut line = AuditLog::render_jsonl(record);
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.lines += 1;
        Ok(())
    }

    /// Flush and fsync immediately (independent of the drop policy).
    pub fn sync(&mut self) -> std::io::Result<()> {
        use std::io::Write as _;
        self.file.flush()?;
        self.file.sync_data()
    }
}

impl Drop for AuditSink {
    fn drop(&mut self) {
        if self.fsync_on_drop {
            let _ = self.sync();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(subject: &str, verdict: Verdict) -> AuditRecord {
        AuditRecord {
            seq: 0,
            t_us: 0,
            trace: None,
            decision: Decision::Prove,
            subject: subject.to_string(),
            object: "Comp.NY.Member".to_string(),
            verdict,
            chain_digest: String::new(),
            cache: CacheOutcome::Uncached,
            epoch: None,
            cert_digest: String::new(),
            detail: String::new(),
        }
    }

    #[test]
    fn sink_writes_and_syncs_jsonl() {
        let path = std::env::temp_dir().join(format!("psf-audit-sink-{}", std::process::id()));
        let log = AuditLog::with_capacity(8);
        log.record(rec("Alice", Verdict::Allow));
        log.record(rec("Bob", Verdict::Deny));
        {
            let mut sink = AuditSink::create(&path).unwrap().fsync_on_drop(true);
            assert_eq!(sink.write_log(&log).unwrap(), 2);
            sink.write_record(&log.snapshot()[0]).unwrap();
            assert_eq!(sink.lines_written(), 3);
            assert_eq!(sink.path(), path.as_path());
        } // drop fsyncs
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn records_are_sequenced_and_bounded() {
        let log = AuditLog::with_capacity(3);
        for i in 0..5 {
            log.record(rec(&format!("S{i}"), Verdict::Allow));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let seqs: Vec<u64> = log.snapshot().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
    }

    #[test]
    fn query_filters_subject_verdict_trace() {
        let log = AuditLog::default();
        let t = TraceId::fresh();
        log.record(rec("Alice", Verdict::Allow));
        log.record(rec("Bob", Verdict::Deny));
        let mut with_trace = rec("Alice", Verdict::Deny);
        with_trace.trace = Some(t);
        log.record(with_trace);

        assert_eq!(log.query(Some("Alice"), false, None).len(), 2);
        assert_eq!(log.query(None, true, None).len(), 2);
        assert_eq!(log.query(None, false, Some(t)).len(), 1);
        assert_eq!(log.query(Some("Alice"), true, Some(t)).len(), 1);
        assert_eq!(log.query(Some("Carol"), false, None).len(), 0);
    }

    #[test]
    fn jsonl_shape_and_escaping() {
        let log = AuditLog::default();
        let mut r = rec("Alice \"A\"", Verdict::Deny);
        r.cache = CacheOutcome::NegativeHit;
        r.epoch = Some(7);
        r.detail = "no path\nfound".to_string();
        r.chain_digest = chain_digest(&["cred-1", "cred-2"]);
        log.record(r);
        let text = log.export_jsonl();
        let line = text.lines().next().unwrap();
        assert!(line.starts_with("{\"seq\":1,"));
        assert!(line.contains("\"decision\":\"prove\""));
        assert!(line.contains("\"subject\":\"Alice \\\"A\\\"\""));
        assert!(line.contains("\"verdict\":\"deny\""));
        assert!(line.contains("\"cache\":\"negative\""));
        assert!(line.contains("\"epoch\":7"));
        assert!(line.contains("\"detail\":\"no path\\nfound\""));
        assert!(line.contains("\"trace\":null"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn chain_digest_is_order_sensitive_and_stable() {
        let d1 = chain_digest(&["a", "b"]);
        let d2 = chain_digest(&["b", "a"]);
        assert_ne!(d1, d2);
        assert_eq!(d1, chain_digest(&["a", "b"]));
        assert_eq!(d1.len(), 16);
        assert!(chain_digest::<&str>(&[]).is_empty());
        // Concatenation ambiguity is broken by the separator.
        assert_ne!(chain_digest(&["ab"]), chain_digest(&["a", "b"]));
    }

    #[test]
    fn builder_records_to_global() {
        let before = global().len() + global().dropped() as usize;
        record(Decision::Authorize, "Alice", "deliver", Verdict::Allow)
            .chain(&["c1"])
            .cache(CacheOutcome::Hit, Some(3))
            .detail("rule 0")
            .commit();
        let after = global().len() + global().dropped() as usize;
        assert_eq!(after, before + 1);
    }
}
