//! Structured tracing: RAII spans with parent/child nesting recorded into a
//! bounded in-memory ring buffer, exported as JSON lines.
//!
//! A span is opened with [`span`] (or [`Tracer::span`]) and recorded when
//! its guard drops. Nesting is tracked with a thread-local stack, so
//! same-thread nesting (plan → prove → deploy → handshake) is captured as
//! parent links. Every span belongs to a 128-bit [`TraceId`]: a span opened
//! with no enclosing span starts a fresh trace, and the ambient trace can be
//! carried across thread hops (or process boundaries) explicitly:
//!
//! * [`TraceContext::current`] captures the calling thread's trace id and
//!   innermost live span id;
//! * [`TraceContext::attach`] installs a captured context on another thread
//!   (an RAII guard restores the previous context), so spans opened there
//!   join the original tree instead of starting orphan roots;
//! * [`Tracer::span_with_context`] opens a span whose parent comes from an
//!   explicit context rather than the thread-local stack — the remote half
//!   of an RPC uses this to parent its dispatch span under the caller's
//!   span.
//!
//! [`event`] records a zero-duration span for point-in-time facts. The
//! buffer holds the most recent [`DEFAULT_CAPACITY`] spans, dropping the
//! oldest under pressure; the global tracer publishes its eviction count as
//! the `psf.trace.dropped` gauge. [`export_jsonl`] serializes the buffer one
//! JSON object per line, in span-creation order.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Ring-buffer capacity of the global tracer.
pub const DEFAULT_CAPACITY: usize = 8192;

/// A 128-bit trace identifier shared by every span in one causal tree.
///
/// Ids are never zero; the all-zero value is reserved as the wire encoding
/// of "no trace context" in the Switchboard RPC envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

impl TraceId {
    /// Allocate a fresh process-unique trace id.
    pub fn fresh() -> TraceId {
        static COUNTER: AtomicU64 = AtomicU64::new(1);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let hi = splitmix64(process_seed().wrapping_add(n));
        let lo = splitmix64(hi ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let v = ((hi as u128) << 64) | lo as u128;
        TraceId(if v == 0 { 1 } else { v })
    }

    /// Render as 32 lowercase hex characters.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse a hex trace id (as printed by [`TraceId::to_hex`]).
    pub fn from_hex(s: &str) -> Option<TraceId> {
        if s.is_empty() || s.len() > 32 {
            return None;
        }
        u128::from_str_radix(s, 16)
            .ok()
            .filter(|&v| v != 0)
            .map(TraceId)
    }

    /// Big-endian wire encoding (16 bytes).
    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_be_bytes()
    }

    /// Decode the wire encoding; all-zero bytes mean "no trace".
    pub fn from_bytes(b: [u8; 16]) -> Option<TraceId> {
        let v = u128::from_be_bytes(b);
        (v != 0).then_some(TraceId(v))
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        splitmix64(nanos ^ ((std::process::id() as u64) << 32) | 1)
    })
}

/// A captured trace context: which trace the current work belongs to and
/// which span is its causal parent. `Copy`, 24 bytes — cheap to capture at
/// a spawn site and move into a worker closure or an RPC envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every span opened under this context joins.
    pub trace: TraceId,
    /// The span new roots are parented under (the innermost live span at
    /// capture time), if any.
    pub parent: Option<u64>,
}

impl TraceContext {
    /// Capture the calling thread's ambient context, if any trace is live.
    pub fn current() -> Option<TraceContext> {
        CTX.with(|c| {
            let c = c.borrow();
            c.trace.map(|trace| TraceContext {
                trace,
                parent: c.stack.last().copied().or(c.base_parent),
            })
        })
    }

    /// Install this context on the calling thread. Spans opened while the
    /// returned guard is live (and no enclosing span exists) join
    /// `self.trace` with `self.parent` as their parent. The previous
    /// context is restored when the guard drops.
    pub fn attach(self) -> ContextGuard {
        CTX.with(|c| {
            let mut c = c.borrow_mut();
            let prev = SavedCtx {
                trace: c.trace,
                base_parent: c.base_parent,
                auto: c.auto,
            };
            c.trace = Some(self.trace);
            c.base_parent = self.parent;
            c.auto = false;
            ContextGuard { prev }
        })
    }
}

/// The calling thread's current trace id, if any span or attached context
/// is live. Cheap (one thread-local read): hot paths use it for histogram
/// exemplars and audit records.
pub fn current_trace_id() -> Option<TraceId> {
    CTX.with(|c| c.borrow().trace)
}

/// Suppress trace capture on the calling thread while the returned guard
/// is live: the ambient context and live-span stack are stashed and
/// restored on drop. [`current_trace_id`] returns `None` meanwhile, so hot
/// paths that gate per-call span creation on a live trace (the Switchboard
/// RPC client and dispatcher) skip it entirely. Benchmark loops use this
/// so measured throughput reflects the untraced fast path rather than the
/// CLI's ambient command span.
pub fn untraced() -> UntracedGuard {
    CTX.with(|c| {
        let mut c = c.borrow_mut();
        let guard = UntracedGuard {
            prev: SavedCtx {
                trace: c.trace,
                base_parent: c.base_parent,
                auto: c.auto,
            },
            stack: std::mem::take(&mut c.stack),
        };
        c.trace = None;
        c.base_parent = None;
        c.auto = false;
        guard
    })
}

/// RAII guard restoring the context stashed by [`untraced`].
pub struct UntracedGuard {
    prev: SavedCtx,
    stack: Vec<u64>,
}

impl Drop for UntracedGuard {
    fn drop(&mut self) {
        CTX.with(|c| {
            let mut c = c.borrow_mut();
            c.trace = self.prev.trace;
            c.base_parent = self.prev.base_parent;
            c.auto = self.prev.auto;
            c.stack = std::mem::take(&mut self.stack);
        });
    }
}

/// RAII guard restoring the previously attached context (see
/// [`TraceContext::attach`]).
pub struct ContextGuard {
    prev: SavedCtx,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CTX.with(|c| {
            let mut c = c.borrow_mut();
            c.trace = self.prev.trace;
            c.base_parent = self.prev.base_parent;
            c.auto = self.prev.auto;
        });
    }
}

#[derive(Clone, Copy)]
struct SavedCtx {
    trace: Option<TraceId>,
    base_parent: Option<u64>,
    auto: bool,
}

#[derive(Default)]
struct ThreadCtx {
    /// The trace spans on this thread currently join.
    trace: Option<TraceId>,
    /// Parent for spans opened with an empty stack (set by `attach`).
    base_parent: Option<u64>,
    /// True when `trace` was auto-allocated by a root span (cleared when
    /// the stack empties), false when installed by `attach`.
    auto: bool,
    /// Ids of live spans, innermost last.
    stack: Vec<u64>,
}

thread_local! {
    static CTX: RefCell<ThreadCtx> = RefCell::new(ThreadCtx::default());
}

/// A completed span (or zero-duration event) as stored in the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id (1-based; 0 is never issued). Ids are
    /// allocated at span *open*, so sorting by id recovers creation order.
    pub id: u64,
    /// The causal tree this span belongs to. `None` only for events
    /// recorded outside any span or attached context.
    pub trace: Option<TraceId>,
    /// Id of the enclosing span (same thread, or explicit via context).
    pub parent: Option<u64>,
    /// Dotted subsystem target, e.g. `psf.planner`.
    pub target: &'static str,
    /// Span name, e.g. `plan` or `deploy.step`.
    pub name: &'static str,
    /// Key/value annotations attached while the span was live.
    pub fields: Vec<(&'static str, String)>,
    /// Start time in µs since the process tracing epoch.
    pub start_us: u64,
    /// Wall-clock duration in µs (0 for events).
    pub dur_us: u64,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Collects span records into a bounded ring buffer.
pub struct Tracer {
    buf: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
    next_id: AtomicU64,
    dropped: AtomicU64,
    /// When set, evictions are mirrored to the `psf.trace.dropped` gauge in
    /// the global metrics registry (enabled for the global tracer only, so
    /// test-local tracers don't pollute the registry).
    drop_gauge: OnceLock<Arc<crate::metrics::Gauge>>,
    report_drops: bool,
}

impl Tracer {
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer {
            // Pre-allocate the full ring so steady-state pushes never
            // reallocate, even for capacities above DEFAULT_CAPACITY.
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            drop_gauge: OnceLock::new(),
            report_drops: false,
        }
    }

    /// Open a span; it is recorded when the returned guard drops. The span
    /// joins the thread's current trace (starting a fresh one if none) and
    /// is parented under the innermost live span, if any.
    pub fn span(&self, target: &'static str, name: &'static str) -> SpanGuard<'_> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (parent, trace) = CTX.with(|c| {
            let mut c = c.borrow_mut();
            let parent = c.stack.last().copied().or(c.base_parent);
            let trace = match c.trace {
                Some(t) => t,
                None => {
                    let t = TraceId::fresh();
                    c.trace = Some(t);
                    c.auto = true;
                    t
                }
            };
            c.stack.push(id);
            (parent, trace)
        });
        SpanGuard {
            tracer: self,
            id,
            trace,
            parent,
            restore: None,
            target,
            name,
            fields: Vec::new(),
            start: Instant::now(),
            start_us: epoch().elapsed().as_micros() as u64,
        }
    }

    /// Open a span whose trace and parent come from an explicit
    /// [`TraceContext`] instead of the thread-local stack — the receiving
    /// half of an RPC or a failover worker uses this to join the caller's
    /// tree. While the guard is live the context is also installed as the
    /// thread's current one (so nested spans and events join the same
    /// trace); the previous context is restored on drop.
    pub fn span_with_context(
        &self,
        target: &'static str,
        name: &'static str,
        ctx: TraceContext,
    ) -> SpanGuard<'_> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let restore = CTX.with(|c| {
            let mut c = c.borrow_mut();
            let prev = SavedCtx {
                trace: c.trace,
                base_parent: c.base_parent,
                auto: c.auto,
            };
            c.trace = Some(ctx.trace);
            c.auto = false;
            c.stack.push(id);
            prev
        });
        SpanGuard {
            tracer: self,
            id,
            trace: ctx.trace,
            parent: ctx.parent,
            restore: Some(restore),
            target,
            name,
            fields: Vec::new(),
            start: Instant::now(),
            start_us: epoch().elapsed().as_micros() as u64,
        }
    }

    /// Record a zero-duration event under the current span, if any.
    pub fn event(
        &self,
        target: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, String)>,
    ) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (parent, trace) = CTX.with(|c| {
            let c = c.borrow();
            (c.stack.last().copied().or(c.base_parent), c.trace)
        });
        self.push(SpanRecord {
            id,
            trace,
            parent,
            target,
            name,
            fields,
            start_us: epoch().elapsed().as_micros() as u64,
            dur_us: 0,
        });
    }

    fn push(&self, record: SpanRecord) {
        let mut buf = self.buf.lock();
        if buf.len() >= self.capacity {
            buf.pop_front();
            let dropped = self.dropped.fetch_add(1, Ordering::Relaxed) + 1;
            if self.report_drops {
                self.drop_gauge
                    .get_or_init(|| crate::metrics::global().gauge("psf.trace.dropped"))
                    .set(dropped as i64);
            }
        }
        buf.push_back(record);
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted due to capacity pressure.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy out the buffered records in span-creation order (ids are
    /// allocated at open, so sorting by id restores sibling order even
    /// when guards dropped out of order).
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut records: Vec<SpanRecord> = self.buf.lock().iter().cloned().collect();
        records.sort_by_key(|r| r.id);
        records
    }

    /// Clear the buffer (tests, or after exporting).
    pub fn clear(&self) {
        self.buf.lock().clear();
    }

    /// Serialize the buffer as JSON lines, one span object per line, in
    /// span-creation order.
    pub fn export_jsonl(&self) -> String {
        let records = self.snapshot();
        let mut out = String::with_capacity(records.len() * 128);
        for r in &records {
            let _ = write!(out, "{{\"id\":{},\"trace\":", r.id);
            match r.trace {
                Some(t) => {
                    let _ = write!(out, "\"{t}\"");
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"parent\":");
            match r.parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"target\":\"");
            escape_into(r.target, &mut out);
            out.push_str("\",\"name\":\"");
            escape_into(r.name, &mut out);
            let _ = write!(
                out,
                "\",\"start_us\":{},\"dur_us\":{}",
                r.start_us, r.dur_us
            );
            if !r.fields.is_empty() {
                out.push_str(",\"fields\":{");
                for (i, (k, v)) in r.fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, &mut out);
                    out.push_str("\":\"");
                    escape_into(v, &mut out);
                    out.push('"');
                }
                out.push('}');
            }
            out.push_str("}\n");
        }
        out
    }

    #[cfg(test)]
    fn buf_capacity(&self) -> usize {
        self.buf.lock().capacity()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

pub(crate) fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// RAII handle for a live span; records on drop.
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    id: u64,
    trace: TraceId,
    parent: Option<u64>,
    restore: Option<SavedCtx>,
    target: &'static str,
    name: &'static str,
    fields: Vec<(&'static str, String)>,
    start: Instant,
    start_us: u64,
}

impl SpanGuard<'_> {
    /// Attach a key/value annotation (value formatted via `Display`).
    pub fn field(&mut self, key: &'static str, value: impl std::fmt::Display) -> &mut Self {
        self.fields.push((key, value.to_string()));
        self
    }

    /// This span's id, usable as a correlation key in logs.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The trace this span belongs to.
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    /// The context a child of this span would inherit — capture before
    /// handing work to another thread or serializing into an RPC envelope.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace: self.trace,
            parent: Some(self.id),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        CTX.with(|c| {
            let mut c = c.borrow_mut();
            // Usually the top of the stack; defensive against out-of-order
            // drops of sibling guards held simultaneously.
            if let Some(pos) = c.stack.iter().rposition(|&id| id == self.id) {
                c.stack.remove(pos);
            }
            if let Some(prev) = self.restore.take() {
                c.trace = prev.trace;
                c.base_parent = prev.base_parent;
                c.auto = prev.auto;
            } else if c.stack.is_empty() && c.auto {
                // The auto-allocated root trace ends with its last span.
                c.trace = None;
                c.auto = false;
            }
        });
        self.tracer.push(SpanRecord {
            id: self.id,
            trace: Some(self.trace),
            parent: self.parent,
            target: self.target,
            name: self.name,
            fields: std::mem::take(&mut self.fields),
            start_us: self.start_us,
            dur_us: self.start.elapsed().as_micros() as u64,
        });
    }
}

/// The process-wide tracer all PSF instrumentation reports to.
pub fn global() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(|| Tracer {
        report_drops: true,
        ..Tracer::default()
    })
}

/// Open a span on the global tracer.
pub fn span(target: &'static str, name: &'static str) -> SpanGuard<'static> {
    global().span(target, name)
}

/// Open a span on the global tracer under an explicit context.
pub fn span_with_context(
    target: &'static str,
    name: &'static str,
    ctx: TraceContext,
) -> SpanGuard<'static> {
    global().span_with_context(target, name, ctx)
}

/// Record a zero-duration event on the global tracer.
pub fn event(target: &'static str, name: &'static str, fields: Vec<(&'static str, String)>) {
    global().event(target, name, fields)
}

/// Export the global tracer's buffer as JSON lines.
pub fn export_jsonl() -> String {
    global().export_jsonl()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_on_drop() {
        let tracer = Tracer::default();
        {
            let mut outer = tracer.span("psf.test", "outer");
            outer.field("k", 42);
            {
                let _inner = tracer.span("psf.test", "inner");
            }
        }
        let spans = tracer.snapshot();
        assert_eq!(spans.len(), 2);
        // Snapshot is in creation order: outer first.
        let outer = &spans[0];
        let inner = &spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(outer.fields, vec![("k", "42".to_string())]);
        assert!(outer.start_us <= inner.start_us);
        // Same auto-allocated trace for the whole tree.
        assert!(outer.trace.is_some());
        assert_eq!(outer.trace, inner.trace);
    }

    #[test]
    fn events_attach_to_current_span() {
        let tracer = Tracer::default();
        {
            let guard = tracer.span("psf.test", "parent");
            let parent_id = guard.id();
            tracer.event("psf.test", "ping", vec![("n", "1".into())]);
            let spans = tracer.snapshot();
            assert_eq!(spans.len(), 1);
            assert_eq!(spans[0].name, "ping");
            assert_eq!(spans[0].parent, Some(parent_id));
            assert_eq!(spans[0].dur_us, 0);
            assert_eq!(spans[0].trace, Some(guard.trace_id()));
        }
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let tracer = Tracer::with_capacity(4);
        for _ in 0..10 {
            let _g = tracer.span("psf.test", "s");
        }
        assert_eq!(tracer.len(), 4);
        assert_eq!(tracer.dropped(), 6);
        let ids: Vec<u64> = tracer.snapshot().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![7, 8, 9, 10]);
    }

    #[test]
    fn with_capacity_preallocates_full_ring() {
        let want = DEFAULT_CAPACITY * 2;
        let tracer = Tracer::with_capacity(want);
        assert!(
            tracer.buf_capacity() >= want,
            "pre-allocation {} below requested capacity {}",
            tracer.buf_capacity(),
            want
        );
    }

    #[test]
    fn jsonl_escapes_and_shapes() {
        let tracer = Tracer::default();
        tracer.event(
            "psf.test",
            "evt",
            vec![("msg", "say \"hi\"\n\\done".to_string())],
        );
        let text = tracer.export_jsonl();
        let line = text.lines().next().unwrap();
        assert!(line.starts_with("{\"id\":"));
        assert!(line.contains("\"trace\":null"));
        assert!(line.contains("\"parent\":null"));
        assert!(line.contains("\"target\":\"psf.test\""));
        assert!(line.contains("say \\\"hi\\\"\\n\\\\done"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn worker_threads_start_fresh_trees() {
        let tracer = std::sync::Arc::new(Tracer::default());
        let _outer = tracer.span("psf.test", "outer");
        let t2 = std::sync::Arc::clone(&tracer);
        std::thread::spawn(move || {
            let _s = t2.span("psf.test", "worker");
        })
        .join()
        .unwrap();
        let worker = &tracer.snapshot()[0];
        assert_eq!(worker.name, "worker");
        assert_eq!(worker.parent, None);
        assert_ne!(worker.trace, Some(_outer.trace_id()));
    }

    #[test]
    fn attached_context_joins_worker_to_tree() {
        let tracer = std::sync::Arc::new(Tracer::default());
        let outer = tracer.span("psf.test", "outer");
        let ctx = TraceContext::current().expect("outer span is live");
        assert_eq!(ctx.trace, outer.trace_id());
        assert_eq!(ctx.parent, Some(outer.id()));
        let t2 = std::sync::Arc::clone(&tracer);
        std::thread::spawn(move || {
            let _attached = ctx.attach();
            let _s = t2.span("psf.test", "worker");
        })
        .join()
        .unwrap();
        let worker = &tracer.snapshot()[0];
        assert_eq!(worker.name, "worker");
        assert_eq!(worker.parent, Some(outer.id()));
        assert_eq!(worker.trace, Some(outer.trace_id()));
    }

    #[test]
    fn span_with_context_parents_explicitly_and_restores() {
        let tracer = Tracer::default();
        let remote_ctx = TraceContext {
            trace: TraceId::fresh(),
            parent: Some(4242),
        };
        {
            let dispatch = tracer.span_with_context("psf.test", "dispatch", remote_ctx);
            assert_eq!(dispatch.trace_id(), remote_ctx.trace);
            // A nested span joins the remote trace via the stack.
            let _child = tracer.span("psf.test", "child");
        }
        // Context restored: a new span starts its own trace again.
        {
            let _fresh = tracer.span("psf.test", "fresh");
        }
        let spans = tracer.snapshot();
        assert_eq!(spans.len(), 3);
        let dispatch = &spans[0];
        let child = &spans[1];
        let fresh = &spans[2];
        assert_eq!(dispatch.parent, Some(4242));
        assert_eq!(dispatch.trace, Some(remote_ctx.trace));
        assert_eq!(child.parent, Some(dispatch.id));
        assert_eq!(child.trace, Some(remote_ctx.trace));
        assert_ne!(fresh.trace, Some(remote_ctx.trace));
        assert_eq!(fresh.parent, None);
    }

    #[test]
    fn out_of_order_sibling_drops_keep_creation_order() {
        let tracer = Tracer::default();
        let root_ctx = TraceContext {
            trace: TraceId::fresh(),
            parent: None,
        };
        let a = tracer.span_with_context("psf.test", "a", root_ctx);
        let b = tracer.span_with_context("psf.test", "b", root_ctx);
        let c = tracer.span_with_context("psf.test", "c", root_ctx);
        // Drop out of creation order: c, a, b.
        drop(c);
        drop(a);
        drop(b);
        let names: Vec<&str> = tracer.snapshot().iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn untraced_suppresses_and_restores_context() {
        let tracer = Tracer::default();
        let outer = tracer.span("psf.test", "outer");
        assert!(TraceContext::current().is_some());
        {
            let _quiet = untraced();
            assert_eq!(current_trace_id(), None);
            assert!(TraceContext::current().is_none());
            // A span opened meanwhile starts its own tree, not outer's.
            let inner = tracer.span("psf.test", "inner");
            assert_ne!(inner.trace_id(), outer.trace_id());
        }
        let restored = TraceContext::current().expect("context restored");
        assert_eq!(restored.trace, outer.trace_id());
        assert_eq!(restored.parent, Some(outer.id()));
    }

    #[test]
    fn trace_id_hex_round_trip() {
        let t = TraceId::fresh();
        assert_eq!(TraceId::from_hex(&t.to_hex()), Some(t));
        assert_eq!(t.to_hex().len(), 32);
        assert_eq!(TraceId::from_bytes(t.to_bytes()), Some(t));
        assert_eq!(TraceId::from_bytes([0u8; 16]), None);
        assert_eq!(TraceId::from_hex(""), None);
        assert_eq!(TraceId::from_hex("zz"), None);
        // Distinct across calls.
        assert_ne!(TraceId::fresh(), TraceId::fresh());
    }
}
