//! Structured tracing: RAII spans with parent/child nesting recorded into a
//! bounded in-memory ring buffer, exported as JSON lines.
//!
//! A span is opened with [`span`] (or [`Tracer::span`]) and recorded when
//! its guard drops. Nesting is tracked with a thread-local stack, so spans
//! opened on worker threads start their own trees while same-thread nesting
//! (plan → prove → deploy → handshake) is captured as parent links. The
//! buffer holds the most recent [`DEFAULT_CAPACITY`] spans, dropping the
//! oldest under pressure and counting the drops.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Ring-buffer capacity of the global tracer.
pub const DEFAULT_CAPACITY: usize = 8192;

/// A completed span (or zero-duration event) as stored in the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id (1-based; 0 is never issued).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Dotted subsystem target, e.g. `psf.planner`.
    pub target: &'static str,
    /// Span name, e.g. `plan` or `deploy.step`.
    pub name: &'static str,
    /// Key/value annotations attached while the span was live.
    pub fields: Vec<(&'static str, String)>,
    /// Start time in µs since the process tracing epoch.
    pub start_us: u64,
    /// Wall-clock duration in µs (0 for events).
    pub dur_us: u64,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Collects span records into a bounded ring buffer.
pub struct Tracer {
    buf: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
    next_id: AtomicU64,
    dropped: AtomicU64,
}

impl Tracer {
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(DEFAULT_CAPACITY))),
            capacity: capacity.max(1),
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Open a span; it is recorded when the returned guard drops.
    pub fn span(&self, target: &'static str, name: &'static str) -> SpanGuard<'_> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        SpanGuard {
            tracer: self,
            id,
            parent,
            target,
            name,
            fields: Vec::new(),
            start: Instant::now(),
            start_us: epoch().elapsed().as_micros() as u64,
        }
    }

    /// Record a zero-duration event under the current span, if any.
    pub fn event(
        &self,
        target: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, String)>,
    ) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|stack| stack.borrow().last().copied());
        self.push(SpanRecord {
            id,
            parent,
            target,
            name,
            fields,
            start_us: epoch().elapsed().as_micros() as u64,
            dur_us: 0,
        });
    }

    fn push(&self, record: SpanRecord) {
        let mut buf = self.buf.lock();
        if buf.len() >= self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(record);
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted due to capacity pressure.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy out the buffered records, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Clear the buffer (tests, or after exporting).
    pub fn clear(&self) {
        self.buf.lock().clear();
    }

    /// Serialize the buffer as JSON lines, one span object per line.
    pub fn export_jsonl(&self) -> String {
        let records = self.snapshot();
        let mut out = String::with_capacity(records.len() * 96);
        for r in &records {
            let _ = write!(out, "{{\"id\":{},\"parent\":", r.id);
            match r.parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"target\":\"");
            escape_into(r.target, &mut out);
            out.push_str("\",\"name\":\"");
            escape_into(r.name, &mut out);
            let _ = write!(
                out,
                "\",\"start_us\":{},\"dur_us\":{}",
                r.start_us, r.dur_us
            );
            if !r.fields.is_empty() {
                out.push_str(",\"fields\":{");
                for (i, (k, v)) in r.fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, &mut out);
                    out.push_str("\":\"");
                    escape_into(v, &mut out);
                    out.push('"');
                }
                out.push('}');
            }
            out.push_str("}\n");
        }
        out
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// RAII handle for a live span; records on drop.
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    id: u64,
    parent: Option<u64>,
    target: &'static str,
    name: &'static str,
    fields: Vec<(&'static str, String)>,
    start: Instant,
    start_us: u64,
}

impl SpanGuard<'_> {
    /// Attach a key/value annotation (value formatted via `Display`).
    pub fn field(&mut self, key: &'static str, value: impl std::fmt::Display) -> &mut Self {
        self.fields.push((key, value.to_string()));
        self
    }

    /// This span's id, usable as a correlation key in logs.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Usually the top of the stack; defensive against out-of-order
            // drops of sibling guards held simultaneously.
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        self.tracer.push(SpanRecord {
            id: self.id,
            parent: self.parent,
            target: self.target,
            name: self.name,
            fields: std::mem::take(&mut self.fields),
            start_us: self.start_us,
            dur_us: self.start.elapsed().as_micros() as u64,
        });
    }
}

/// The process-wide tracer all PSF instrumentation reports to.
pub fn global() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(Tracer::default)
}

/// Open a span on the global tracer.
pub fn span(target: &'static str, name: &'static str) -> SpanGuard<'static> {
    global().span(target, name)
}

/// Record a zero-duration event on the global tracer.
pub fn event(target: &'static str, name: &'static str, fields: Vec<(&'static str, String)>) {
    global().event(target, name, fields)
}

/// Export the global tracer's buffer as JSON lines.
pub fn export_jsonl() -> String {
    global().export_jsonl()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_on_drop() {
        let tracer = Tracer::default();
        {
            let mut outer = tracer.span("psf.test", "outer");
            outer.field("k", 42);
            {
                let _inner = tracer.span("psf.test", "inner");
            }
        }
        let spans = tracer.snapshot();
        assert_eq!(spans.len(), 2);
        // Inner drops first, so it is recorded first.
        let inner = &spans[0];
        let outer = &spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(outer.fields, vec![("k", "42".to_string())]);
        assert!(outer.start_us <= inner.start_us);
    }

    #[test]
    fn events_attach_to_current_span() {
        let tracer = Tracer::default();
        {
            let guard = tracer.span("psf.test", "parent");
            let parent_id = guard.id();
            tracer.event("psf.test", "ping", vec![("n", "1".into())]);
            let spans = tracer.snapshot();
            assert_eq!(spans.len(), 1);
            assert_eq!(spans[0].name, "ping");
            assert_eq!(spans[0].parent, Some(parent_id));
            assert_eq!(spans[0].dur_us, 0);
        }
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let tracer = Tracer::with_capacity(4);
        for _ in 0..10 {
            let _g = tracer.span("psf.test", "s");
        }
        assert_eq!(tracer.len(), 4);
        assert_eq!(tracer.dropped(), 6);
        let ids: Vec<u64> = tracer.snapshot().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![7, 8, 9, 10]);
    }

    #[test]
    fn jsonl_escapes_and_shapes() {
        let tracer = Tracer::default();
        tracer.event(
            "psf.test",
            "evt",
            vec![("msg", "say \"hi\"\n\\done".to_string())],
        );
        let text = tracer.export_jsonl();
        let line = text.lines().next().unwrap();
        assert!(line.starts_with("{\"id\":"));
        assert!(line.contains("\"parent\":null"));
        assert!(line.contains("\"target\":\"psf.test\""));
        assert!(line.contains("say \\\"hi\\\"\\n\\\\done"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn worker_threads_start_fresh_trees() {
        let tracer = std::sync::Arc::new(Tracer::default());
        let _outer = tracer.span("psf.test", "outer");
        let t2 = std::sync::Arc::clone(&tracer);
        std::thread::spawn(move || {
            let _s = t2.span("psf.test", "worker");
        })
        .join()
        .unwrap();
        let worker = &tracer.snapshot()[0];
        assert_eq!(worker.name, "worker");
        assert_eq!(worker.parent, None);
    }
}
