//! Metrics registry: named counters, gauges, and log₂-bucketed histograms
//! behind relaxed atomics, with a Prometheus-text-format exporter.
//!
//! The registry itself is a `RwLock<HashMap<…>>`, but it is only touched on
//! handle lookup; the [`counter!`](crate::counter)/[`histogram!`](crate::histogram)
//! macros cache the returned `Arc` in a per-call-site static, so steady-state
//! instrumentation is one atomic RMW with no lock and no allocation.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket 0 holds exact zeros, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)`, and the last bucket absorbs everything from
/// `2^62` up (an overflow bucket in practice).
pub const BUCKETS: usize = 64;

/// Lock-free histogram over `u64` samples (latencies in µs by convention).
///
/// Log₂ bucketing keeps recording to two relaxed atomic adds plus a min/max
/// update; percentile estimates interpolate linearly inside the bucket, so
/// relative error is bounded by the bucket width (≤ 2× at worst, far less
/// once a bucket has neighbors).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    // Exemplar: the trace id and value of a recent sample from the highest
    // bucket seen so far, so a p99 outlier can be traced back to its causal
    // tree. Three relaxed atomics, racy by design — a torn exemplar merely
    // points at a neighbouring trace, never corrupts the histogram.
    ex_value: AtomicU64,
    ex_trace_hi: AtomicU64,
    ex_trace_lo: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            ex_value: AtomicU64::new(0),
            ex_trace_hi: AtomicU64::new(0),
            ex_trace_lo: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample: 0 for 0, else `floor(log2(v)) + 1`, capped.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive value bounds `(lo, hi)` covered by bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    match idx {
        0 => (0, 0),
        i if i >= BUCKETS - 1 => (1u64 << (BUCKETS - 2), u64::MAX),
        i => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

impl Histogram {
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        // Keep an exemplar from the max bucket: only samples at least as
        // large (bucket-wise) as the current exemplar are candidates, and
        // only when a trace is live on the recording thread.
        if bucket_index(v) >= bucket_index(self.ex_value.load(Ordering::Relaxed)) {
            if let Some(t) = crate::trace::current_trace_id() {
                self.ex_value.store(v, Ordering::Relaxed);
                self.ex_trace_hi
                    .store((t.0 >> 64) as u64, Ordering::Relaxed);
                self.ex_trace_lo.store(t.0 as u64, Ordering::Relaxed);
            }
        }
    }

    /// The exemplar `(trace id, sample value)` from the highest bucket a
    /// traced sample has reached, if any traced sample was recorded.
    pub fn exemplar(&self) -> Option<(crate::trace::TraceId, u64)> {
        let hi = self.ex_trace_hi.load(Ordering::Relaxed);
        let lo = self.ex_trace_lo.load(Ordering::Relaxed);
        let t = ((hi as u128) << 64) | lo as u128;
        (t != 0).then(|| {
            (
                crate::trace::TraceId(t),
                self.ex_value.load(Ordering::Relaxed),
            )
        })
    }

    /// Record a [`std::time::Duration`] in microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the owning bucket. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the sample that cuts the q-quantile.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (idx, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cumulative + c >= rank {
                let (lo, hi) = bucket_bounds(idx);
                let within = (rank - cumulative) as f64 / c as f64;
                let est = lo as f64 + (hi.saturating_sub(lo)) as f64 * within;
                // Clamp to observed extremes so sparse buckets don't
                // over-report (e.g. a single sample of 33 in [32, 63]).
                let observed_max = self.max.load(Ordering::Relaxed);
                let observed_min = self.min.load(Ordering::Relaxed);
                return (est as u64).clamp(observed_min.min(observed_max), observed_max);
            }
            cumulative += c;
        }
        self.max.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            exemplar: self.exemplar(),
        }
    }
}

/// Point-in-time digest of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    /// `(trace id, value)` of a recent max-bucket traced sample.
    pub exemplar: Option<(crate::trace::TraceId, u64)>,
}

/// Named-instrument registry. Handles are `Arc`s; the maps are only locked
/// on lookup/creation and for snapshot rendering.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

fn get_or_create<T: Default>(map: &RwLock<HashMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().get(name) {
        return Arc::clone(found);
    }
    Arc::clone(
        map.write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(T::default())),
    )
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, name)
    }

    /// Counter value, or 0 if the counter was never touched.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.read().get(name).map_or(0, |c| c.get())
    }

    /// Histogram snapshot, if the histogram exists.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        self.histograms.read().get(name).map(|h| h.snapshot())
    }

    /// All registered instrument names, sorted (for diagnostics and tests).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .counters
            .read()
            .keys()
            .chain(self.gauges.read().keys())
            .chain(self.histograms.read().keys())
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Render every instrument in Prometheus text exposition format.
    /// Dotted PSF names become underscore-separated metric names; histograms
    /// are emitted as summaries with p50/p90/p99 quantile labels.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();

        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        counters.sort();
        for (name, value) in counters {
            let p = prom_name(&name);
            let _ = writeln!(out, "# TYPE {p} counter");
            let _ = writeln!(out, "{p} {value}");
        }

        let mut gauges: Vec<(String, i64)> = self
            .gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        gauges.sort();
        for (name, value) in gauges {
            let p = prom_name(&name);
            let _ = writeln!(out, "# TYPE {p} gauge");
            let _ = writeln!(out, "{p} {value}");
        }

        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, snap) in histograms {
            let p = prom_name(&name);
            let _ = writeln!(out, "# TYPE {p} summary");
            let _ = writeln!(out, "{p}{{quantile=\"0.5\"}} {}", snap.p50);
            let _ = writeln!(out, "{p}{{quantile=\"0.9\"}} {}", snap.p90);
            let _ = writeln!(out, "{p}{{quantile=\"0.99\"}} {}", snap.p99);
            let _ = writeln!(out, "{p}_sum {}", snap.sum);
            let _ = writeln!(out, "{p}_count {}", snap.count);
            let _ = writeln!(out, "{p}_min {}", snap.min);
            let _ = writeln!(out, "{p}_max {}", snap.max);
            if let Some((trace, value)) = snap.exemplar {
                // Comment line (classic text format has no exemplar
                // syntax; OpenMetrics-style payload, parser-invisible).
                let _ = writeln!(out, "# EXEMPLAR {p} {{trace_id=\"{trace}\"}} {value}");
            }
        }

        out
    }
}

fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// The process-wide registry all PSF instrumentation reports to.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Process-wide counter handle, cached per call site after first use.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        __HANDLE.get_or_init(|| $crate::metrics::global().counter($name))
    }};
}

/// Process-wide gauge handle, cached per call site after first use.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        __HANDLE.get_or_init(|| $crate::metrics::global().gauge($name))
    }};
}

/// Process-wide histogram handle, cached per call site after first use.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        __HANDLE.get_or_init(|| $crate::metrics::global().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every index maps back into its own bounds.
        for v in [0u64, 1, 2, 3, 7, 8, 100, 1 << 20, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.sum, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.p50, 0);
        assert_eq!(snap.p99, 0);
    }

    #[test]
    fn single_sample_percentiles_collapse_to_it() {
        let h = Histogram::default();
        h.record(33);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.min, 33);
        assert_eq!(snap.max, 33);
        // Interpolation would land mid-bucket; the observed-extreme clamp
        // pins all quantiles to the one real sample.
        assert_eq!(snap.p50, 33);
        assert_eq!(snap.p99, 33);
    }

    #[test]
    fn percentiles_order_and_bracket_uniform_data() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert!(snap.p50 <= snap.p90 && snap.p90 <= snap.p99);
        // Log-bucket estimates are coarse; require the right bucket, i.e.
        // within a factor of two of the exact answer.
        assert!((250..=1000).contains(&snap.p50), "p50 = {}", snap.p50);
        assert!((450..=1000).contains(&snap.p90), "p90 = {}", snap.p90);
        assert!(snap.p99 >= 512, "p99 = {}", snap.p99);
        assert_eq!(snap.sum, 500_500);
    }

    #[test]
    fn zero_and_overflow_buckets_are_recorded() {
        let h = Histogram::default();
        h.record(0);
        h.record(0);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), u64::MAX);
    }

    #[test]
    fn registry_reuses_handles_and_renders() {
        let reg = Registry::new();
        reg.counter("psf.test.hits").add(3);
        reg.counter("psf.test.hits").inc();
        reg.gauge("psf.test.depth").set(-2);
        reg.histogram("psf.test.lat.us").record(100);
        assert_eq!(reg.counter_value("psf.test.hits"), 4);
        assert_eq!(reg.counter_value("psf.test.misses"), 0);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE psf_test_hits counter"));
        assert!(text.contains("psf_test_hits 4"));
        assert!(text.contains("psf_test_depth -2"));
        assert!(text.contains("psf_test_lat_us{quantile=\"0.5\"}"));
        assert!(text.contains("psf_test_lat_us_count 1"));
    }

    #[test]
    fn counters_are_exact_under_contention() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 50_000;
        let reg = Registry::new();
        let hist = reg.histogram("psf.test.contended.us");
        crossbeam::thread::scope(|scope| {
            for t in 0..THREADS {
                let counter = reg.counter("psf.test.contended");
                let hist = Arc::clone(&hist);
                scope.spawn(move |_| {
                    for i in 0..PER_THREAD {
                        counter.inc();
                        hist.record(t * PER_THREAD + i);
                    }
                });
            }
        })
        .expect("contention threads");
        assert_eq!(
            reg.counter_value("psf.test.contended"),
            THREADS * PER_THREAD
        );
        assert_eq!(hist.count(), THREADS * PER_THREAD);
    }

    #[test]
    fn prometheus_escapes_metric_names() {
        let reg = Registry::new();
        reg.counter("psf.test.hy-phen/slash ok").inc();
        reg.gauge("psf.test.über.gauge").set(1);
        let text = reg.render_prometheus();
        // Every non-alphanumeric character maps to '_': dots, dashes,
        // slashes, spaces, and non-ASCII alike.
        assert!(text.contains("# TYPE psf_test_hy_phen_slash_ok counter"));
        assert!(text.contains("psf_test_hy_phen_slash_ok 1"));
        assert!(text.contains("psf_test__ber_gauge 1"));
        // No raw separator characters leak into the rendered names.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "unescaped metric name: {name}"
            );
        }
    }

    #[test]
    fn prometheus_renders_empty_histogram_as_zeros() {
        let reg = Registry::new();
        let _ = reg.histogram("psf.test.empty.us");
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE psf_test_empty_us summary"));
        assert!(text.contains("psf_test_empty_us{quantile=\"0.5\"} 0"));
        assert!(text.contains("psf_test_empty_us{quantile=\"0.9\"} 0"));
        assert!(text.contains("psf_test_empty_us{quantile=\"0.99\"} 0"));
        assert!(text.contains("psf_test_empty_us_sum 0"));
        assert!(text.contains("psf_test_empty_us_count 0"));
        assert!(text.contains("psf_test_empty_us_min 0"));
        assert!(text.contains("psf_test_empty_us_max 0"));
        // No exemplar line for a histogram that never saw a traced sample.
        assert!(!text.contains("# EXEMPLAR psf_test_empty_us"));
    }

    #[test]
    fn prometheus_single_sample_quantiles_pin_to_sample() {
        let reg = Registry::new();
        reg.histogram("psf.test.single.us").record(33);
        let text = reg.render_prometheus();
        // The observed-extreme clamp makes all three quantiles report the
        // one real sample, not a mid-bucket interpolation.
        assert!(text.contains("psf_test_single_us{quantile=\"0.5\"} 33"));
        assert!(text.contains("psf_test_single_us{quantile=\"0.9\"} 33"));
        assert!(text.contains("psf_test_single_us{quantile=\"0.99\"} 33"));
        assert!(text.contains("psf_test_single_us_sum 33"));
        assert!(text.contains("psf_test_single_us_count 1"));
        assert!(text.contains("psf_test_single_us_min 33"));
        assert!(text.contains("psf_test_single_us_max 33"));
    }

    #[test]
    fn exemplar_tracks_max_bucket_traced_sample() {
        let h = Histogram::default();
        // Untraced samples never install an exemplar.
        h.record(1_000_000);
        assert_eq!(h.exemplar(), None);

        let span = crate::trace::span("psf.test", "exemplar.big");
        let big_trace = span.trace_id();
        h.record(500_000);
        drop(span);
        let (t, v) = h.exemplar().expect("exemplar after traced sample");
        assert_eq!(t, big_trace);
        assert_eq!(v, 500_000);

        // A traced sample from a smaller bucket does not displace it…
        let small = crate::trace::span("psf.test", "exemplar.small");
        h.record(10);
        drop(small);
        assert_eq!(h.exemplar(), Some((big_trace, 500_000)));

        // …but an equal-or-larger bucket refreshes it.
        let bigger = crate::trace::span("psf.test", "exemplar.bigger");
        let bigger_trace = bigger.trace_id();
        h.record(600_000);
        drop(bigger);
        assert_eq!(h.exemplar(), Some((bigger_trace, 600_000)));

        // Snapshot carries it, and the renderer emits the comment line.
        let reg = Registry::new();
        let rh = reg.histogram("psf.test.ex.us");
        let span = crate::trace::span("psf.test", "exemplar.render");
        let trace = span.trace_id();
        rh.record(12345);
        drop(span);
        assert_eq!(rh.snapshot().exemplar, Some((trace, 12345)));
        let text = reg.render_prometheus();
        assert!(text.contains(&format!(
            "# EXEMPLAR psf_test_ex_us {{trace_id=\"{trace}\"}} 12345"
        )));
    }

    #[test]
    fn macros_cache_global_handles() {
        counter!("psf.test.macro.counter").inc();
        counter!("psf.test.macro.counter").inc();
        histogram!("psf.test.macro.hist.us").record(7);
        gauge!("psf.test.macro.gauge").set(5);
        assert!(global().counter_value("psf.test.macro.counter") >= 2);
        assert!(
            global()
                .histogram_snapshot("psf.test.macro.hist.us")
                .unwrap()
                .count
                >= 1
        );
    }
}
