//! Declarative service-level objectives over the metrics registry.
//!
//! An [`SloTable`] is a list of `(histogram metric, target percentile,
//! threshold µs)` rows. [`SloTable::evaluate`] snapshots each metric and
//! reports, per row, the observed percentile, whether it met the
//! objective, and the **burn rate** — observed ÷ threshold, so `1.0` is
//! exactly at budget, `0.25` is comfortable headroom, and `3.0` means the
//! tail is three times over. Rows whose metric has no samples evaluate to
//! "no data" and do not fail the table (a workload that never exercised a
//! path has not violated its latency objective).
//!
//! `psf slo [--check]` renders the table; `psf bench --check` and the
//! chaos harness gate on [`SloReport::ok`].

use crate::metrics::{HistogramSnapshot, Registry};
use crate::trace::TraceId;
use std::fmt::Write as _;

/// Which summary percentile an objective targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Percentile {
    P50,
    P90,
    P99,
}

impl Percentile {
    /// Stable label used in CLI and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Percentile::P50 => "p50",
            Percentile::P90 => "p90",
            Percentile::P99 => "p99",
        }
    }

    fn pick(self, snap: &HistogramSnapshot) -> u64 {
        match self {
            Percentile::P50 => snap.p50,
            Percentile::P90 => snap.p90,
            Percentile::P99 => snap.p99,
        }
    }
}

/// One objective: `metric`'s `percentile` must stay at or below
/// `threshold_us`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloSpec {
    /// Histogram name in the registry (e.g. `psf.drbac.prove.us`).
    pub metric: String,
    /// Target percentile.
    pub percentile: Percentile,
    /// Latency budget in microseconds.
    pub threshold_us: u64,
}

impl SloSpec {
    pub fn new(metric: impl Into<String>, percentile: Percentile, threshold_us: u64) -> Self {
        SloSpec {
            metric: metric.into(),
            percentile,
            threshold_us,
        }
    }
}

/// The evaluation of one [`SloSpec`] against a registry snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SloEval {
    pub spec: SloSpec,
    /// Observed percentile value, `None` when the metric has no samples.
    pub observed_us: Option<u64>,
    /// Samples behind the observation.
    pub count: u64,
    /// observed ÷ threshold (0.0 when no data).
    pub burn_rate: f64,
    /// Objective met (vacuously true with no data).
    pub ok: bool,
    /// Exemplar trace behind the histogram's max bucket, when available —
    /// the tree to render when this objective burns.
    pub exemplar: Option<(TraceId, u64)>,
}

/// Evaluation of a whole table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloReport {
    pub evals: Vec<SloEval>,
}

impl SloReport {
    /// Number of objectives over budget.
    pub fn violations(&self) -> usize {
        self.evals.iter().filter(|e| !e.ok).count()
    }

    /// True when every objective with data is within budget.
    pub fn ok(&self) -> bool {
        self.violations() == 0
    }

    /// Human-readable table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>4} {:>12} {:>12} {:>8} {:>6}  status",
            "metric", "pct", "observed_us", "budget_us", "samples", "burn"
        );
        for e in &self.evals {
            let observed = e
                .observed_us
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".to_string());
            let status = if e.observed_us.is_none() {
                "no-data"
            } else if e.ok {
                "ok"
            } else {
                "VIOLATED"
            };
            let _ = writeln!(
                out,
                "{:<28} {:>4} {:>12} {:>12} {:>8} {:>6.2}  {}",
                e.spec.metric,
                e.spec.percentile.as_str(),
                observed,
                e.spec.threshold_us,
                e.count,
                e.burn_rate,
                status
            );
            if !e.ok {
                if let Some((trace, value)) = e.exemplar {
                    let _ = writeln!(out, "    exemplar: trace {trace} sample {value}us");
                }
            }
        }
        let _ = writeln!(
            out,
            "{} objective(s), {} violation(s)",
            self.evals.len(),
            self.violations()
        );
        out
    }

    /// JSON lines, one object per objective.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.evals {
            let _ = write!(
                out,
                "{{\"metric\":\"{}\",\"percentile\":\"{}\",\"threshold_us\":{},\"observed_us\":",
                e.spec.metric,
                e.spec.percentile.as_str(),
                e.spec.threshold_us
            );
            match e.observed_us {
                Some(v) => {
                    let _ = write!(out, "{v}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(
                out,
                ",\"count\":{},\"burn_rate\":{:.4},\"ok\":{}",
                e.count, e.burn_rate, e.ok
            );
            if let Some((trace, value)) = e.exemplar {
                let _ = write!(
                    out,
                    ",\"exemplar\":{{\"trace\":\"{trace}\",\"value_us\":{value}}}"
                );
            }
            out.push_str("}\n");
        }
        out
    }
}

/// An ordered list of objectives.
#[derive(Debug, Clone, Default)]
pub struct SloTable {
    specs: Vec<SloSpec>,
}

impl SloTable {
    pub fn new() -> Self {
        SloTable::default()
    }

    /// Add an objective (builder style).
    pub fn objective(
        mut self,
        metric: impl Into<String>,
        percentile: Percentile,
        threshold_us: u64,
    ) -> Self {
        self.specs
            .push(SloSpec::new(metric, percentile, threshold_us));
        self
    }

    /// The rows, in declaration order.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Evaluate every objective against `registry`.
    pub fn evaluate(&self, registry: &Registry) -> SloReport {
        let evals = self
            .specs
            .iter()
            .map(|spec| {
                let snap = registry
                    .histogram_snapshot(&spec.metric)
                    .filter(|s| s.count > 0);
                match snap {
                    Some(s) => {
                        let observed = spec.percentile.pick(&s);
                        SloEval {
                            spec: spec.clone(),
                            observed_us: Some(observed),
                            count: s.count,
                            burn_rate: observed as f64 / spec.threshold_us.max(1) as f64,
                            ok: observed <= spec.threshold_us,
                            exemplar: s.exemplar,
                        }
                    }
                    None => SloEval {
                        spec: spec.clone(),
                        observed_us: None,
                        count: 0,
                        burn_rate: 0.0,
                        ok: true,
                        exemplar: None,
                    },
                }
            })
            .collect();
        SloReport { evals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_ok_violation_and_no_data() {
        let reg = Registry::new();
        let h = reg.histogram("psf.test.slo.us");
        for _ in 0..100 {
            h.record(100);
        }
        let table = SloTable::new()
            .objective("psf.test.slo.us", Percentile::P99, 1_000)
            .objective("psf.test.slo.us", Percentile::P99, 50)
            .objective("psf.test.slo.absent.us", Percentile::P50, 10);
        let report = table.evaluate(&reg);
        assert_eq!(report.evals.len(), 3);

        let ok = &report.evals[0];
        assert!(ok.ok);
        assert_eq!(ok.observed_us, Some(100));
        assert!((ok.burn_rate - 0.1).abs() < 1e-9);

        let violated = &report.evals[1];
        assert!(!violated.ok);
        assert!(violated.burn_rate > 1.0);

        let no_data = &report.evals[2];
        assert!(no_data.ok);
        assert_eq!(no_data.observed_us, None);
        assert_eq!(no_data.burn_rate, 0.0);

        assert_eq!(report.violations(), 1);
        assert!(!report.ok());

        let text = report.render_text();
        assert!(text.contains("VIOLATED"));
        assert!(text.contains("no-data"));
        assert!(text.contains("3 objective(s), 1 violation(s)"));

        let json = report.render_jsonl();
        assert_eq!(json.lines().count(), 3);
        assert!(json.contains("\"observed_us\":null"));
        assert!(json.contains("\"ok\":false"));
        assert!(json.contains("\"burn_rate\":2.0000"));
    }

    #[test]
    fn empty_table_is_vacuously_ok() {
        let reg = Registry::new();
        let report = SloTable::new().evaluate(&reg);
        assert!(report.ok());
        assert_eq!(report.violations(), 0);
    }
}
