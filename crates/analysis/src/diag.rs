//! Stable lint codes, severities, and diagnostic reports.
//!
//! Codes are append-only: a code, once published, never changes meaning.
//! CI gates on them (`psf analyze --deny warnings`), so renderings are
//! deterministic — diagnostics sort by (code, subject, message).

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not necessarily a runtime failure.
    Warning,
    /// Would (or could) produce a wrong authorization or a runtime denial.
    Error,
}

impl Severity {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The stable lint-code table (see DESIGN.md §4f).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintCode {
    /// PSF001 — a subject statically reaches a role no explicit grant
    /// intended.
    PrivilegeEscalation,
    /// PSF002 — the role→role delegation graph contains a cycle.
    DelegationCycle,
    /// PSF003 — a third-party credential whose issuer has no assignment
    /// support chain (the credential can never authorize anything).
    DanglingThirdParty,
    /// PSF004 — a credential already expired at analysis time.
    ExpiredCredential,
    /// PSF005 — a credential expiring within the horizon whose removal
    /// disconnects at least one proof (single point of failure).
    ExpiringSpof,
    /// PSF006 — a view references an unknown class, interface, or view.
    UnknownViewTarget,
    /// PSF007 — an added/customized/coherence method does not resolve
    /// (missing library body or customization of a nonexistent method).
    UnresolvedViewMethod,
    /// PSF008 — ACL subsumption monotonicity violated: a lower-privilege
    /// rule maps to a view exposing methods a higher-privilege rule's
    /// view does not.
    NonMonotoneAcl,
    /// PSF009 — a view spec no ACL rule (or deployment root) can reach.
    UnreachableView,
    /// PSF010 — an ACL rule shadowed by an earlier rule (duplicate role
    /// or unreachable after a catch-all).
    ShadowedAclRule,
    /// PSF011 — a deployment plan's step chain is malformed.
    InvalidStepChain,
    /// PSF012 — deploy-time identity issuance would fail authorization.
    DeployAuthorization,
    /// PSF013 — a channel endpoint pair would fail Switchboard mutual
    /// authorization.
    ChannelAuthorization,
    /// PSF014 — a published authorization certificate no longer replays
    /// through the independent checker (revocation, expiry, or key
    /// change since emission).
    CertificateReplay,
}

impl LintCode {
    /// The stable code string (`PSF001`…).
    pub fn code(&self) -> &'static str {
        match self {
            LintCode::PrivilegeEscalation => "PSF001",
            LintCode::DelegationCycle => "PSF002",
            LintCode::DanglingThirdParty => "PSF003",
            LintCode::ExpiredCredential => "PSF004",
            LintCode::ExpiringSpof => "PSF005",
            LintCode::UnknownViewTarget => "PSF006",
            LintCode::UnresolvedViewMethod => "PSF007",
            LintCode::NonMonotoneAcl => "PSF008",
            LintCode::UnreachableView => "PSF009",
            LintCode::ShadowedAclRule => "PSF010",
            LintCode::InvalidStepChain => "PSF011",
            LintCode::DeployAuthorization => "PSF012",
            LintCode::ChannelAuthorization => "PSF013",
            LintCode::CertificateReplay => "PSF014",
        }
    }

    /// Default severity for the code.
    pub fn severity(&self) -> Severity {
        match self {
            LintCode::PrivilegeEscalation
            | LintCode::UnknownViewTarget
            | LintCode::UnresolvedViewMethod
            | LintCode::NonMonotoneAcl
            | LintCode::InvalidStepChain
            | LintCode::DeployAuthorization
            | LintCode::ChannelAuthorization
            | LintCode::CertificateReplay => Severity::Error,
            LintCode::DelegationCycle
            | LintCode::DanglingThirdParty
            | LintCode::ExpiredCredential
            | LintCode::ExpiringSpof
            | LintCode::UnreachableView
            | LintCode::ShadowedAclRule => Severity::Warning,
        }
    }

    /// Short human title.
    pub fn title(&self) -> &'static str {
        match self {
            LintCode::PrivilegeEscalation => "privilege escalation",
            LintCode::DelegationCycle => "delegation cycle",
            LintCode::DanglingThirdParty => "dangling third-party credential",
            LintCode::ExpiredCredential => "expired credential",
            LintCode::ExpiringSpof => "expiring single point of failure",
            LintCode::UnknownViewTarget => "unknown view target",
            LintCode::UnresolvedViewMethod => "unresolved view method",
            LintCode::NonMonotoneAcl => "non-monotone ACL",
            LintCode::UnreachableView => "unreachable view",
            LintCode::ShadowedAclRule => "shadowed ACL rule",
            LintCode::InvalidStepChain => "invalid plan step chain",
            LintCode::DeployAuthorization => "deploy authorization failure",
            LintCode::ChannelAuthorization => "channel authorization failure",
            LintCode::CertificateReplay => "certificate does not replay",
        }
    }
}

/// One finding: a code plus the artifact it anchors to and a message.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable lint code.
    pub code: LintCode,
    /// The artifact the finding anchors to (credential id, view name,
    /// `step N`, …), when there is one.
    pub subject: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic anchored to an artifact.
    pub fn new(code: LintCode, subject: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            subject: Some(subject.into()),
            message: message.into(),
        }
    }

    /// Build an unanchored diagnostic.
    pub fn global(code: LintCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            subject: None,
            message: message.into(),
        }
    }
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An analysis report: the collected diagnostics of one run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in insertion order until [`sort`](Report::sort).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Append a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Merge another report's findings into this one.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Deterministic order: by code, then subject, then message.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (a.code, &a.subject, &a.message).cmp(&(b.code, &b.subject, &b.message))
        });
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.code.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics.len() - self.errors()
    }

    /// True when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether this report should fail a gate: errors always fail,
    /// warnings fail only under `deny_warnings`.
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }

    /// The distinct lint codes present, sorted.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut codes: Vec<&'static str> = self.diagnostics.iter().map(|d| d.code.code()).collect();
        codes.sort();
        codes.dedup();
        codes
    }

    /// Render for humans: one line per finding plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let sev = d.code.severity().label();
            match &d.subject {
                Some(s) => out.push_str(&format!(
                    "{sev}[{}] {} ({}): {}\n",
                    d.code.code(),
                    d.code.title(),
                    s,
                    d.message
                )),
                None => out.push_str(&format!(
                    "{sev}[{}] {}: {}\n",
                    d.code.code(),
                    d.code.title(),
                    d.message
                )),
            }
        }
        out.push_str(&format!(
            "analysis: {} error(s), {} warning(s)\n",
            self.errors(),
            self.warnings()
        ));
        out
    }

    /// Render as a JSON document (no external dependencies; the workspace
    /// formats JSON by hand throughout).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            let comma = if i + 1 < self.diagnostics.len() {
                ","
            } else {
                ""
            };
            let subject = match &d.subject {
                Some(s) => format!("\"{}\"", json_escape(s)),
                None => "null".into(),
            };
            out.push_str(&format!(
                "    {{\"code\": \"{}\", \"severity\": \"{}\", \"title\": \"{}\", \"subject\": {subject}, \"message\": \"{}\"}}{comma}\n",
                d.code.code(),
                d.code.severity().label(),
                json_escape(d.code.title()),
                json_escape(&d.message)
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"errors\": {},\n  \"warnings\": {}\n}}\n",
            self.errors(),
            self.warnings()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            LintCode::PrivilegeEscalation,
            LintCode::DelegationCycle,
            LintCode::DanglingThirdParty,
            LintCode::ExpiredCredential,
            LintCode::ExpiringSpof,
            LintCode::UnknownViewTarget,
            LintCode::UnresolvedViewMethod,
            LintCode::NonMonotoneAcl,
            LintCode::UnreachableView,
            LintCode::ShadowedAclRule,
            LintCode::InvalidStepChain,
            LintCode::DeployAuthorization,
            LintCode::ChannelAuthorization,
            LintCode::CertificateReplay,
        ];
        let mut codes: Vec<&str> = all.iter().map(|c| c.code()).collect();
        codes.sort();
        let mut deduped = codes.clone();
        deduped.dedup();
        assert_eq!(codes, deduped);
        assert_eq!(codes[0], "PSF001");
        assert_eq!(codes[12], "PSF013");
        assert_eq!(codes[13], "PSF014");
    }

    #[test]
    fn report_gate_semantics() {
        let mut r = Report::new();
        assert!(!r.fails(true));
        r.push(Diagnostic::global(LintCode::DelegationCycle, "cycle"));
        assert!(!r.fails(false));
        assert!(r.fails(true));
        r.push(Diagnostic::new(LintCode::PrivilegeEscalation, "Alice", "x"));
        assert!(r.fails(false));
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
    }

    #[test]
    fn json_escapes_and_sorts() {
        let mut r = Report::new();
        r.push(Diagnostic::new(LintCode::UnreachableView, "V2", "b\"quote"));
        r.push(Diagnostic::new(
            LintCode::DelegationCycle,
            "A",
            "line\nbreak",
        ));
        r.sort();
        assert_eq!(r.diagnostics[0].code, LintCode::DelegationCycle);
        let json = r.render_json();
        assert!(json.contains("b\\\"quote"));
        assert!(json.contains("line\\nbreak"));
    }
}
