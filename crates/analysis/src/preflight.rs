//! Pass 3: deployment-plan pre-flight (PSF011–PSF013).
//!
//! Thin adapter over [`psf_core::preflight`]: the core crate simulates a
//! plan against the deployer's world (step chain, artifacts, CPU,
//! channel/deploy authorization) without acquiring anything; this module
//! maps each violation onto a stable lint code so plan problems surface
//! through the same gate as policy problems.

use crate::diag::{Diagnostic, LintCode, Report};
use psf_core::preflight::{PreflightViolation, PreflightViolationKind};
use psf_core::{Deployer, Goal, Plan, Registrar};

/// Map a core pre-flight violation onto its lint code.
pub fn violation_code(kind: PreflightViolationKind) -> LintCode {
    match kind {
        PreflightViolationKind::InvalidStepChain => LintCode::InvalidStepChain,
        PreflightViolationKind::DeployAuthorization => LintCode::DeployAuthorization,
        PreflightViolationKind::ChannelAuthorization => LintCode::ChannelAuthorization,
    }
}

/// Convert core pre-flight violations into diagnostics.
pub fn violations_to_diagnostics(violations: &[PreflightViolation], report: &mut Report) {
    for v in violations {
        let code = violation_code(v.kind);
        match v.step {
            Some(step) => report.push(Diagnostic::new(
                code,
                format!("step {step}"),
                v.message.clone(),
            )),
            None => report.push(Diagnostic::global(code, v.message.clone())),
        }
    }
}

/// Run the deployer's static pre-flight over `plan` and append the
/// findings to `report`.
pub fn analyze_plan(
    deployer: &Deployer,
    registrar: &Registrar,
    plan: &Plan,
    goal: &Goal,
    report: &mut Report,
) {
    let violations = deployer.preflight(registrar, plan, goal);
    violations_to_diagnostics(&violations, report);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_to_stable_codes() {
        assert_eq!(
            violation_code(PreflightViolationKind::InvalidStepChain).code(),
            "PSF011"
        );
        assert_eq!(
            violation_code(PreflightViolationKind::DeployAuthorization).code(),
            "PSF012"
        );
        assert_eq!(
            violation_code(PreflightViolationKind::ChannelAuthorization).code(),
            "PSF013"
        );
    }

    #[test]
    fn violations_carry_step_anchors() {
        let violations = vec![
            PreflightViolation {
                kind: PreflightViolationKind::InvalidStepChain,
                step: Some(2),
                message: "move before any endpoint".into(),
            },
            PreflightViolation {
                kind: PreflightViolationKind::ChannelAuthorization,
                step: None,
                message: "guard cannot prove its own Component role".into(),
            },
        ];
        let mut report = Report::new();
        violations_to_diagnostics(&violations, &mut report);
        assert_eq!(report.diagnostics.len(), 2);
        assert_eq!(report.diagnostics[0].subject.as_deref(), Some("step 2"));
        assert!(report.diagnostics[1].subject.is_none());
        assert_eq!(report.errors(), 2);
    }
}
