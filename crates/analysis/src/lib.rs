//! # psf-analysis
//!
//! Static policy analyzer for the PSF stack. Three passes over a
//! deployment's *policy artifacts* — run before anything executes:
//!
//! 1. **Delegation-graph analysis** ([`graph`], PSF001–PSF005): computes
//!    the role-reachability closure of a credential repository snapshot
//!    (mirroring `ProofEngine::prove_search` edge for edge) and reports
//!    privilege escalations against an intent matrix, role-mapping
//!    cycles, dangling third-party credentials, expired credentials, and
//!    expiring single points of failure.
//! 2. **View/ACL lint** ([`viewlint`], PSF006–PSF010): view specs must
//!    represent real classes, restrict real interfaces, and resolve
//!    every method; role→view ACLs must be subsumption-monotone,
//!    shadow-free, and leave no view unreachable.
//! 3. **Plan pre-flight** ([`preflight`], PSF011–PSF013): adapts
//!    `psf_core::preflight` violations (step chain, CPU, deploy/channel
//!    authorization) onto stable lint codes.
//! 4. **Certificate replay** ([`certlint`], PSF014): every published
//!    authorization certificate must still replay through the independent
//!    `psf-cert` checker against the world's current registry, revocation
//!    and epoch state.
//!
//! Diagnostics carry stable codes (`PSF001`…) and severities and render
//! as human text or JSON ([`diag`]); `psf analyze` exposes them on the
//! command line and CI gates on `--deny warnings`. Scenario fixtures for
//! the defect corpus load from XML ([`fixtures`]).
//!
//! ## Soundness
//!
//! The closure walk reuses the engine's own candidate enumeration and
//! validity checks, so graph findings are *faithful*: every closure pair
//! is live-provable and vice versa (held in place by a differential
//! property test). PSF001 is only as good as the supplied intent matrix
//! — with no intent the pass is skipped, not silently approximated. ACL
//! monotonicity assumes rule order encodes privilege order (the runtime
//! picks the first matching rule), and exposed-method comparison ignores
//! constructor and coherence-protocol methods, which every generated
//! view carries by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certlint;
pub mod diag;
pub mod fixtures;
pub mod graph;
pub mod preflight;
pub mod viewlint;

pub use certlint::{analyze_certificates, CertLintInput};
pub use diag::{Diagnostic, LintCode, Report, Severity};
pub use fixtures::FixtureWorld;
pub use graph::{analyze_graph, closure, GraphInput};
pub use preflight::{analyze_plan, violation_code, violations_to_diagnostics};
pub use viewlint::{analyze_views, ViewLintInput};

/// Record one analysis run in the metrics registry
/// (`psf.analysis.runs`, `psf.analysis.diagnostics`,
/// `psf.analysis.escalations`) and return the report sorted.
///
/// Call once per `Report` produced, after all passes have merged into
/// it — the CLI and tests both route through here so `psf metrics`
/// reflects analyzer activity.
pub fn record_run(mut report: Report) -> Report {
    report.sort();
    psf_telemetry::counter!("psf.analysis.runs").inc();
    psf_telemetry::counter!("psf.analysis.diagnostics").add(report.diagnostics.len() as u64);
    let escalations = report
        .diagnostics
        .iter()
        .filter(|d| d.code == LintCode::PrivilegeEscalation)
        .count();
    psf_telemetry::counter!("psf.analysis.escalations").add(escalations as u64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_run_sorts_and_counts() {
        let mut report = Report::new();
        report.push(Diagnostic::new(LintCode::UnreachableView, "V", "unused"));
        report.push(Diagnostic::new(LintCode::PrivilegeEscalation, "A", "bad"));
        let before_runs = psf_telemetry::registry().counter_value("psf.analysis.runs");
        let report = record_run(report);
        assert_eq!(report.diagnostics[0].code, LintCode::PrivilegeEscalation);
        assert_eq!(
            psf_telemetry::registry().counter_value("psf.analysis.runs"),
            before_runs + 1
        );
        assert!(psf_telemetry::registry().counter_value("psf.analysis.escalations") >= 1);
    }
}
