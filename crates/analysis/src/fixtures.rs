//! Declarative analysis fixtures: a small XML scenario format that
//! builds a delegation world, optional view specs, classes, and an ACL
//! so defect cases can live as data under `tests/fixtures/analysis/`
//! instead of as hand-written setup code.
//!
//! ```xml
//! <Scenario name="escalating-delegation">
//!   <Entities>
//!     <Entity name="Comp.NY"/>
//!   </Entities>
//!   <Delegations>
//!     <Delegation subject-entity="Alice" role="Comp.NY.Member" issuer="Comp.NY"/>
//!     <Delegation subject-role="Comp.SD.Member" role="Comp.NY.Member" issuer="Comp.NY"/>
//!     <Delegation subject-entity="Comp.SD" role="Comp.NY.Partner" issuer="Comp.NY"
//!                 kind="assignment" expires="500"/>
//!   </Delegations>
//!   <Intent>
//!     <Grant subject="Alice" role="Comp.NY.Member"/>
//!   </Intent>
//!   <Classes>
//!     <Class name="KvStore">
//!       <Interface name="IKvRead" methods="get(k)"/>
//!     </Class>
//!   </Classes>
//!   <View name="KvRead">
//!     <Represents name="KvStore"/>
//!     <Restricts>
//!       <Interface name="IKvRead" type="local"/>
//!     </Restricts>
//!   </View>
//!   <Acl>
//!     <Rule role="Comp.NY.Member" view="KvRead"/>
//!     <Rule view="KvRead"/>
//!   </Acl>
//!   <Certificates>
//!     <Certificate subject="Alice" role="Comp.NY.Member"/>
//!   </Certificates>
//!   <Revocations>
//!     <Revoke delegation="0"/>
//!   </Revocations>
//! </Scenario>
//! ```
//!
//! `<Certificates>` emits an authorization certificate per entry (via
//! `prove_certified` at time 0, before any `<Revocations>` apply);
//! `<Revoke delegation="N">` then revokes the N-th `<Delegation>` by
//! index. The PSF014 pass replays the published certificates through the
//! independent checker against the post-revocation world.
//!
//! Entity keys are deterministic (`Entity::with_seed` with a fixed
//! fixture seed), so fixture diagnostics are snapshot-stable. Every
//! entity named anywhere (issuer, subject, role owner, intent subject)
//! is registered automatically; `<Entities>` is only needed for
//! entities that appear nowhere else. Delegation `kind` defaults to the
//! builder's choice (self-certifying when the issuer owns the role,
//! third-party otherwise); `kind="assignment"` grants the right of
//! assignment. Class methods get trivial bodies — the analyzer only
//! inspects structure.

use crate::certlint::{analyze_certificates, CertLintInput};
use crate::diag::Report;
use crate::graph::{analyze_graph, GraphInput};
use crate::viewlint::{analyze_views, ViewLintInput};
use psf_cert::AuthCertificate;
use psf_drbac::{
    CredentialSource, DelegationBuilder, Entity, EntityRegistry, ProofEngine, Repository,
    RevocationBus, RoleName, Subject,
};
use psf_views::acl::ViewAcl;
use psf_views::component::ComponentClass;
use psf_views::library::MethodLibrary;
use psf_views::spec::ViewSpec;
use psf_xml::Element;
use std::collections::HashMap;
use std::sync::Arc;

/// Seed mixed into every fixture entity's key material.
const FIXTURE_SEED: &[u8] = b"psf-analysis-fixture";

/// A fully built fixture scenario, ready to analyze.
pub struct FixtureWorld {
    /// Scenario name (from the `<Scenario name=…>` attribute).
    pub name: String,
    /// PKI directory with every fixture entity registered.
    pub registry: EntityRegistry,
    /// Credential repository holding the scenario's delegations.
    pub repository: Repository,
    /// Revocation bus (nothing revoked by the loader).
    pub bus: RevocationBus,
    /// Intended grants, when the scenario declares an `<Intent>` block.
    pub intent: Option<Vec<(Subject, RoleName)>>,
    /// Component classes declared by `<Classes>`.
    pub classes: HashMap<String, Arc<ComponentClass>>,
    /// View specs declared by `<View>` elements.
    pub views: Vec<ViewSpec>,
    /// Method library (fixture bodies registered via `<Library>` names).
    pub library: MethodLibrary,
    /// The role→view ACL, when declared.
    pub acl: Option<ViewAcl>,
    /// Certificates the scenario published (`<Certificates>`), emitted at
    /// time 0 from the pre-revocation world.
    pub certificates: Vec<Arc<AuthCertificate>>,
}

impl FixtureWorld {
    /// Parse a scenario document and build its world.
    pub fn parse(xml: &str) -> Result<FixtureWorld, String> {
        let root = psf_xml::parse(xml).map_err(|e| format!("fixture XML: {e}"))?;
        FixtureWorld::from_element(&root)
    }

    /// Build from a parsed `<Scenario>` element.
    pub fn from_element(root: &Element) -> Result<FixtureWorld, String> {
        if root.name != "Scenario" {
            return Err(format!("expected <Scenario>, found <{}>", root.name));
        }
        let name = root.get_attr("name").unwrap_or("unnamed").to_string();
        let registry = EntityRegistry::new();
        let repository = Repository::new();
        let bus = RevocationBus::new();
        let mut entities: HashMap<String, Entity> = HashMap::new();

        fn intern<'a>(
            entities: &'a mut HashMap<String, Entity>,
            registry: &EntityRegistry,
            name: &str,
        ) -> &'a Entity {
            entities.entry(name.to_string()).or_insert_with(|| {
                let e = Entity::with_seed(name, FIXTURE_SEED);
                registry.register(&e);
                e
            })
        }

        if let Some(decls) = root.find("Entities") {
            for e in decls.find_all("Entity") {
                let n = e
                    .get_attr("name")
                    .ok_or("<Entity> requires a name attribute")?;
                intern(&mut entities, &registry, n);
            }
        }

        let mut delegation_ids: Vec<String> = Vec::new();
        if let Some(dels) = root.find("Delegations") {
            for (i, d) in dels.find_all("Delegation").enumerate() {
                let role_str = d
                    .get_attr("role")
                    .ok_or_else(|| format!("delegation {i}: missing role attribute"))?;
                let role = RoleName::parse(role_str).map_err(|e| format!("delegation {i}: {e}"))?;
                intern(&mut entities, &registry, &role.owner.0);
                let issuer_name = d
                    .get_attr("issuer")
                    .ok_or_else(|| format!("delegation {i}: missing issuer attribute"))?
                    .to_string();
                intern(&mut entities, &registry, &issuer_name);
                let issuer = entities.get(&issuer_name).expect("interned").clone();
                let mut builder = DelegationBuilder::new(&issuer);
                match (d.get_attr("subject-entity"), d.get_attr("subject-role")) {
                    (Some(en), None) => {
                        let subject = intern(&mut entities, &registry, en).clone();
                        builder = builder.subject_entity(&subject);
                    }
                    (None, Some(rn)) => {
                        let sub_role =
                            RoleName::parse(rn).map_err(|e| format!("delegation {i}: {e}"))?;
                        intern(&mut entities, &registry, &sub_role.owner.0);
                        builder = builder.subject_role(sub_role);
                    }
                    _ => {
                        return Err(format!(
                            "delegation {i}: exactly one of subject-entity / subject-role required"
                        ))
                    }
                }
                if let Some(kind) = d.get_attr("kind") {
                    match kind {
                        "assignment" => builder = builder.assignment(),
                        "auto" => {}
                        other => return Err(format!("delegation {i}: unknown kind '{other}'")),
                    }
                }
                builder = builder.role(role).serial(i as u64);
                if let Some(exp) = d.get_attr("expires") {
                    let exp: u64 = exp
                        .parse()
                        .map_err(|_| format!("delegation {i}: bad expires '{exp}'"))?;
                    builder = builder.expires(exp);
                }
                let signed = builder.sign();
                delegation_ids.push(signed.id());
                repository.publish_at_issuer(signed);
            }
        }

        let intent = match root.find("Intent") {
            Some(block) => {
                let mut grants = Vec::new();
                for (i, g) in block.find_all("Grant").enumerate() {
                    let subject_name = g
                        .get_attr("subject")
                        .ok_or_else(|| format!("grant {i}: missing subject attribute"))?;
                    let role_str = g
                        .get_attr("role")
                        .ok_or_else(|| format!("grant {i}: missing role attribute"))?;
                    let role = RoleName::parse(role_str).map_err(|e| format!("grant {i}: {e}"))?;
                    let subject = intern(&mut entities, &registry, subject_name).as_subject();
                    grants.push((subject, role));
                }
                Some(grants)
            }
            None => None,
        };

        let mut classes: HashMap<String, Arc<ComponentClass>> = HashMap::new();
        if let Some(block) = root.find("Classes") {
            for c in block.find_all("Class") {
                let class_name = c
                    .get_attr("name")
                    .ok_or("<Class> requires a name attribute")?;
                let mut builder = ComponentClass::builder(class_name);
                for iface in c.find_all("Interface") {
                    let iface_name = iface
                        .get_attr("name")
                        .ok_or("<Interface> requires a name attribute")?;
                    let methods: Vec<String> = iface
                        .get_attr("methods")
                        .unwrap_or("")
                        .split(',')
                        .map(str::trim)
                        .filter(|m| !m.is_empty())
                        .map(str::to_string)
                        .collect();
                    for m in &methods {
                        builder =
                            builder.method(m.clone(), m.clone(), &[], false, |_, _| Ok(Vec::new()));
                    }
                    builder = builder.interface(iface_name, methods);
                }
                classes.insert(class_name.to_string(), builder.build()?);
            }
        }

        let mut library = MethodLibrary::new();
        if let Some(block) = root.find("Library") {
            for b in block.find_all("Body") {
                let body_name = b
                    .get_attr("name")
                    .ok_or("<Body> requires a name attribute")?;
                library.register(body_name, |_, _| Ok(Vec::new()));
            }
        }

        let mut views = Vec::new();
        for v in root.find_all("View") {
            views.push(ViewSpec::from_element(v)?);
        }

        let acl = match root.find("Acl") {
            Some(block) => {
                let mut acl = ViewAcl::new();
                for (i, r) in block.find_all("Rule").enumerate() {
                    let view = r
                        .get_attr("view")
                        .ok_or_else(|| format!("acl rule {i}: missing view attribute"))?;
                    match r.get_attr("role") {
                        Some(role_str) => {
                            let role = RoleName::parse(role_str)
                                .map_err(|e| format!("acl rule {i}: {e}"))?;
                            intern(&mut entities, &registry, &role.owner.0);
                            acl = acl.rule(role, view);
                        }
                        None => acl = acl.others(view),
                    }
                }
                Some(acl)
            }
            None => None,
        };

        // Certificates are emitted *before* revocations apply: the
        // scenario models a world that published evidence and then moved
        // on, which is exactly what PSF014 exists to catch.
        let mut certificates = Vec::new();
        if let Some(block) = root.find("Certificates") {
            let engine = ProofEngine::new(&registry, &repository, &bus, 0);
            for (i, c) in block.find_all("Certificate").enumerate() {
                let subject_name = c
                    .get_attr("subject")
                    .ok_or_else(|| format!("certificate {i}: missing subject attribute"))?;
                let role_str = c
                    .get_attr("role")
                    .ok_or_else(|| format!("certificate {i}: missing role attribute"))?;
                let role =
                    RoleName::parse(role_str).map_err(|e| format!("certificate {i}: {e}"))?;
                let subject = intern(&mut entities, &registry, subject_name).as_subject();
                let (_, cert, _) = engine
                    .prove_certified(&subject, &role, &[])
                    .map_err(|e| format!("certificate {i}: cannot emit: {e}"))?;
                certificates.push(cert);
            }
        }

        if let Some(block) = root.find("Revocations") {
            for (i, r) in block.find_all("Revoke").enumerate() {
                let idx: usize = r
                    .get_attr("delegation")
                    .ok_or_else(|| format!("revocation {i}: missing delegation attribute"))?
                    .parse()
                    .map_err(|_| format!("revocation {i}: bad delegation index"))?;
                let id = delegation_ids
                    .get(idx)
                    .ok_or_else(|| format!("revocation {i}: no delegation {idx}"))?;
                bus.revoke(id);
            }
        }

        Ok(FixtureWorld {
            name,
            registry,
            repository,
            bus,
            intent,
            classes,
            views,
            library,
            acl,
            certificates,
        })
    }

    /// Run the graph and view/ACL passes over this fixture and return
    /// the sorted report. (Plan pre-flight needs a live deployer and is
    /// exercised separately.)
    pub fn analyze(&self, now: u64, expiry_horizon: u64) -> Report {
        let mut report = Report::new();
        analyze_graph(
            &GraphInput {
                registry: &self.registry,
                repository: &self.repository,
                bus: &self.bus,
                now,
                intent: self.intent.as_deref(),
                expiry_horizon,
            },
            &mut report,
        );
        if !self.views.is_empty() || self.acl.is_some() {
            analyze_views(
                &ViewLintInput {
                    classes: &self.classes,
                    views: &self.views,
                    library: &self.library,
                    acl: self.acl.as_ref(),
                    extra_roots: &[],
                },
                &mut report,
            );
        }
        if !self.certificates.is_empty() {
            analyze_certificates(
                &CertLintInput {
                    registry: &self.registry,
                    bus: &self.bus,
                    now,
                    repo_epoch: self.repository.version(),
                    certificates: &self.certificates,
                },
                &mut report,
            );
        }
        report.sort();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_scenario_builds_and_is_clean() {
        let world = FixtureWorld::parse(
            r#"<Scenario name="mini">
                 <Delegations>
                   <Delegation subject-entity="Alice" role="Org.Member" issuer="Org"/>
                 </Delegations>
                 <Intent>
                   <Grant subject="Alice" role="Org.Member"/>
                 </Intent>
               </Scenario>"#,
        )
        .expect("parse");
        assert_eq!(world.name, "mini");
        let report = world.analyze(0, 0);
        assert!(report.is_clean(), "{}", report.render_human());
    }

    #[test]
    fn missing_intent_skips_escalation() {
        let world = FixtureWorld::parse(
            r#"<Scenario name="no-intent">
                 <Delegations>
                   <Delegation subject-entity="Alice" role="Org.Member" issuer="Org"/>
                 </Delegations>
               </Scenario>"#,
        )
        .expect("parse");
        assert!(world.analyze(0, 0).is_clean());
    }

    #[test]
    fn malformed_scenarios_error() {
        assert!(FixtureWorld::parse("<Other/>").is_err());
        assert!(FixtureWorld::parse(
            r#"<Scenario name="x">
                 <Delegations><Delegation role="Org.Member" issuer="Org"/></Delegations>
               </Scenario>"#
        )
        .is_err());
        assert!(FixtureWorld::parse(
            r#"<Scenario name="x">
                 <Delegations>
                   <Delegation subject-entity="A" role="NotARole" issuer="Org"/>
                 </Delegations>
               </Scenario>"#
        )
        .is_err());
    }
}
