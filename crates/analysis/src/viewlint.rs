//! Pass 2: view-spec and role→view ACL lint (PSF006–PSF010).
//!
//! Checks that every view specification is *implementable* — it
//! represents a known class, restricts interfaces that class actually
//! implements, and every added/customized method resolves (a library
//! body exists for its `body_ref`; a customized method overrides a
//! method the class really has) — and that the role→view ACL is
//! *coherent*: rules are ordered highest privilege first, each
//! successive view's exposed method set must be a subset of the one
//! before it (**subsumption monotonicity** — otherwise a *lower*
//! privilege role would see methods a higher one cannot), every view is
//! reachable from some ACL rule or deployment root, and no rule is
//! shadowed by an earlier duplicate or catch-all.

use crate::diag::{Diagnostic, LintCode, Report};
use psf_views::acl::ViewAcl;
use psf_views::component::ComponentClass;
use psf_views::library::MethodLibrary;
use psf_views::spec::ViewSpec;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Inputs to the view/ACL lint pass.
pub struct ViewLintInput<'a> {
    /// Component classes by name (what views may represent).
    pub classes: &'a HashMap<String, Arc<ComponentClass>>,
    /// All view specifications under analysis.
    pub views: &'a [ViewSpec],
    /// The method library the VIG would draw bodies from.
    pub library: &'a MethodLibrary,
    /// The role→view ACL, if one governs these views. Ordered highest
    /// privilege first (first match wins at runtime).
    pub acl: Option<&'a ViewAcl>,
    /// View names reachable outside the ACL (e.g. deployed directly by
    /// a plan); exempt from PSF009.
    pub extra_roots: &'a [String],
}

/// Run the view/ACL lint pass, appending findings to `report`.
pub fn analyze_views(input: &ViewLintInput<'_>, report: &mut Report) {
    let spec_by_name: HashMap<&str, &ViewSpec> =
        input.views.iter().map(|v| (v.name.as_str(), v)).collect();

    // Per-view structural checks: PSF006 (unknown targets) and PSF007
    // (unresolved methods).
    for view in input.views {
        let class = match input.classes.get(&view.represents) {
            Some(c) => Some(c.as_ref()),
            None => {
                report.push(Diagnostic::new(
                    LintCode::UnknownViewTarget,
                    view.name.clone(),
                    format!("represents unknown component class '{}'", view.represents),
                ));
                None
            }
        };
        if let Some(class) = class {
            for restriction in &view.restricts {
                if class.resolve_interface(&restriction.name).is_none() {
                    report.push(Diagnostic::new(
                        LintCode::UnknownViewTarget,
                        view.name.clone(),
                        format!(
                            "restricts interface '{}' which class '{}' does not implement",
                            restriction.name, class.name
                        ),
                    ));
                }
            }
            for method in &view.customizes_methods {
                let name = method.method_name();
                if class.resolve_method(&name).is_none() {
                    report.push(Diagnostic::new(
                        LintCode::UnresolvedViewMethod,
                        view.name.clone(),
                        format!(
                            "customizes '{name}' but class '{}' has no such method",
                            class.name
                        ),
                    ));
                }
            }
        }
        for method in view.adds_methods.iter().chain(&view.customizes_methods) {
            if input.library.get(&method.body_ref).is_none() {
                report.push(Diagnostic::new(
                    LintCode::UnresolvedViewMethod,
                    view.name.clone(),
                    format!(
                        "method '{}' names library body '{}' which is not registered",
                        method.method_name(),
                        method.body_ref
                    ),
                ));
            }
        }
    }

    let Some(acl) = input.acl else {
        return;
    };

    // ACL rules must point at known views (PSF006).
    for (i, (role, view_name)) in acl.rules().iter().enumerate() {
        if !spec_by_name.contains_key(view_name.as_str()) {
            report.push(Diagnostic::new(
                LintCode::UnknownViewTarget,
                format!("acl rule {i}"),
                format!(
                    "{} maps to view '{view_name}' but no such view spec exists",
                    render_role(role)
                ),
            ));
        }
    }

    // PSF008 — subsumption monotonicity. Rules are ordered highest
    // privilege first; for i < j the lower rule's view must expose a
    // subset of the higher rule's.
    let exposed: Vec<Option<BTreeSet<String>>> = acl
        .rules()
        .iter()
        .map(|(_, view_name)| {
            let spec = spec_by_name.get(view_name.as_str())?;
            let class = input.classes.get(&spec.represents)?;
            spec.exposed_method_names(class).ok()
        })
        .collect();
    for j in 1..acl.rules().len() {
        let Some(lower) = &exposed[j] else { continue };
        for (i, higher) in exposed.iter().enumerate().take(j) {
            let Some(higher) = higher else { continue };
            let extra: Vec<&String> = lower.difference(higher).collect();
            if !extra.is_empty() {
                let extras: Vec<String> = extra.iter().map(|s| s.to_string()).collect();
                report.push(Diagnostic::new(
                    LintCode::NonMonotoneAcl,
                    format!("acl rule {j}"),
                    format!(
                        "view '{}' ({}) exposes methods the higher-privilege view '{}' ({}) \
                         does not: {}",
                        acl.rules()[j].1,
                        render_role(&acl.rules()[j].0),
                        acl.rules()[i].1,
                        render_role(&acl.rules()[i].0),
                        extras.join(", ")
                    ),
                ));
            }
        }
    }

    // PSF009 — views no ACL rule or root reaches.
    for view in input.views {
        let in_acl = acl.rules().iter().any(|(_, v)| v == &view.name);
        let is_root = input.extra_roots.iter().any(|r| r == &view.name);
        if !in_acl && !is_root {
            report.push(Diagnostic::new(
                LintCode::UnreachableView,
                view.name.clone(),
                "no ACL rule or deployment root selects this view; it can never be served",
            ));
        }
    }

    // PSF010 — shadowed rules: a duplicate role match, or any rule after
    // a catch-all (first match wins, so later rules are dead).
    let mut catch_all_at: Option<usize> = None;
    let mut seen_roles: HashMap<String, usize> = HashMap::new();
    for (i, (role, view_name)) in acl.rules().iter().enumerate() {
        if let Some(ca) = catch_all_at {
            report.push(Diagnostic::new(
                LintCode::ShadowedAclRule,
                format!("acl rule {i}"),
                format!(
                    "rule ({} → '{view_name}') is unreachable: rule {ca} is a catch-all",
                    render_role(role)
                ),
            ));
            continue;
        }
        match role {
            None => catch_all_at = Some(i),
            Some(r) => {
                if let Some(&first) = seen_roles.get(&r.to_string()) {
                    report.push(Diagnostic::new(
                        LintCode::ShadowedAclRule,
                        format!("acl rule {i}"),
                        format!("duplicate rule for role '{r}': rule {first} already matches it"),
                    ));
                } else {
                    seen_roles.insert(r.to_string(), i);
                }
            }
        }
    }
}

fn render_role(role: &Option<psf_drbac::RoleName>) -> String {
    match role {
        Some(r) => format!("role '{r}'"),
        None => "catch-all".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psf_drbac::Entity;
    use psf_views::spec::ExposureType;

    fn kv_class() -> Arc<ComponentClass> {
        ComponentClass::builder("KvStore")
            .interface("IKvAdmin", ["get(k)", "put(k,v)", "purge()"])
            .interface("IKvRead", ["get(k)"])
            .method("get(k)", "get(k)", &[], false, |_, _| Ok(vec![]))
            .method("put(k,v)", "put(k,v)", &[], true, |_, _| Ok(vec![]))
            .method("purge()", "purge()", &[], true, |_, _| Ok(vec![]))
            .build()
            .expect("class")
    }

    fn setup() -> (HashMap<String, Arc<ComponentClass>>, MethodLibrary) {
        let mut classes = HashMap::new();
        classes.insert("KvStore".to_string(), kv_class());
        let mut library = MethodLibrary::new();
        library.register("audit_body", |_, _| Ok(vec![]));
        (classes, library)
    }

    #[test]
    fn clean_views_and_acl_pass() {
        let (classes, library) = setup();
        let admin = ViewSpec::new("KvAdmin", "KvStore").restrict("IKvAdmin", ExposureType::Local);
        let read = ViewSpec::new("KvRead", "KvStore").restrict("IKvRead", ExposureType::Local);
        let org = Entity::with_seed("Org", b"vl");
        let acl = ViewAcl::new()
            .rule(org.role("Admin"), "KvAdmin")
            .others("KvRead");
        let views = vec![admin, read];
        let mut report = Report::new();
        analyze_views(
            &ViewLintInput {
                classes: &classes,
                views: &views,
                library: &library,
                acl: Some(&acl),
                extra_roots: &[],
            },
            &mut report,
        );
        assert!(report.is_clean(), "{}", report.render_human());
    }

    #[test]
    fn unknown_targets_and_methods_flagged() {
        let (classes, library) = setup();
        let views = vec![
            ViewSpec::new("Ghost", "NoSuchClass"),
            ViewSpec::new("BadIface", "KvStore").restrict("INope", ExposureType::Local),
            ViewSpec::new("BadCustomize", "KvStore")
                .restrict("IKvRead", ExposureType::Local)
                .customize_method("vanish()", "audit_body"),
            ViewSpec::new("BadBody", "KvStore")
                .restrict("IKvRead", ExposureType::Local)
                .add_method("extra()", "no_such_body"),
        ];
        let mut report = Report::new();
        analyze_views(
            &ViewLintInput {
                classes: &classes,
                views: &views,
                library: &library,
                acl: None,
                extra_roots: &[],
            },
            &mut report,
        );
        let codes = report.codes();
        assert!(codes.contains(&"PSF006"));
        assert!(codes.contains(&"PSF007"));
        // Two PSF006 (unknown class, unknown interface), two PSF007.
        assert_eq!(report.diagnostics.len(), 4, "{}", report.render_human());
    }

    #[test]
    fn non_monotone_acl_flagged() {
        let (classes, library) = setup();
        let admin = ViewSpec::new("KvAdmin", "KvStore").restrict("IKvAdmin", ExposureType::Local);
        let read = ViewSpec::new("KvRead", "KvStore").restrict("IKvRead", ExposureType::Local);
        let org = Entity::with_seed("Org", b"vl");
        // Low-privilege catch-all gets the *wider* view: monotonicity broken.
        let acl = ViewAcl::new()
            .rule(org.role("Reader"), "KvRead")
            .others("KvAdmin");
        let views = vec![admin, read];
        let mut report = Report::new();
        analyze_views(
            &ViewLintInput {
                classes: &classes,
                views: &views,
                library: &library,
                acl: Some(&acl),
                extra_roots: &[],
            },
            &mut report,
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::NonMonotoneAcl)
            .expect("non-monotone finding");
        assert!(d.message.contains("purge()"), "{}", d.message);
    }

    #[test]
    fn unreachable_and_shadowed_flagged_with_roots_exempt() {
        let (classes, library) = setup();
        let admin = ViewSpec::new("KvAdmin", "KvStore").restrict("IKvAdmin", ExposureType::Local);
        let read = ViewSpec::new("KvRead", "KvStore").restrict("IKvRead", ExposureType::Local);
        let rooted = ViewSpec::new("KvRoot", "KvStore").restrict("IKvRead", ExposureType::Local);
        let org = Entity::with_seed("Org", b"vl");
        let acl = ViewAcl::new()
            .rule(org.role("Admin"), "KvAdmin")
            .rule(org.role("Admin"), "KvAdmin")
            .others("KvAdmin")
            .others("KvAdmin");
        let views = vec![admin, read, rooted];
        let mut report = Report::new();
        analyze_views(
            &ViewLintInput {
                classes: &classes,
                views: &views,
                library: &library,
                acl: Some(&acl),
                extra_roots: &["KvRoot".to_string()],
            },
            &mut report,
        );
        let unreachable: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::UnreachableView)
            .collect();
        assert_eq!(unreachable.len(), 1);
        assert_eq!(unreachable[0].subject.as_deref(), Some("KvRead"));
        let shadowed = report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::ShadowedAclRule)
            .count();
        // rule 1 duplicates rule 0; rule 3 follows the catch-all at 2.
        assert_eq!(shadowed, 2, "{}", report.render_human());
    }
}
