//! Pass 1: delegation-graph analysis (PSF001–PSF005).
//!
//! The analyzer computes the **role-reachability closure** of a
//! repository snapshot: for every entity that appears as a credential
//! subject, the set of roles it can prove, with attributes attenuated
//! along each path. The walk deliberately mirrors
//! `ProofEngine::prove_search` edge for edge — same candidate source
//! (`credentials_by_subject`), same validity checks (registry lookup,
//! signature/structure/expiry verification, revocation), same
//! authorization rule for third-party edges (an assignment chain back to
//! the role owner), and same attribute attenuation — so a pair in the
//! closure is a pair the runtime engine will prove, and vice versa (the
//! differential property test in `tests/property_suite.rs` holds the two
//! implementations together).
//!
//! On top of the closure the pass reports:
//! * **PSF001** privilege escalation — a closure pair absent from the
//!   administrator's intent matrix (skipped when no intent is supplied);
//! * **PSF002** delegation cycles — strongly-connected role→role mapping
//!   edges;
//! * **PSF003** dangling third-party credentials — membership or
//!   assignment credentials whose issuer has no assignment support chain;
//! * **PSF004** expired credentials;
//! * **PSF005** expiring single points of failure — credentials expiring
//!   within a horizon whose removal disconnects at least one proof.

use crate::diag::{Diagnostic, LintCode, Report};
use psf_drbac::repository::subject_key;
use psf_drbac::{
    AttrSet, CredentialSource, DelegationKind, EntityRegistry, Repository, RevocationBus, RoleName,
    SignedDelegation, Subject, Timestamp,
};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Inputs to the delegation-graph pass.
pub struct GraphInput<'a> {
    /// The PKI directory the proof engine would consult.
    pub registry: &'a EntityRegistry,
    /// The credential repository under analysis.
    pub repository: &'a Repository,
    /// The revocation bus (revoked credentials are dead edges).
    pub bus: &'a RevocationBus,
    /// Analysis time (expiry evaluation).
    pub now: Timestamp,
    /// The intended grants: every (subject, role) pair an administrator
    /// meant to establish. `None` disables PSF001 (see the soundness
    /// caveat in DESIGN.md §4f — without intent, escalation is
    /// undecidable).
    pub intent: Option<&'a [(Subject, RoleName)]>,
    /// PSF005 horizon: credentials expiring within `(now, now+horizon]`
    /// are tested for proof disconnection.
    pub expiry_horizon: u64,
}

struct Ctx<'a> {
    registry: &'a EntityRegistry,
    repository: &'a Repository,
    bus: &'a RevocationBus,
    now: Timestamp,
}

impl Ctx<'_> {
    /// `check_edge_common` mirror: issuer known, credential verifies
    /// (structure + expiry + signature), not revoked.
    fn edge_valid(&self, cred: &SignedDelegation, skip: &HashSet<String>) -> bool {
        if skip.contains(&cred.id()) {
            return false;
        }
        let Some(issuer_key) = self.registry.lookup(&cred.body.issuer) else {
            return false;
        };
        if cred.verify(&issuer_key, self.now).is_err() {
            return false;
        }
        !self.bus.is_revoked(&cred.id())
    }

    /// `ProofEngine::prove_assignment` mirror: the holder entity is the
    /// role owner, or a chain of valid assignment credentials leads back
    /// to the owner. Returns the chain (owner base case = empty).
    fn assignment_chain(
        &self,
        holder: &Subject,
        role: &RoleName,
        in_progress: &mut HashSet<String>,
        skip: &HashSet<String>,
    ) -> Option<Vec<Arc<SignedDelegation>>> {
        let holder_name = match holder {
            Subject::Entity { name, .. } => name.clone(),
            Subject::Role(_) => return None,
        };
        if holder_name == role.owner {
            return Some(Vec::new());
        }
        let key = format!("{}@{role}", subject_key(holder));
        if !in_progress.insert(key) {
            return None; // cycle
        }
        for cred in self.repository.credentials_by_subject(holder) {
            if cred.body.kind != DelegationKind::Assignment || cred.body.object != *role {
                continue;
            }
            if !self.edge_valid(&cred, skip) {
                continue;
            }
            let Some(issuer_key) = self.registry.lookup(&cred.body.issuer) else {
                continue;
            };
            let issuer_subject = Subject::Entity {
                name: cred.body.issuer.clone(),
                key: issuer_key,
            };
            if let Some(upstream) = self.assignment_chain(&issuer_subject, role, in_progress, skip)
            {
                let mut chain = vec![cred];
                chain.extend(upstream);
                return Some(chain);
            }
        }
        None
    }

    /// `effective_edge_attrs` mirror: the attributes a membership edge
    /// actually conveys.
    fn effective_attrs(
        &self,
        cred: &Arc<SignedDelegation>,
        skip: &HashSet<String>,
    ) -> Option<AttrSet> {
        match cred.body.kind {
            DelegationKind::SelfCertifying => Some(cred.body.attrs.clone()),
            DelegationKind::ThirdParty => {
                let issuer_key = self.registry.lookup(&cred.body.issuer)?;
                let issuer_subject = Subject::Entity {
                    name: cred.body.issuer.clone(),
                    key: issuer_key,
                };
                let chain = self.assignment_chain(
                    &issuer_subject,
                    &cred.body.object,
                    &mut HashSet::new(),
                    skip,
                )?;
                let mut bound = AttrSet::new();
                for support in &chain {
                    bound = bound.attenuate(&support.body.attrs)?;
                }
                cred.body.attrs.attenuate(&bound)
            }
            DelegationKind::Assignment => None,
        }
    }

    /// BFS membership closure from one seed, mirroring `prove_search`
    /// (each role visited once, first-arrival attributes).
    fn membership_closure(&self, seed: &Subject, skip: &HashSet<String>) -> Vec<RoleName> {
        let mut reached: Vec<RoleName> = Vec::new();
        let mut reached_set: HashSet<String> = HashSet::new();
        let mut visited: HashSet<String> = HashSet::new();
        let mut queue: VecDeque<(Subject, AttrSet)> = VecDeque::new();
        visited.insert(subject_key(seed));
        queue.push_back((seed.clone(), AttrSet::new()));
        while let Some((node, attrs)) = queue.pop_front() {
            for cred in self.repository.credentials_by_subject(&node) {
                if cred.body.kind == DelegationKind::Assignment {
                    continue;
                }
                if !self.edge_valid(&cred, skip) {
                    continue;
                }
                let Some(effective) = self.effective_attrs(&cred, skip) else {
                    continue;
                };
                let Some(new_attrs) = attrs.attenuate(&effective) else {
                    continue;
                };
                let object = cred.body.object.clone();
                if reached_set.insert(object.to_string()) {
                    reached.push(object.clone());
                }
                let next = Subject::Role(object);
                if visited.insert(subject_key(&next)) {
                    queue.push_back((next, new_attrs));
                }
            }
        }
        reached
    }

    /// All entity subjects appearing in the snapshot, deterministic order.
    fn seeds(&self, snapshot: &[Arc<SignedDelegation>]) -> Vec<Subject> {
        let mut by_key: BTreeMap<String, Subject> = BTreeMap::new();
        for cred in snapshot {
            if let Subject::Entity { .. } = &cred.body.subject {
                by_key
                    .entry(subject_key(&cred.body.subject))
                    .or_insert_with(|| cred.body.subject.clone());
            }
        }
        by_key.into_values().collect()
    }
}

/// Compute the full role-reachability closure: every (entity subject,
/// role) pair the proof engine would prove from the current snapshot.
/// Deterministic order (seeds by subject key, roles by discovery order).
pub fn closure(input: &GraphInput<'_>) -> Vec<(Subject, RoleName)> {
    let ctx = Ctx {
        registry: input.registry,
        repository: input.repository,
        bus: input.bus,
        now: input.now,
    };
    let snapshot = input.repository.all_credentials();
    closure_with_skip(&ctx, &snapshot, &HashSet::new())
}

fn closure_with_skip(
    ctx: &Ctx<'_>,
    snapshot: &[Arc<SignedDelegation>],
    skip: &HashSet<String>,
) -> Vec<(Subject, RoleName)> {
    let mut out = Vec::new();
    for seed in ctx.seeds(snapshot) {
        for role in ctx.membership_closure(&seed, skip) {
            out.push((seed.clone(), role));
        }
    }
    out
}

/// Run the delegation-graph pass, appending findings to `report`.
pub fn analyze_graph(input: &GraphInput<'_>, report: &mut Report) {
    let ctx = Ctx {
        registry: input.registry,
        repository: input.repository,
        bus: input.bus,
        now: input.now,
    };
    let snapshot = input.repository.all_credentials();
    let no_skip: HashSet<String> = HashSet::new();
    let baseline = closure_with_skip(&ctx, &snapshot, &no_skip);

    // PSF001 — closure pairs outside the intent matrix.
    if let Some(intent) = input.intent {
        let intended: HashSet<(String, String)> = intent
            .iter()
            .map(|(s, r)| (subject_key(s), r.to_string()))
            .collect();
        for (subject, role) in &baseline {
            if !intended.contains(&(subject_key(subject), role.to_string())) {
                report.push(Diagnostic::new(
                    LintCode::PrivilegeEscalation,
                    subject.render(),
                    format!("statically reaches '{role}' but no explicit grant intends it"),
                ));
            }
        }
    }

    // PSF002 — cycles among role→role mapping edges (structural: every
    // non-assignment credential with a role subject contributes an edge,
    // valid or not — a cycle of expired credentials is still a policy
    // smell).
    for cycle in role_cycles(&snapshot) {
        report.push(Diagnostic::new(
            LintCode::DelegationCycle,
            cycle.join(" → "),
            "role mapping credentials form a cycle; proofs terminate only because the \
             engine refuses to revisit a role, and no membership can enter the cycle \
             from these edges alone",
        ));
    }

    // PSF003 — third-party and assignment credentials whose issuer has no
    // assignment support chain back to the role owner.
    for cred in &snapshot {
        let needs_support = matches!(
            cred.body.kind,
            DelegationKind::ThirdParty | DelegationKind::Assignment
        ) && cred.body.issuer != cred.body.object.owner;
        if !needs_support {
            continue;
        }
        let supported = ctx
            .registry
            .lookup(&cred.body.issuer)
            .map(|key| Subject::Entity {
                name: cred.body.issuer.clone(),
                key,
            })
            .and_then(|issuer| {
                ctx.assignment_chain(&issuer, &cred.body.object, &mut HashSet::new(), &no_skip)
            })
            .is_some();
        if !supported {
            report.push(Diagnostic::new(
                LintCode::DanglingThirdParty,
                cred.id(),
                format!(
                    "issuer '{}' has no assignment support chain for '{}'; this credential \
                     can never contribute to a proof",
                    cred.body.issuer.0, cred.body.object
                ),
            ));
        }
    }

    // PSF004 — already expired.
    for cred in &snapshot {
        if let Some(expires) = cred.body.expires {
            if input.now >= expires {
                report.push(Diagnostic::new(
                    LintCode::ExpiredCredential,
                    cred.id(),
                    format!(
                        "credential [{} → {}] expired at {expires} (now {})",
                        cred.body.subject.render(),
                        cred.body.object,
                        input.now
                    ),
                ));
            }
        }
    }

    // PSF005 — a credential expiring within the horizon whose removal
    // disconnects a proof is a single point of failure: when it lapses,
    // those grants silently disappear.
    if input.expiry_horizon > 0 {
        let baseline_set: HashSet<(String, String)> = baseline
            .iter()
            .map(|(s, r)| (subject_key(s), r.to_string()))
            .collect();
        for cred in &snapshot {
            let Some(expires) = cred.body.expires else {
                continue;
            };
            if expires <= input.now || expires > input.now + input.expiry_horizon {
                continue;
            }
            let skip: HashSet<String> = [cred.id()].into_iter().collect();
            let without = closure_with_skip(&ctx, &snapshot, &skip);
            let without_set: HashSet<(String, String)> = without
                .iter()
                .map(|(s, r)| (subject_key(s), r.to_string()))
                .collect();
            let mut lost: Vec<String> = baseline
                .iter()
                .filter(|(s, r)| {
                    let k = (subject_key(s), r.to_string());
                    baseline_set.contains(&k) && !without_set.contains(&k)
                })
                .map(|(s, r)| format!("{} → {r}", s.render()))
                .collect();
            lost.sort();
            lost.dedup();
            if !lost.is_empty() {
                report.push(Diagnostic::new(
                    LintCode::ExpiringSpof,
                    cred.id(),
                    format!(
                        "expires at {expires} (now {}); its loss disconnects: {}",
                        input.now,
                        lost.join(", ")
                    ),
                ));
            }
        }
    }
}

/// Tarjan SCC over the role→role mapping edges. Returns each cycle as a
/// sorted role list (an SCC of size > 1, or a self-loop).
fn role_cycles(snapshot: &[Arc<SignedDelegation>]) -> Vec<Vec<String>> {
    // Build adjacency: subject role → object role.
    let mut nodes: Vec<String> = Vec::new();
    let mut index_of: HashMap<String, usize> = HashMap::new();
    let intern = |name: String, nodes: &mut Vec<String>, idx: &mut HashMap<String, usize>| {
        *idx.entry(name.clone()).or_insert_with(|| {
            nodes.push(name);
            nodes.len() - 1
        })
    };
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut self_loops: HashSet<usize> = HashSet::new();
    for cred in snapshot {
        if cred.body.kind == DelegationKind::Assignment {
            continue;
        }
        if let Subject::Role(from) = &cred.body.subject {
            let a = intern(from.to_string(), &mut nodes, &mut index_of);
            let b = intern(cred.body.object.to_string(), &mut nodes, &mut index_of);
            if a == b {
                self_loops.insert(a);
            }
            edges.push((a, b));
        }
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (a, b) in edges {
        adj[a].push(b);
    }

    struct Tarjan<'t> {
        adj: &'t [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        sccs: Vec<Vec<usize>>,
    }
    impl Tarjan<'_> {
        fn visit(&mut self, v: usize) {
            self.index[v] = Some(self.next);
            self.low[v] = self.next;
            self.next += 1;
            self.stack.push(v);
            self.on_stack[v] = true;
            for i in 0..self.adj[v].len() {
                let w = self.adj[v][i];
                if self.index[w].is_none() {
                    self.visit(w);
                    self.low[v] = self.low[v].min(self.low[w]);
                } else if self.on_stack[w] {
                    self.low[v] = self.low[v].min(self.index[w].unwrap());
                }
            }
            if self.low[v] == self.index[v].unwrap() {
                let mut scc = Vec::new();
                loop {
                    let w = self.stack.pop().unwrap();
                    self.on_stack[w] = false;
                    scc.push(w);
                    if w == v {
                        break;
                    }
                }
                self.sccs.push(scc);
            }
        }
    }
    let n = nodes.len();
    let mut t = Tarjan {
        adj: &adj,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        sccs: Vec::new(),
    };
    for v in 0..n {
        if t.index[v].is_none() {
            t.visit(v);
        }
    }
    let mut cycles: Vec<Vec<String>> = t
        .sccs
        .into_iter()
        .filter(|scc| scc.len() > 1 || (scc.len() == 1 && self_loops.contains(&scc[0])))
        .map(|scc| {
            let mut names: Vec<String> = scc.into_iter().map(|i| nodes[i].clone()).collect();
            names.sort();
            names
        })
        .collect();
    cycles.sort();
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use psf_drbac::{DelegationBuilder, Entity};

    struct World {
        registry: EntityRegistry,
        repository: Repository,
        bus: RevocationBus,
        ny: Entity,
        sd: Entity,
        alice: Entity,
    }

    fn world() -> World {
        let registry = EntityRegistry::new();
        let repository = Repository::new();
        let bus = RevocationBus::new();
        let ny = Entity::with_seed("Comp.NY", b"ga");
        let sd = Entity::with_seed("Comp.SD", b"ga");
        let alice = Entity::with_seed("Alice", b"ga");
        for e in [&ny, &sd, &alice] {
            registry.register(e);
        }
        World {
            registry,
            repository,
            bus,
            ny,
            sd,
            alice,
        }
    }

    fn input<'a>(
        w: &'a World,
        intent: Option<&'a [(Subject, RoleName)]>,
        horizon: u64,
    ) -> GraphInput<'a> {
        GraphInput {
            registry: &w.registry,
            repository: &w.repository,
            bus: &w.bus,
            now: 0,
            intent,
            expiry_horizon: horizon,
        }
    }

    #[test]
    fn closure_follows_role_mapping() {
        let w = world();
        w.repository.publish_at_issuer(
            DelegationBuilder::new(&w.sd)
                .subject_entity(&w.alice)
                .role(w.sd.role("Member"))
                .sign(),
        );
        w.repository.publish_at_issuer(
            DelegationBuilder::new(&w.ny)
                .subject_role(w.sd.role("Member"))
                .role(w.ny.role("Member"))
                .sign(),
        );
        let pairs = closure(&input(&w, None, 0));
        let roles: Vec<String> = pairs.iter().map(|(_, r)| r.to_string()).collect();
        assert!(roles.contains(&"Comp.SD.Member".to_string()));
        assert!(roles.contains(&"Comp.NY.Member".to_string()));
    }

    #[test]
    fn escalation_flags_unintended_pairs() {
        let w = world();
        w.repository.publish_at_issuer(
            DelegationBuilder::new(&w.ny)
                .subject_entity(&w.alice)
                .role(w.ny.role("Admin"))
                .sign(),
        );
        let intent = vec![(w.alice.as_subject(), w.ny.role("Member"))];
        let mut report = Report::new();
        analyze_graph(&input(&w, Some(&intent), 0), &mut report);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::PrivilegeEscalation));
    }

    #[test]
    fn cycle_detected() {
        let w = world();
        w.repository.publish_at_issuer(
            DelegationBuilder::new(&w.ny)
                .subject_role(w.sd.role("Member"))
                .role(w.ny.role("Member"))
                .sign(),
        );
        w.repository.publish_at_issuer(
            DelegationBuilder::new(&w.sd)
                .subject_role(w.ny.role("Member"))
                .role(w.sd.role("Member"))
                .sign(),
        );
        let mut report = Report::new();
        analyze_graph(&input(&w, None, 0), &mut report);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::DelegationCycle));
    }

    #[test]
    fn dangling_third_party_flagged_and_supported_not() {
        let w = world();
        // SD issues for NY's role with no assignment support → dangling.
        w.repository.publish_at_issuer(
            DelegationBuilder::new(&w.sd)
                .subject_entity(&w.alice)
                .role(w.ny.role("Partner"))
                .sign(),
        );
        let mut report = Report::new();
        analyze_graph(&input(&w, None, 0), &mut report);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::DanglingThirdParty));

        // Granting SD the assignment right clears the finding.
        w.repository.publish_at_issuer(
            DelegationBuilder::new(&w.ny)
                .subject_entity(&w.sd)
                .assignment()
                .role(w.ny.role("Partner"))
                .sign(),
        );
        let mut report = Report::new();
        analyze_graph(&input(&w, None, 0), &mut report);
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::DanglingThirdParty));
    }

    #[test]
    fn expired_and_spof_flagged() {
        let w = world();
        // Already expired at now=0? expiry is `now >= expires`, so use
        // now=10 against expires=5.
        w.repository.publish_at_issuer(
            DelegationBuilder::new(&w.ny)
                .subject_entity(&w.alice)
                .role(w.ny.role("Old"))
                .expires(5)
                .sign(),
        );
        // Expiring soon, sole support of Alice → NY.Member.
        w.repository.publish_at_issuer(
            DelegationBuilder::new(&w.ny)
                .subject_entity(&w.alice)
                .role(w.ny.role("Member"))
                .expires(50)
                .sign(),
        );
        let mut report = Report::new();
        let mut inp = input(&w, None, 100);
        inp.now = 10;
        analyze_graph(&inp, &mut report);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::ExpiredCredential));
        let spof = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::ExpiringSpof)
            .expect("spof finding");
        assert!(spof.message.contains("Comp.NY.Member"));
    }

    #[test]
    fn redundant_grant_is_not_a_spof() {
        let w = world();
        // Two independent credentials for the same grant: removing the
        // expiring one does not disconnect the proof.
        w.repository.publish_at_issuer(
            DelegationBuilder::new(&w.ny)
                .subject_entity(&w.alice)
                .role(w.ny.role("Member"))
                .expires(50)
                .sign(),
        );
        w.repository.publish_at_issuer(
            DelegationBuilder::new(&w.ny)
                .subject_entity(&w.alice)
                .role(w.ny.role("Member"))
                .serial(1)
                .sign(),
        );
        let mut report = Report::new();
        analyze_graph(&input(&w, None, 100), &mut report);
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::ExpiringSpof));
    }
}
