//! Certificate replay lint (PSF014): every *published* authorization
//! certificate must still replay through the independent checker.
//!
//! A certificate is a frozen piece of evidence — the exact delegation
//! chain and attenuated attributes a proof search once found, signed by
//! the credentials' issuers. The world moves on underneath it: credentials
//! get revoked, expire, or an issuer key changes. A deployment that keeps
//! handing out a certificate the checker would refuse is a policy defect:
//! peers presenting it will be denied at admission, and any cache still
//! honoring it is honoring evidence the trusted checker rejects.
//!
//! This pass runs the same [`psf_cert::check`] the runtime uses (via the
//! [`psf_drbac::check_certificate`] adapter) against the analyzed world's
//! registry, revocation bus, clock, and repository epoch, and reports one
//! PSF014 error per certificate that no longer replays. It never consults
//! the repository's credentials or the proof engine — findings are
//! exactly the runtime checker's verdicts.

use crate::diag::{Diagnostic, LintCode, Report};
use psf_cert::AuthCertificate;
use psf_drbac::{check_certificate, EntityRegistry, RevocationBus};
use std::sync::Arc;

/// Everything the certificate pass needs.
pub struct CertLintInput<'a> {
    /// PKI directory the checker resolves issuer keys against.
    pub registry: &'a EntityRegistry,
    /// Live revocation state.
    pub bus: &'a RevocationBus,
    /// Analysis time (credential expiry is evaluated at this clock).
    pub now: u64,
    /// Repository epoch the analyzed world currently observes, if any
    /// (certificates pinning a later epoch are rejected).
    pub repo_epoch: Option<u64>,
    /// The published certificates to replay.
    pub certificates: &'a [Arc<AuthCertificate>],
}

/// Replay each published certificate through the independent checker;
/// push one PSF014 diagnostic per certificate that no longer checks.
pub fn analyze_certificates(input: &CertLintInput<'_>, report: &mut Report) {
    for cert in input.certificates {
        if let Err(e) =
            check_certificate(cert, input.registry, input.bus, input.now, input.repo_epoch)
        {
            report.push(Diagnostic::new(
                LintCode::CertificateReplay,
                format!("{} → {}", cert.subject.render(), cert.role),
                format!(
                    "published certificate {} no longer replays through the checker: {e}",
                    cert.digest_hex()
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psf_drbac::{CredentialSource, DelegationBuilder, Entity, ProofEngine, Repository};

    #[test]
    fn live_certificate_is_clean_and_revoked_is_psf014() {
        let registry = EntityRegistry::new();
        let repo = Repository::new();
        let bus = RevocationBus::new();
        let org = Entity::with_seed("Org", b"certlint");
        let bob = Entity::with_seed("Bob", b"certlint");
        registry.register(&org);
        registry.register(&bob);
        let cred = DelegationBuilder::new(&org)
            .subject_entity(&bob)
            .role(org.role("Member"))
            .sign();
        let id = cred.id();
        repo.publish_at_issuer(cred);
        let engine = ProofEngine::new(&registry, &repo, &bus, 0);
        let (_, cert, _) = engine
            .prove_certified(&bob.as_subject(), &org.role("Member"), &[])
            .unwrap();
        let certs = vec![cert];

        let mut clean = Report::new();
        analyze_certificates(
            &CertLintInput {
                registry: &registry,
                bus: &bus,
                now: 0,
                repo_epoch: repo.version(),
                certificates: &certs,
            },
            &mut clean,
        );
        assert!(clean.is_clean(), "{}", clean.render_human());

        bus.revoke(&id);
        let mut stale = Report::new();
        analyze_certificates(
            &CertLintInput {
                registry: &registry,
                bus: &bus,
                now: 0,
                repo_epoch: repo.version(),
                certificates: &certs,
            },
            &mut stale,
        );
        assert_eq!(stale.diagnostics.len(), 1);
        assert_eq!(stale.diagnostics[0].code, LintCode::CertificateReplay);
        assert!(stale.diagnostics[0].message.contains("revoked"));
    }
}
