//! Durable write-ahead log for the credential repository.
//!
//! The in-memory sharded [`Repository`] loses every published delegation —
//! and, worse, every revocation — on a crash: a restarted node would
//! silently re-trust revoked credentials. This module makes the trust
//! plane crash-safe, in the spirit of SAFE's durable linked-credential
//! store (Thummala & Chase): every repository mutation is appended to an
//! on-disk log *before* the caller regains control, and
//! [`DurableRepository::open`] replays the log (plus the latest snapshot)
//! to rebuild the exact pre-crash authorization state.
//!
//! ## Record format
//!
//! The log is a sequence of self-delimiting frames:
//!
//! ```text
//! [u32 len][u32 crc32][payload]          len, crc little-endian
//! payload = [u64 epoch][u8 kind][body]   crc covers the whole payload
//! ```
//!
//! Kinds: `1` **Publish** (`u32`-prefixed home string, one tag byte,
//! credential in [`SignedDelegation::to_wire`] framing), `2` **Revoke**
//! (`u32`-prefixed credential id), `3` **PurgeExpired** (`u64` purge
//! time), `4` **RevokeBatch** (`u32` count, then that many
//! `u32`-prefixed credential ids — one frame for an entire
//! [`RevocationBus::revoke_all`] epoch). The epoch tag is the
//! repository's mutation epoch at append
//! time; recovery raises the rebuilt repository's epoch to the maximum
//! seen and then bumps it once more, so any negative proof-cache entry
//! pinned to a pre-crash epoch can never be mistaken for current.
//!
//! ## Torn writes, duplicates, ordering
//!
//! A crash mid-append leaves a torn tail. Recovery scans the log
//! front-to-back and stops at the first frame whose header, length, CRC,
//! or payload fails to decode; everything before is replayed, everything
//! after is truncated (physically, by [`DurableRepository::open`];
//! [`Repository::recover`] and [`verify_dir`] are read-only and never
//! modify the files). Replay is duplicate-tolerant — a crash between
//! snapshot rename and log truncation leaves both covering the same
//! records, and `(home, credential-id)` dedup makes the overlap
//! harmless — and out-of-order-revoke tolerant (a `Revoke` for an id the
//! log never publishes still lands in the bus).
//!
//! ## Snapshots & compaction
//!
//! [`DurableRepository::compact`] writes the full repository + revocation
//! state to `snapshot.tmp`, fsyncs, renames it over `snapshot.bin`,
//! fsyncs the directory, and only then truncates the log. The snapshot
//! carries a trailing CRC32 over its entire contents; a corrupt snapshot
//! (torn rename on a filesystem without atomic rename durability) is
//! ignored at recovery and reported in the [`RecoveryReport`].
//!
//! ## Sharded layout
//!
//! [`ShardedDurableRepository`] scales the same machinery to the sharded
//! [`Repository`]: one log segment *per repository shard* under
//! `dir/shard-NN/` (same frame format, same snapshot format, same
//! per-segment compaction) plus a `dir/bus/` segment for revocations, all
//! declared by a checksummed `dir/shards.meta`. A publish is appended only
//! to its subject's shard segment, so writers to different shards never
//! share a log mutex; recovery replays every segment in parallel. Group
//! commit batches frames per segment under [`FsyncPolicy::EveryN`] /
//! [`FsyncPolicy::Never`] (note the loss window for buffered frames then
//! includes a process crash, not just power loss — `sync()` flushes).

use crate::delegation::SignedDelegation;
use crate::entity::EntityName;
use crate::repository::{DiscoveryTag, RepoEvent, Repository};
use crate::revocation::RevocationBus;
use crate::wire::Reader;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Log file name inside a durable repository directory.
pub const LOG_FILE: &str = "delegations.wal";
/// Snapshot file name inside a durable repository directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Temporary snapshot name (renamed over [`SNAPSHOT_FILE`] when complete).
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";
/// Shard-layout manifest inside a sharded durable directory.
pub const SHARD_META_FILE: &str = "shards.meta";
/// Revocation-bus segment directory inside a sharded durable directory.
pub const BUS_DIR: &str = "bus";

const SNAPSHOT_MAGIC: &[u8; 11] = b"PSF-SNAP-v1";
const SHARD_META_MAGIC: &[u8; 11] = b"PSF-SHRD-v1";
/// Upper bound on a single record's payload; anything larger is treated
/// as corruption (a credential is ~200 bytes, so this is generous).
const MAX_RECORD_LEN: u32 = 1 << 24;

const KIND_PUBLISH: u8 = 1;
const KIND_REVOKE: u8 = 2;
const KIND_PURGE: u8 = 3;
const KIND_REVOKE_BATCH: u8 = 4;

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected 0xEDB88320) — table built at compile time so the
// log needs no external checksum crate.
// ---------------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC32 (IEEE 802.3 polynomial) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// A decoded log operation.
// Publish dominates real logs, so boxing its credential would add an
// allocation per replayed record to shrink the rare Revoke/Purge variants.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum WalOp {
    /// A credential published at `home` with discovery tags `tag`.
    Publish {
        /// The home node the credential was stored at.
        home: EntityName,
        /// Its discovery tags.
        tag: DiscoveryTag,
        /// The credential itself.
        cred: SignedDelegation,
    },
    /// A credential id revoked.
    Revoke {
        /// The revoked credential id.
        id: String,
    },
    /// An expiry sweep at time `now`.
    PurgeExpired {
        /// The purge evaluation time.
        now: u64,
    },
    /// A bulk revocation epoch: every id revoked in one
    /// [`RevocationBus::revoke_all`] call, logged as a single frame.
    RevokeBatch {
        /// The revoked credential ids.
        ids: Vec<String>,
    },
}

/// One valid record found by [`scan_log`].
#[derive(Debug, Clone)]
pub struct ScannedRecord {
    /// Byte offset of the record's frame header in the log.
    pub offset: u64,
    /// Repository epoch at append time.
    pub epoch: u64,
    /// The operation.
    pub op: WalOp,
}

/// Result of scanning a log image front-to-back.
#[derive(Debug)]
pub struct LogScan {
    /// Every record up to the first corruption (or the end).
    pub records: Vec<ScannedRecord>,
    /// Bytes covered by valid records; the log's recoverable prefix.
    pub valid_bytes: u64,
    /// Bytes past the valid prefix (torn tail / corruption).
    pub truncated_bytes: u64,
    /// Why the scan stopped early, if it did.
    pub corruption: Option<String>,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encode a publish payload directly from borrowed parts — the hot path
/// for the sharded log, which must not deep-clone a signed credential per
/// append just to build a [`WalOp`].
fn encode_publish_payload(
    epoch: u64,
    home: &EntityName,
    tag: DiscoveryTag,
    cred: &SignedDelegation,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(96);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.push(KIND_PUBLISH);
    put_str(&mut out, &home.0);
    out.push(tag.to_byte());
    out.extend_from_slice(&cred.to_wire());
    out
}

fn encode_payload(epoch: u64, op: &WalOp) -> Vec<u8> {
    if let WalOp::Publish { home, tag, cred } = op {
        return encode_publish_payload(epoch, home, *tag, cred);
    }
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&epoch.to_le_bytes());
    match op {
        WalOp::Publish { .. } => unreachable!("handled above"),
        WalOp::Revoke { id } => {
            out.push(KIND_REVOKE);
            put_str(&mut out, id);
        }
        WalOp::PurgeExpired { now } => {
            out.push(KIND_PURGE);
            out.extend_from_slice(&now.to_le_bytes());
        }
        WalOp::RevokeBatch { ids } => {
            out.push(KIND_REVOKE_BATCH);
            out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
            for id in ids {
                put_str(&mut out, id);
            }
        }
    }
    out
}

/// Frame a payload: `[u32 len][u32 crc][payload]`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn decode_payload(payload: &[u8]) -> Result<(u64, WalOp), String> {
    let mut r = Reader::new(payload);
    let epoch = r.u64().map_err(|e| e.to_string())?;
    let kind = r.u8().map_err(|e| e.to_string())?;
    let op = match kind {
        KIND_PUBLISH => {
            let home = r.string().map_err(|e| e.to_string())?;
            let tag = DiscoveryTag::from_byte(r.u8().map_err(|e| e.to_string())?)
                .ok_or_else(|| "bad discovery tag".to_string())?;
            let cred = SignedDelegation::from_wire(&mut r).map_err(|e| e.to_string())?;
            WalOp::Publish {
                home: EntityName(home),
                tag,
                cred,
            }
        }
        KIND_REVOKE => WalOp::Revoke {
            id: r.string().map_err(|e| e.to_string())?,
        },
        KIND_PURGE => WalOp::PurgeExpired {
            now: r.u64().map_err(|e| e.to_string())?,
        },
        KIND_REVOKE_BATCH => {
            let n = r.u32().map_err(|e| e.to_string())? as usize;
            if n > 1 << 20 {
                return Err("implausible revoke-batch count".into());
            }
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(r.string().map_err(|e| e.to_string())?);
            }
            WalOp::RevokeBatch { ids }
        }
        k => return Err(format!("unknown record kind {k}")),
    };
    if !r.finished() {
        return Err("trailing bytes in record payload".into());
    }
    Ok((epoch, op))
}

/// Scan a log image front-to-back, stopping at the first frame whose
/// header, length, CRC, or payload fails to decode. Everything before the
/// stop point is returned as valid records; everything after is the torn
/// tail.
pub fn scan_log(buf: &[u8]) -> LogScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut corruption = None;
    while pos < buf.len() {
        if pos + 8 > buf.len() {
            corruption = Some("truncated frame header".into());
            break;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len == 0 || len > MAX_RECORD_LEN {
            corruption = Some(format!("implausible record length {len}"));
            break;
        }
        let end = pos + 8 + len as usize;
        if end > buf.len() {
            corruption = Some("truncated record body".into());
            break;
        }
        let payload = &buf[pos + 8..end];
        if crc32(payload) != crc {
            corruption = Some(format!("checksum mismatch at offset {pos}"));
            break;
        }
        match decode_payload(payload) {
            Ok((epoch, op)) => records.push(ScannedRecord {
                offset: pos as u64,
                epoch,
                op,
            }),
            Err(e) => {
                corruption = Some(format!("undecodable record at offset {pos}: {e}"));
                break;
            }
        }
        pos = end;
    }
    LogScan {
        valid_bytes: pos as u64,
        truncated_bytes: (buf.len() - pos) as u64,
        records,
        corruption,
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// A decoded snapshot: the full repository + revocation state at the
/// moment of the last compaction.
#[derive(Debug, Default)]
pub struct Snapshot {
    /// Repository epoch when the snapshot was taken.
    pub epoch: u64,
    /// `(home, tag, credential)` entries, in compaction order.
    pub entries: Vec<(EntityName, DiscoveryTag, SignedDelegation)>,
    /// Revoked credential ids.
    pub revoked: Vec<String>,
}

fn encode_snapshot(
    epoch: u64,
    entries: &[(EntityName, DiscoveryTag, Arc<SignedDelegation>)],
    revoked: &[String],
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (home, tag, cred) in entries {
        put_str(&mut out, &home.0);
        out.push(tag.to_byte());
        out.extend_from_slice(&cred.to_wire());
    }
    out.extend_from_slice(&(revoked.len() as u32).to_le_bytes());
    for id in revoked {
        put_str(&mut out, id);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode_snapshot(buf: &[u8]) -> Result<Snapshot, String> {
    if buf.len() < SNAPSHOT_MAGIC.len() + 4 {
        return Err("snapshot too short".into());
    }
    let (body, crc_bytes) = buf.split_at(buf.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != stored {
        return Err("snapshot checksum mismatch".into());
    }
    if &body[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err("bad snapshot magic".into());
    }
    let mut r = Reader::new(&body[SNAPSHOT_MAGIC.len()..]);
    let epoch = r.u64().map_err(|e| e.to_string())?;
    let n = r.u32().map_err(|e| e.to_string())? as usize;
    if n > 1 << 24 {
        return Err("implausible snapshot entry count".into());
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let home = r.string().map_err(|e| e.to_string())?;
        let tag = DiscoveryTag::from_byte(r.u8().map_err(|e| e.to_string())?)
            .ok_or_else(|| "bad discovery tag".to_string())?;
        let cred = SignedDelegation::from_wire(&mut r).map_err(|e| e.to_string())?;
        entries.push((EntityName(home), tag, cred));
    }
    let m = r.u32().map_err(|e| e.to_string())? as usize;
    if m > 1 << 24 {
        return Err("implausible snapshot revocation count".into());
    }
    let mut revoked = Vec::with_capacity(m);
    for _ in 0..m {
        revoked.push(r.string().map_err(|e| e.to_string())?);
    }
    if !r.finished() {
        return Err("trailing bytes in snapshot".into());
    }
    Ok(Snapshot {
        epoch,
        entries,
        revoked,
    })
}

enum SnapshotLoad {
    Missing,
    Corrupt(String),
    Loaded(Snapshot),
}

fn load_snapshot(path: &Path) -> std::io::Result<SnapshotLoad> {
    match std::fs::read(path) {
        Ok(buf) => Ok(match decode_snapshot(&buf) {
            Ok(s) => SnapshotLoad::Loaded(s),
            Err(e) => SnapshotLoad::Corrupt(e),
        }),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(SnapshotLoad::Missing),
        Err(e) => Err(e),
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// When the log file is fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append: a record is durable before the mutating
    /// call returns. The only policy under which "committed" in the
    /// acceptance sense — survives `kill -9` — is guaranteed.
    Always,
    /// fsync every N appends: bounded loss window, much cheaper.
    EveryN(u32),
    /// Never fsync explicitly; the OS flushes when it pleases. Survives
    /// process crashes (the page cache persists) but not power loss.
    Never,
}

/// Durability configuration for [`DurableRepository::open`].
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Fsync policy for log appends.
    pub fsync: FsyncPolicy,
    /// Compact (snapshot + truncate) automatically once this many records
    /// have been appended since the last compaction. `None` = manual
    /// compaction only.
    pub auto_compact_appends: Option<u64>,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            fsync: FsyncPolicy::Always,
            auto_compact_appends: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// What recovery found and did.
#[derive(Debug, Default, Clone)]
pub struct RecoveryReport {
    /// Credentials restored from the snapshot.
    pub snapshot_entries: usize,
    /// Revocations restored from the snapshot.
    pub snapshot_revocations: usize,
    /// True when a snapshot file existed but failed its checksum and was
    /// ignored (the log alone was replayed).
    pub snapshot_corrupt: bool,
    /// Log records replayed (after the snapshot).
    pub records_replayed: usize,
    /// Publish records applied (excluding duplicates).
    pub publishes: usize,
    /// Revocations restored to the bus, across snapshot and log.
    pub revocations_restored: usize,
    /// PurgeExpired records re-applied.
    pub purges: usize,
    /// Publish records skipped because the same `(home, credential-id)`
    /// was already present (snapshot/log overlap after a crash between
    /// snapshot rename and log truncation).
    pub duplicates_skipped: usize,
    /// Torn-tail bytes discarded from the end of the log.
    pub truncated_bytes: u64,
    /// Valid log bytes retained.
    pub log_bytes: u64,
    /// The repository's epoch after recovery (max seen, plus one).
    pub epoch: u64,
}

/// What a compaction wrote and dropped.
#[derive(Debug, Clone, Copy)]
pub struct CompactReport {
    /// Credentials written to the snapshot.
    pub snapshot_entries: usize,
    /// Revocation ids written to the snapshot.
    pub snapshot_revocations: usize,
    /// Log bytes truncated away.
    pub log_bytes_dropped: u64,
}

/// Read-only integrity report from [`verify_dir`].
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Whether a snapshot file exists.
    pub snapshot_present: bool,
    /// Whether the snapshot failed its checksum.
    pub snapshot_corrupt: bool,
    /// Credentials in the snapshot (0 when absent/corrupt).
    pub snapshot_entries: usize,
    /// Revocation ids in the snapshot.
    pub snapshot_revocations: usize,
    /// Valid records in the log.
    pub log_records: usize,
    /// Bytes covered by valid records.
    pub valid_bytes: u64,
    /// Torn/corrupt bytes past the valid prefix.
    pub truncated_bytes: u64,
    /// Why the log scan stopped early, if it did.
    pub corruption: Option<String>,
}

impl VerifyReport {
    /// True when the directory recovers with zero data loss: no torn
    /// tail, no corrupt snapshot.
    pub fn is_clean(&self) -> bool {
        self.truncated_bytes == 0 && !self.snapshot_corrupt
    }
}

/// Live counters for a [`DurableRepository`].
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStats {
    /// Records appended since open.
    pub appends: u64,
    /// Explicit fsyncs issued since open.
    pub fsyncs: u64,
    /// Compactions performed since open.
    pub compactions: u64,
    /// Current log file size in bytes.
    pub log_bytes: u64,
    /// Current snapshot file size in bytes (0 when absent).
    pub snapshot_bytes: u64,
}

// ---------------------------------------------------------------------------
// Replay (shared by open() and Repository::recover())
// ---------------------------------------------------------------------------

fn replay(
    dir: &Path,
    repo: &Repository,
    bus: &RevocationBus,
) -> std::io::Result<(RecoveryReport, LogScan)> {
    let mut report = RecoveryReport::default();
    let mut max_epoch = 0u64;
    // (home, credential-id) → expiry, for every pair currently applied —
    // dedup for snapshot/log overlap and replayed double-publishes. A
    // replayed purge *removes* expired pairs, so a later re-publish of a
    // purged credential is applied rather than mistaken for a duplicate.
    let mut seen: HashMap<(String, String), Option<u64>> = HashMap::new();

    match load_snapshot(&dir.join(SNAPSHOT_FILE))? {
        SnapshotLoad::Missing => {}
        SnapshotLoad::Corrupt(reason) => {
            report.snapshot_corrupt = true;
            psf_telemetry::audit::record(
                psf_telemetry::Decision::Revocation,
                "",
                "wal-snapshot",
                psf_telemetry::Verdict::Deny,
            )
            .detail(format!("snapshot ignored: {reason}"))
            .commit();
        }
        SnapshotLoad::Loaded(snap) => {
            max_epoch = max_epoch.max(snap.epoch);
            for (home, tag, cred) in snap.entries {
                seen.insert((home.0.clone(), cred.id()), cred.body.expires);
                repo.publish(home, cred, tag);
                report.snapshot_entries += 1;
            }
            report.snapshot_revocations = snap.revoked.len();
            report.revocations_restored += bus.restore(&snap.revoked);
        }
    }

    let log_image = match std::fs::read(dir.join(LOG_FILE)) {
        Ok(buf) => buf,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let scan = scan_log(&log_image);
    for rec in &scan.records {
        max_epoch = max_epoch.max(rec.epoch);
        match &rec.op {
            WalOp::Publish { home, tag, cred } => {
                use std::collections::hash_map::Entry;
                match seen.entry((home.0.clone(), cred.id())) {
                    Entry::Occupied(_) => report.duplicates_skipped += 1,
                    Entry::Vacant(v) => {
                        v.insert(cred.body.expires);
                        repo.publish(home.clone(), cred.clone(), *tag);
                        report.publishes += 1;
                    }
                }
            }
            WalOp::Revoke { id } => {
                report.revocations_restored += bus.restore([id.as_str()]);
            }
            WalOp::RevokeBatch { ids } => {
                report.revocations_restored += bus.restore(ids.iter().map(|s| s.as_str()));
            }
            WalOp::PurgeExpired { now } => {
                repo.purge_expired(*now);
                report.purges += 1;
                seen.retain(|_, exp| exp.is_none_or(|e| *now < e));
            }
        }
    }
    report.records_replayed = scan.records.len();
    report.truncated_bytes = scan.truncated_bytes;
    report.log_bytes = scan.valid_bytes;

    // Epoch monotonicity across the crash: never below anything a cache
    // may have pinned, and strictly above it so stale negative entries die.
    repo.raise_epoch(max_epoch);
    report.epoch = repo.bump_epoch();

    psf_telemetry::counter!("psf.repo.wal.replays").add(report.records_replayed as u64);
    psf_telemetry::counter!("psf.repo.wal.truncated_bytes").add(report.truncated_bytes);
    Ok((report, scan))
}

impl Repository {
    /// Rebuild a repository (and its revocation bus) from a durable
    /// directory, **read-only**: the snapshot and log are scanned and
    /// replayed but never modified — a torn tail is skipped, not
    /// truncated. Use [`DurableRepository::open`] to recover *and* keep
    /// logging.
    pub fn recover(dir: &Path) -> std::io::Result<(Repository, RevocationBus, RecoveryReport)> {
        let repo = Repository::new();
        let bus = RevocationBus::new();
        let (report, _) = replay(dir, &repo, &bus)?;
        Ok((repo, bus, report))
    }
}

/// Read-only integrity check of a durable repository directory — scans
/// the snapshot and log without replaying or modifying anything. Backs
/// `psf repo --verify`.
pub fn verify_dir(dir: &Path) -> std::io::Result<VerifyReport> {
    let (snapshot_present, snapshot_corrupt, snapshot_entries, snapshot_revocations) =
        match load_snapshot(&dir.join(SNAPSHOT_FILE))? {
            SnapshotLoad::Missing => (false, false, 0, 0),
            SnapshotLoad::Corrupt(_) => (true, true, 0, 0),
            SnapshotLoad::Loaded(s) => (true, false, s.entries.len(), s.revoked.len()),
        };
    let log_image = match std::fs::read(dir.join(LOG_FILE)) {
        Ok(buf) => buf,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let scan = scan_log(&log_image);
    Ok(VerifyReport {
        snapshot_present,
        snapshot_corrupt,
        snapshot_entries,
        snapshot_revocations,
        log_records: scan.records.len(),
        valid_bytes: scan.valid_bytes,
        truncated_bytes: scan.truncated_bytes,
        corruption: scan.corruption,
    })
}

// ---------------------------------------------------------------------------
// DurableRepository
// ---------------------------------------------------------------------------

struct WalWriter {
    file: File,
    unsynced: u32,
    appends_since_compact: u64,
}

struct WalInner {
    dir: PathBuf,
    config: WalConfig,
    writer: Mutex<WalWriter>,
    appends: AtomicU64,
    fsyncs: AtomicU64,
    compactions: AtomicU64,
}

impl WalInner {
    /// Append one framed payload. Returns true when the auto-compaction
    /// threshold was crossed (the caller compacts *after* releasing the
    /// writer lock — compaction re-takes it).
    fn append(&self, payload: &[u8]) -> std::io::Result<bool> {
        let framed = frame(payload);
        let mut w = self.writer.lock();
        w.file.write_all(&framed)?;
        self.appends.fetch_add(1, Ordering::Relaxed);
        psf_telemetry::counter!("psf.repo.wal.appends").inc();
        w.unsynced += 1;
        let sync = match self.config.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => w.unsynced >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if sync {
            w.file.sync_data()?;
            w.unsynced = 0;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
            psf_telemetry::counter!("psf.repo.wal.fsyncs").inc();
        }
        w.appends_since_compact += 1;
        Ok(match self.config.auto_compact_appends {
            Some(n) if n > 0 => w.appends_since_compact >= n,
            _ => false,
        })
    }
}

/// A [`Repository`] + [`RevocationBus`] pair whose every mutation is
/// appended to a crash-safe write-ahead log. The repository and bus are
/// the ordinary in-memory types — guards, deployers, supervisors, and
/// proof engines use them unchanged; durability rides on the observer
/// hooks and is invisible to the rest of the stack.
#[derive(Clone)]
pub struct DurableRepository {
    repo: Repository,
    bus: RevocationBus,
    inner: Arc<WalInner>,
}

impl DurableRepository {
    /// Open (or create) a durable repository directory: replay
    /// snapshot + log into a fresh repository/bus pair, physically
    /// truncate any torn tail, then attach the logging observers so
    /// subsequent mutations are appended. Returns the handle and the
    /// recovery report.
    pub fn open(
        dir: &Path,
        config: WalConfig,
    ) -> std::io::Result<(DurableRepository, RecoveryReport)> {
        std::fs::create_dir_all(dir)?;
        let repo = Repository::new();
        let bus = RevocationBus::new();
        let (report, scan) = replay(dir, &repo, &bus)?;

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(LOG_FILE))?;
        if scan.truncated_bytes > 0 {
            // Physically drop the torn tail so future appends start at a
            // record boundary.
            file.set_len(scan.valid_bytes)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;

        let inner = Arc::new(WalInner {
            dir: dir.to_path_buf(),
            config,
            writer: Mutex::new(WalWriter {
                file,
                unsynced: 0,
                appends_since_compact: 0,
            }),
            appends: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        });

        let durable = DurableRepository {
            repo: repo.clone(),
            bus: bus.clone(),
            inner,
        };

        // Attach observers only now — replay must not re-log itself.
        {
            let d = durable.clone();
            repo.set_observer(Some(Arc::new(move |ev: RepoEvent<'_>| {
                let payload = match ev {
                    RepoEvent::Published { home, cred, tag } => encode_payload(
                        d.repo.epoch(),
                        &WalOp::Publish {
                            home: home.clone(),
                            tag,
                            cred: (**cred).clone(),
                        },
                    ),
                    RepoEvent::PurgedExpired { now, .. } => {
                        encode_payload(d.repo.epoch(), &WalOp::PurgeExpired { now })
                    }
                };
                d.log_payload(&payload);
            })));
            let d = durable.clone();
            bus.set_observer(Some(Arc::new(move |ids: &[String]| {
                // One Revoke record per id: the single-log format predates
                // RevokeBatch and old logs must keep scanning identically.
                for id in ids {
                    let payload = encode_payload(d.repo.epoch(), &WalOp::Revoke { id: id.clone() });
                    d.log_payload(&payload);
                }
            })));
        }
        Ok((durable, report))
    }

    fn log_payload(&self, payload: &[u8]) {
        match self.inner.append(payload) {
            Ok(true) => {
                if let Err(e) = self.compact() {
                    psf_telemetry::counter!("psf.repo.wal.errors").inc();
                    psf_telemetry::audit::record(
                        psf_telemetry::Decision::Revocation,
                        "",
                        "wal-compact",
                        psf_telemetry::Verdict::Deny,
                    )
                    .detail(format!("auto-compaction failed: {e}"))
                    .commit();
                }
            }
            Ok(false) => {}
            Err(e) => {
                // The in-memory mutation already happened; all we can do
                // is surface the durability gap loudly.
                psf_telemetry::counter!("psf.repo.wal.errors").inc();
                psf_telemetry::audit::record(
                    psf_telemetry::Decision::Revocation,
                    "",
                    "wal-append",
                    psf_telemetry::Verdict::Deny,
                )
                .detail(format!("append failed: {e}"))
                .commit();
            }
        }
    }

    /// The in-memory repository (shared handle). Mutations through it are
    /// logged transparently.
    pub fn repository(&self) -> &Repository {
        &self.repo
    }

    /// The revocation bus (shared handle). Revocations through it are
    /// logged transparently.
    pub fn bus(&self) -> &RevocationBus {
        &self.bus
    }

    /// The durable directory this repository logs to.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Force an fsync of the log regardless of policy.
    pub fn sync(&self) -> std::io::Result<()> {
        let mut w = self.inner.writer.lock();
        w.file.sync_data()?;
        w.unsynced = 0;
        self.inner.fsyncs.fetch_add(1, Ordering::Relaxed);
        psf_telemetry::counter!("psf.repo.wal.fsyncs").inc();
        Ok(())
    }

    /// Snapshot the full repository + revocation state and truncate the
    /// log: write `snapshot.tmp`, fsync, rename over `snapshot.bin`,
    /// fsync the directory, then truncate the log to zero. A crash at any
    /// point leaves a recoverable directory (the snapshot/log overlap
    /// after an un-truncated rename is absorbed by replay dedup).
    pub fn compact(&self) -> std::io::Result<CompactReport> {
        // Writer lock held for the whole operation: no appends interleave
        // with the truncate. Observers fire outside repository locks, so
        // reading snapshot state here cannot deadlock with a publisher.
        let mut w = self.inner.writer.lock();
        let entries = self.repo.snapshot_entries();
        let revoked = self.bus.revoked_ids();
        let image = encode_snapshot(self.repo.epoch(), &entries, &revoked);

        let tmp = self.inner.dir.join(SNAPSHOT_TMP);
        let dst = self.inner.dir.join(SNAPSHOT_FILE);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&image)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &dst)?;
        if let Ok(d) = File::open(&self.inner.dir) {
            let _ = d.sync_all(); // directory entry durability (best effort)
        }

        let dropped = w.file.seek(SeekFrom::End(0))?;
        w.file.set_len(0)?;
        w.file.seek(SeekFrom::Start(0))?;
        w.file.sync_data()?;
        w.unsynced = 0;
        w.appends_since_compact = 0;

        self.inner.compactions.fetch_add(1, Ordering::Relaxed);
        psf_telemetry::counter!("psf.repo.wal.snapshot").inc();
        Ok(CompactReport {
            snapshot_entries: entries.len(),
            snapshot_revocations: revoked.len(),
            log_bytes_dropped: dropped,
        })
    }

    /// Live durability counters + current file sizes.
    pub fn stats(&self) -> WalStats {
        let log_bytes = std::fs::metadata(self.inner.dir.join(LOG_FILE))
            .map(|m| m.len())
            .unwrap_or(0);
        let snapshot_bytes = std::fs::metadata(self.inner.dir.join(SNAPSHOT_FILE))
            .map(|m| m.len())
            .unwrap_or(0);
        WalStats {
            appends: self.inner.appends.load(Ordering::Relaxed),
            fsyncs: self.inner.fsyncs.load(Ordering::Relaxed),
            compactions: self.inner.compactions.load(Ordering::Relaxed),
            log_bytes,
            snapshot_bytes,
        }
    }

    /// Detach the logging observers (used by tests simulating a crash:
    /// the files stay as-is, the in-memory halves keep working unlogged).
    pub fn detach(&self) {
        self.repo.set_observer(None);
        self.bus.set_observer(None);
    }
}

// ---------------------------------------------------------------------------
// Sharded layout
// ---------------------------------------------------------------------------

/// Directory name of log-segment `i` inside a sharded durable directory.
pub fn shard_dir_name(i: usize) -> String {
    format!("shard-{i:02}")
}

/// Whether `dir` holds a sharded durable layout (a `shards.meta`
/// manifest). `psf repo` and `psf chaos` use this to pick the recovery
/// path without being told.
pub fn is_sharded_dir(dir: &Path) -> bool {
    dir.join(SHARD_META_FILE).is_file()
}

fn write_shard_meta(dir: &Path, shards: usize) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(SHARD_META_MAGIC.len() + 8);
    out.extend_from_slice(SHARD_META_MAGIC);
    out.extend_from_slice(&(shards as u32).to_le_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    let tmp = dir.join("shards.meta.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&out)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, dir.join(SHARD_META_FILE))
}

fn read_shard_meta(dir: &Path) -> std::io::Result<Option<usize>> {
    let buf = match std::fs::read(dir.join(SHARD_META_FILE)) {
        Ok(buf) => buf,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    if buf.len() != SHARD_META_MAGIC.len() + 8 {
        return Err(bad("shards.meta: wrong size"));
    }
    let (body, crc_bytes) = buf.split_at(buf.len() - 4);
    if crc32(body) != u32::from_le_bytes(crc_bytes.try_into().unwrap()) {
        return Err(bad("shards.meta: checksum mismatch"));
    }
    if &body[..SHARD_META_MAGIC.len()] != SHARD_META_MAGIC {
        return Err(bad("shards.meta: bad magic"));
    }
    let n = u32::from_le_bytes(body[SHARD_META_MAGIC.len()..].try_into().unwrap()) as usize;
    if n == 0 || n > 1024 || !n.is_power_of_two() {
        return Err(bad("shards.meta: implausible shard count"));
    }
    Ok(Some(n))
}

/// Group-commit buffer threshold: under [`FsyncPolicy::Never`] a segment
/// buffers frames in memory and issues one `write(2)` per this many
/// bytes.
const GROUP_BUF_BYTES: usize = 64 * 1024;

struct SegmentWriter {
    file: File,
    /// Framed records not yet handed to the OS (group commit).
    buf: Vec<u8>,
    /// Records currently in `buf`.
    buffered: u32,
    /// Monotone count of records ever appended to this segment.
    gen: u64,
    appends_since_compact: u64,
}

impl SegmentWriter {
    fn flush(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
            self.buffered = 0;
        }
        Ok(())
    }
}

struct Segment {
    dir: PathBuf,
    writer: Mutex<SegmentWriter>,
    /// Second handle to the same log, used for group commit: fsyncs run
    /// on it OUTSIDE the writer lock, so appenders keep buffering while a
    /// sync is in flight and one fsync covers all of them.
    sync_file: Mutex<File>,
    /// Highest `gen` handed to the OS (write(2) completed).
    flushed_gen: AtomicU64,
    /// Highest `gen` known durable (covered by a completed fsync).
    synced_gen: AtomicU64,
    appends: AtomicU64,
    compactions: AtomicU64,
    last_compact_epoch: AtomicU64,
}

impl Segment {
    fn open(dir: PathBuf) -> std::io::Result<Segment> {
        std::fs::create_dir_all(&dir)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(LOG_FILE))?;
        file.seek(SeekFrom::End(0))?;
        let sync_file = file.try_clone()?;
        Ok(Segment {
            dir,
            writer: Mutex::new(SegmentWriter {
                file,
                buf: Vec::new(),
                buffered: 0,
                gen: 0,
                appends_since_compact: 0,
            }),
            sync_file: Mutex::new(sync_file),
            flushed_gen: AtomicU64::new(0),
            synced_gen: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            last_compact_epoch: AtomicU64::new(0),
        })
    }
}

/// Per-segment durability stats inside a [`ShardedWalStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardSegmentStats {
    /// Records appended to this segment since open.
    pub appends: u64,
    /// Compactions of this segment since open.
    pub compactions: u64,
    /// Repository epoch at this segment's last compaction (0 = never).
    pub last_compact_epoch: u64,
    /// Current segment log size in bytes (excluding unflushed buffer).
    pub log_bytes: u64,
    /// Current segment snapshot size in bytes (0 when absent).
    pub snapshot_bytes: u64,
}

/// Live counters for a [`ShardedDurableRepository`].
#[derive(Debug, Clone, Default)]
pub struct ShardedWalStats {
    /// One row per repository shard segment, in shard order.
    pub shards: Vec<ShardSegmentStats>,
    /// The revocation-bus segment.
    pub bus: ShardSegmentStats,
    /// Total records appended since open (all segments).
    pub appends: u64,
    /// Explicit fsyncs issued since open (all segments).
    pub fsyncs: u64,
    /// Total compactions since open (all segments).
    pub compactions: u64,
}

/// Read-only integrity report over a sharded durable directory.
#[derive(Debug, Clone)]
pub struct ShardedVerifyReport {
    /// Per-shard segment reports, in shard order.
    pub shards: Vec<VerifyReport>,
    /// The revocation-bus segment report.
    pub bus: VerifyReport,
}

impl ShardedVerifyReport {
    /// True when **every** segment recovers with zero data loss.
    pub fn is_clean(&self) -> bool {
        self.shards.iter().all(|s| s.is_clean()) && self.bus.is_clean()
    }

    /// Indices of shard segments that are damaged (torn tail or corrupt
    /// snapshot); `usize::MAX` marks the bus segment.
    pub fn damaged(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_clean())
            .map(|(i, _)| i)
            .collect();
        if !self.bus.is_clean() {
            out.push(usize::MAX);
        }
        out
    }
}

/// Read-only integrity check of every segment of a sharded durable
/// directory. Backs `psf repo --verify` for sharded layouts.
pub fn verify_sharded_dir(dir: &Path) -> std::io::Result<ShardedVerifyReport> {
    let n = read_shard_meta(dir)?.ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::NotFound,
            "no shards.meta: not a sharded dir",
        )
    })?;
    let mut shards = Vec::with_capacity(n);
    for i in 0..n {
        shards.push(verify_dir(&dir.join(shard_dir_name(i)))?);
    }
    let bus = verify_dir(&dir.join(BUS_DIR))?;
    Ok(ShardedVerifyReport { shards, bus })
}

/// Outcome of replaying one segment (partial [`RecoveryReport`] fields
/// plus what open() needs to truncate torn tails).
#[derive(Default)]
struct SegmentReplay {
    snapshot_entries: usize,
    snapshot_revocations: usize,
    snapshot_corrupt: bool,
    records_replayed: usize,
    publishes: usize,
    revocations_restored: usize,
    purges: usize,
    duplicates_skipped: usize,
    max_epoch: u64,
    valid_bytes: u64,
    truncated_bytes: u64,
}

/// Replay one shard segment into `repo`. Publishes route back to their
/// home shard by subject hash (same FNV, same count — guaranteed by
/// construction); purge records are applied to **this shard only**, so a
/// purge replicated to N segments re-applies exactly once per shard
/// regardless of replay interleaving.
fn replay_shard_segment(
    seg_dir: &Path,
    shard: usize,
    repo: &Repository,
) -> std::io::Result<SegmentReplay> {
    let mut out = SegmentReplay::default();
    let mut seen: HashMap<(String, String), Option<u64>> = HashMap::new();

    match load_snapshot(&seg_dir.join(SNAPSHOT_FILE))? {
        SnapshotLoad::Missing => {}
        SnapshotLoad::Corrupt(reason) => {
            out.snapshot_corrupt = true;
            psf_telemetry::audit::record(
                psf_telemetry::Decision::Revocation,
                "",
                "wal-snapshot",
                psf_telemetry::Verdict::Deny,
            )
            .detail(format!("shard {shard} snapshot ignored: {reason}"))
            .commit();
        }
        SnapshotLoad::Loaded(snap) => {
            out.max_epoch = out.max_epoch.max(snap.epoch);
            for (home, tag, cred) in snap.entries {
                seen.insert((home.0.clone(), cred.id()), cred.body.expires);
                repo.publish(home, cred, tag);
                out.snapshot_entries += 1;
            }
            // Shard snapshots carry no revocations (those live in the bus
            // segment), but tolerate them for forward compatibility.
            out.snapshot_revocations = snap.revoked.len();
        }
    }

    let log_image = match std::fs::read(seg_dir.join(LOG_FILE)) {
        Ok(buf) => buf,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let scan = scan_log(&log_image);
    for rec in &scan.records {
        out.max_epoch = out.max_epoch.max(rec.epoch);
        match &rec.op {
            WalOp::Publish { home, tag, cred } => {
                use std::collections::hash_map::Entry;
                match seen.entry((home.0.clone(), cred.id())) {
                    Entry::Occupied(_) => out.duplicates_skipped += 1,
                    Entry::Vacant(v) => {
                        v.insert(cred.body.expires);
                        repo.publish(home.clone(), cred.clone(), *tag);
                        out.publishes += 1;
                    }
                }
            }
            WalOp::PurgeExpired { now } => {
                repo.purge_expired_shard(shard, *now);
                out.purges += 1;
                seen.retain(|_, exp| exp.is_none_or(|e| *now < e));
            }
            // Revocations never land in shard segments; skip defensively.
            WalOp::Revoke { .. } | WalOp::RevokeBatch { .. } => {}
        }
    }
    out.records_replayed = scan.records.len();
    out.valid_bytes = scan.valid_bytes;
    out.truncated_bytes = scan.truncated_bytes;
    Ok(out)
}

/// Replay the revocation-bus segment into `bus`.
fn replay_bus_segment(seg_dir: &Path, bus: &RevocationBus) -> std::io::Result<SegmentReplay> {
    let mut out = SegmentReplay::default();
    match load_snapshot(&seg_dir.join(SNAPSHOT_FILE))? {
        SnapshotLoad::Missing => {}
        SnapshotLoad::Corrupt(reason) => {
            out.snapshot_corrupt = true;
            psf_telemetry::audit::record(
                psf_telemetry::Decision::Revocation,
                "",
                "wal-snapshot",
                psf_telemetry::Verdict::Deny,
            )
            .detail(format!("bus snapshot ignored: {reason}"))
            .commit();
        }
        SnapshotLoad::Loaded(snap) => {
            out.max_epoch = out.max_epoch.max(snap.epoch);
            out.snapshot_revocations = snap.revoked.len();
            out.revocations_restored += bus.restore(&snap.revoked);
        }
    }
    let log_image = match std::fs::read(seg_dir.join(LOG_FILE)) {
        Ok(buf) => buf,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let scan = scan_log(&log_image);
    for rec in &scan.records {
        out.max_epoch = out.max_epoch.max(rec.epoch);
        match &rec.op {
            WalOp::Revoke { id } => {
                out.revocations_restored += bus.restore([id.as_str()]);
            }
            WalOp::RevokeBatch { ids } => {
                out.revocations_restored += bus.restore(ids.iter().map(|s| s.as_str()));
            }
            WalOp::Publish { .. } | WalOp::PurgeExpired { .. } => {}
        }
    }
    out.records_replayed = scan.records.len();
    out.valid_bytes = scan.valid_bytes;
    out.truncated_bytes = scan.truncated_bytes;
    Ok(out)
}

/// Replay every segment of a sharded directory into `repo`/`bus`. Shard
/// segments run on a worker pool (one credential set is wholly contained
/// in one segment, so shard replays are independent); the bus segment
/// replays on the calling thread. Returns the aggregate report and the
/// per-segment outcomes (shard order, bus last).
fn replay_sharded(
    dir: &Path,
    shards: usize,
    repo: &Repository,
    bus: &RevocationBus,
) -> std::io::Result<(RecoveryReport, Vec<SegmentReplay>)> {
    use std::sync::atomic::AtomicUsize;
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(shards)
        .max(1);
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, std::io::Result<SegmentReplay>)>> =
        Mutex::new(Vec::with_capacity(shards));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= shards {
                    break;
                }
                let r = replay_shard_segment(&dir.join(shard_dir_name(i)), i, repo);
                results.lock().push((i, r));
            });
        }
    });
    let mut by_shard: Vec<Option<SegmentReplay>> = (0..shards).map(|_| None).collect();
    for (i, r) in results.into_inner() {
        by_shard[i] = Some(r?);
    }
    let mut outcomes: Vec<SegmentReplay> = by_shard
        .into_iter()
        .map(|o| o.expect("every shard index visited exactly once"))
        .collect();
    outcomes.push(replay_bus_segment(&dir.join(BUS_DIR), bus)?);

    let mut report = RecoveryReport::default();
    let mut max_epoch = 0u64;
    for o in &outcomes {
        report.snapshot_entries += o.snapshot_entries;
        report.snapshot_revocations += o.snapshot_revocations;
        report.snapshot_corrupt |= o.snapshot_corrupt;
        report.records_replayed += o.records_replayed;
        report.publishes += o.publishes;
        report.revocations_restored += o.revocations_restored;
        report.purges += o.purges;
        report.duplicates_skipped += o.duplicates_skipped;
        report.truncated_bytes += o.truncated_bytes;
        report.log_bytes += o.valid_bytes;
        max_epoch = max_epoch.max(o.max_epoch);
    }
    repo.raise_epoch(max_epoch);
    report.epoch = repo.bump_epoch();
    psf_telemetry::counter!("psf.repo.wal.replays").add(report.records_replayed as u64);
    psf_telemetry::counter!("psf.repo.wal.truncated_bytes").add(report.truncated_bytes);
    Ok((report, outcomes))
}

impl Repository {
    /// Rebuild a repository (and its revocation bus) from a **sharded**
    /// durable directory, read-only: every segment is scanned and
    /// replayed (shards in parallel) but never modified. Use
    /// [`ShardedDurableRepository::open`] to recover *and* keep logging.
    pub fn recover_sharded(
        dir: &Path,
    ) -> std::io::Result<(Repository, RevocationBus, RecoveryReport)> {
        let shards = read_shard_meta(dir)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "no shards.meta: not a sharded dir",
            )
        })?;
        let repo = Repository::with_shard_count(shards);
        let bus = RevocationBus::new();
        let (report, _) = replay_sharded(dir, shards, &repo, &bus)?;
        Ok((repo, bus, report))
    }
}

struct ShardedWalInner {
    dir: PathBuf,
    config: WalConfig,
    segments: Vec<Segment>,
    bus_segment: Segment,
    fsyncs: AtomicU64,
}

impl ShardedWalInner {
    /// Append one payload to a segment under group commit. Returns true
    /// when the segment crossed its auto-compaction threshold.
    fn append(&self, seg: &Segment, payload: &[u8]) -> std::io::Result<bool> {
        let mut w = seg.writer.lock();
        w.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        w.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        w.buf.extend_from_slice(payload);
        w.buffered += 1;
        w.gen += 1;
        let my_gen = w.gen;
        seg.appends.fetch_add(1, Ordering::Relaxed);
        psf_telemetry::counter!("psf.repo.wal.appends").inc();
        let mut needs_sync = false;
        match self.config.fsync {
            FsyncPolicy::Always => {
                // Hand the frame to the OS under the writer lock, then
                // fsync OUTSIDE it (group commit): the sync runs on a
                // second handle so appenders that arrive while it is in
                // flight keep buffering and share the next fsync instead
                // of each paying their own. Per-record durability is
                // unchanged — we do not return until an fsync issued
                // after our write(2) has completed.
                w.flush()?;
                seg.flushed_gen.fetch_max(my_gen, Ordering::Release);
                needs_sync = true;
            }
            FsyncPolicy::EveryN(n) => {
                if w.buffered >= n.max(1) {
                    w.flush()?;
                    w.file.sync_data()?;
                    self.fsyncs.fetch_add(1, Ordering::Relaxed);
                    psf_telemetry::counter!("psf.repo.wal.fsyncs").inc();
                }
            }
            FsyncPolicy::Never => {
                if w.buf.len() >= GROUP_BUF_BYTES {
                    w.flush()?;
                }
            }
        }
        w.appends_since_compact += 1;
        let compact = match self.config.auto_compact_appends {
            Some(n) if n > 0 => w.appends_since_compact >= n,
            _ => false,
        };
        drop(w);
        if needs_sync {
            self.group_sync(seg, my_gen)?;
        }
        Ok(compact)
    }

    /// Wait until an fsync covering `my_gen` has completed, running one
    /// ourselves if nobody else's covers us. Only one thread syncs a
    /// segment at a time; the threads queued behind it recheck on wake
    /// and usually find a single follow-up fsync covers the whole batch.
    fn group_sync(&self, seg: &Segment, my_gen: u64) -> std::io::Result<()> {
        loop {
            if seg.synced_gen.load(Ordering::Acquire) >= my_gen {
                return Ok(());
            }
            let f = seg.sync_file.lock();
            if seg.synced_gen.load(Ordering::Acquire) >= my_gen {
                return Ok(());
            }
            // Everything flushed up to here is made durable by this one
            // fsync; `my_gen` was flushed before we were called, so
            // `cover >= my_gen` and the next loop iteration exits.
            let cover = seg.flushed_gen.load(Ordering::Acquire);
            f.sync_data()?;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
            psf_telemetry::counter!("psf.repo.wal.fsyncs").inc();
            seg.synced_gen.fetch_max(cover, Ordering::AcqRel);
        }
    }
}

impl Drop for ShardedWalInner {
    fn drop(&mut self) {
        // Best-effort flush of group-commit buffers on clean shutdown;
        // a real crash loses them by design (see FsyncPolicy docs).
        for seg in self
            .segments
            .iter()
            .chain(std::iter::once(&self.bus_segment))
        {
            let _ = seg.writer.lock().flush();
        }
    }
}

/// A sharded [`Repository`] + [`RevocationBus`] pair whose every mutation
/// is appended to a per-shard crash-safe write-ahead log (see the module
/// docs' *Sharded layout* section). Publishes log to their subject's
/// shard segment only; revocations log to the bus segment (bulk revokes
/// as one [`WalOp::RevokeBatch`] frame); purges are replicated to every
/// shard segment and re-applied shard-locally at recovery.
#[derive(Clone)]
pub struct ShardedDurableRepository {
    repo: Repository,
    bus: RevocationBus,
    inner: Arc<ShardedWalInner>,
}

impl ShardedDurableRepository {
    /// Open (or create) a sharded durable directory with `shards`
    /// segments (rounded up to a power of two, clamped to `1..=1024`; an
    /// existing directory's `shards.meta` takes precedence — the layout
    /// on disk is authoritative). Replays every segment (shards in
    /// parallel), truncates torn tails, then attaches logging observers.
    pub fn open(
        dir: &Path,
        shards: usize,
        config: WalConfig,
    ) -> std::io::Result<(ShardedDurableRepository, RecoveryReport)> {
        std::fs::create_dir_all(dir)?;
        let n = match read_shard_meta(dir)? {
            Some(n) => n,
            None => {
                let n = shards.clamp(1, 1024).next_power_of_two();
                write_shard_meta(dir, n)?;
                n
            }
        };
        let repo = Repository::with_shard_count(n);
        debug_assert_eq!(repo.shard_count(), n);
        let bus = RevocationBus::new();
        for i in 0..n {
            std::fs::create_dir_all(dir.join(shard_dir_name(i)))?;
        }
        std::fs::create_dir_all(dir.join(BUS_DIR))?;
        let (report, outcomes) = replay_sharded(dir, n, &repo, &bus)?;

        let mut segments = Vec::with_capacity(n);
        for (i, outcome) in outcomes.iter().take(n).enumerate() {
            let seg = Segment::open(dir.join(shard_dir_name(i)))?;
            if outcome.truncated_bytes > 0 {
                let mut w = seg.writer.lock();
                w.file.set_len(outcome.valid_bytes)?;
                w.file.sync_data()?;
                w.file.seek(SeekFrom::End(0))?;
            }
            segments.push(seg);
        }
        let bus_segment = Segment::open(dir.join(BUS_DIR))?;
        if let Some(outcome) = outcomes.last() {
            if outcome.truncated_bytes > 0 {
                let mut w = bus_segment.writer.lock();
                w.file.set_len(outcome.valid_bytes)?;
                w.file.sync_data()?;
                w.file.seek(SeekFrom::End(0))?;
            }
        }

        let inner = Arc::new(ShardedWalInner {
            dir: dir.to_path_buf(),
            config,
            segments,
            bus_segment,
            fsyncs: AtomicU64::new(0),
        });
        let durable = ShardedDurableRepository {
            repo: repo.clone(),
            bus: bus.clone(),
            inner,
        };

        // Attach observers only now — replay must not re-log itself.
        {
            let d = durable.clone();
            repo.set_observer(Some(Arc::new(move |ev: RepoEvent<'_>| match ev {
                RepoEvent::Published { home, cred, tag } => {
                    let skey = crate::repository::subject_key(&cred.body.subject);
                    let shard = d.repo.shard_index(&skey);
                    let payload = encode_publish_payload(d.repo.epoch(), home, tag, cred);
                    d.log_to_shard(shard, &payload);
                }
                RepoEvent::PurgedExpired { now, .. } => {
                    // Replicated to every shard: each segment must know to
                    // re-apply the purge to its own credentials at replay.
                    let payload = encode_payload(d.repo.epoch(), &WalOp::PurgeExpired { now });
                    for shard in 0..d.inner.segments.len() {
                        d.log_to_shard(shard, &payload);
                    }
                }
            })));
            let d = durable.clone();
            bus.set_observer(Some(Arc::new(move |ids: &[String]| {
                let payload = match ids {
                    [id] => encode_payload(d.repo.epoch(), &WalOp::Revoke { id: id.clone() }),
                    many => {
                        encode_payload(d.repo.epoch(), &WalOp::RevokeBatch { ids: many.to_vec() })
                    }
                };
                d.log_bus(&payload);
            })));
        }
        Ok((durable, report))
    }

    fn log_to_shard(&self, shard: usize, payload: &[u8]) {
        match self.inner.append(&self.inner.segments[shard], payload) {
            Ok(true) => {
                if let Err(e) = self.compact_shard(shard) {
                    psf_telemetry::counter!("psf.repo.wal.errors").inc();
                    psf_telemetry::audit::record(
                        psf_telemetry::Decision::Revocation,
                        "",
                        "wal-compact",
                        psf_telemetry::Verdict::Deny,
                    )
                    .detail(format!("shard {shard} auto-compaction failed: {e}"))
                    .commit();
                }
            }
            Ok(false) => {}
            Err(e) => {
                psf_telemetry::counter!("psf.repo.wal.errors").inc();
                psf_telemetry::audit::record(
                    psf_telemetry::Decision::Revocation,
                    "",
                    "wal-append",
                    psf_telemetry::Verdict::Deny,
                )
                .detail(format!("shard {shard} append failed: {e}"))
                .commit();
            }
        }
    }

    fn log_bus(&self, payload: &[u8]) {
        match self.inner.append(&self.inner.bus_segment, payload) {
            Ok(true) => {
                if let Err(e) = self.compact_bus() {
                    psf_telemetry::counter!("psf.repo.wal.errors").inc();
                    psf_telemetry::audit::record(
                        psf_telemetry::Decision::Revocation,
                        "",
                        "wal-compact",
                        psf_telemetry::Verdict::Deny,
                    )
                    .detail(format!("bus auto-compaction failed: {e}"))
                    .commit();
                }
            }
            Ok(false) => {}
            Err(e) => {
                psf_telemetry::counter!("psf.repo.wal.errors").inc();
                psf_telemetry::audit::record(
                    psf_telemetry::Decision::Revocation,
                    "",
                    "wal-append",
                    psf_telemetry::Verdict::Deny,
                )
                .detail(format!("bus append failed: {e}"))
                .commit();
            }
        }
    }

    /// The in-memory sharded repository (shared handle). Mutations
    /// through it are logged transparently.
    pub fn repository(&self) -> &Repository {
        &self.repo
    }

    /// The revocation bus (shared handle). Revocations through it are
    /// logged transparently.
    pub fn bus(&self) -> &RevocationBus {
        &self.bus
    }

    /// The sharded durable directory this repository logs to.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Flush every segment's group-commit buffer and fsync, regardless of
    /// policy.
    pub fn sync(&self) -> std::io::Result<()> {
        for seg in self
            .inner
            .segments
            .iter()
            .chain(std::iter::once(&self.inner.bus_segment))
        {
            let mut w = seg.writer.lock();
            w.flush()?;
            let gen = w.gen;
            seg.flushed_gen.fetch_max(gen, Ordering::Release);
            w.file.sync_data()?;
            seg.synced_gen.fetch_max(gen, Ordering::AcqRel);
            self.inner.fsyncs.fetch_add(1, Ordering::Relaxed);
            psf_telemetry::counter!("psf.repo.wal.fsyncs").inc();
        }
        Ok(())
    }

    /// Compact one shard segment: snapshot that shard's credentials,
    /// rename over its `snapshot.bin`, truncate its log. Other shards'
    /// writers are untouched.
    pub fn compact_shard(&self, shard: usize) -> std::io::Result<CompactReport> {
        let seg = &self.inner.segments[shard];
        let mut w = seg.writer.lock();
        let entries = self.repo.snapshot_shard(shard);
        let epoch = self.repo.epoch();
        let image = encode_snapshot(epoch, &entries, &[]);
        let dropped = Self::swap_snapshot(seg, &mut w, &image)?;
        seg.last_compact_epoch.store(epoch, Ordering::Relaxed);
        psf_telemetry::counter!("psf.repo.wal.snapshot").inc();
        Ok(CompactReport {
            snapshot_entries: entries.len(),
            snapshot_revocations: 0,
            log_bytes_dropped: dropped,
        })
    }

    /// Compact the revocation-bus segment: snapshot the revoked-id set,
    /// truncate the bus log.
    pub fn compact_bus(&self) -> std::io::Result<CompactReport> {
        let seg = &self.inner.bus_segment;
        let mut w = seg.writer.lock();
        let revoked = self.bus.revoked_ids();
        let epoch = self.repo.epoch();
        let image = encode_snapshot(epoch, &[], &revoked);
        let dropped = Self::swap_snapshot(seg, &mut w, &image)?;
        seg.last_compact_epoch.store(epoch, Ordering::Relaxed);
        psf_telemetry::counter!("psf.repo.wal.snapshot").inc();
        Ok(CompactReport {
            snapshot_entries: 0,
            snapshot_revocations: revoked.len(),
            log_bytes_dropped: dropped,
        })
    }

    /// Write `image` as the segment's snapshot (tmp + fsync + rename +
    /// dir fsync), then truncate the segment log. The caller holds the
    /// segment writer lock so no append interleaves with the truncate.
    fn swap_snapshot(seg: &Segment, w: &mut SegmentWriter, image: &[u8]) -> std::io::Result<u64> {
        w.flush()?;
        let tmp = seg.dir.join(SNAPSHOT_TMP);
        let dst = seg.dir.join(SNAPSHOT_FILE);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(image)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &dst)?;
        if let Ok(d) = File::open(&seg.dir) {
            let _ = d.sync_all(); // directory entry durability (best effort)
        }
        let dropped = w.file.seek(SeekFrom::End(0))?;
        w.file.set_len(0)?;
        w.file.seek(SeekFrom::Start(0))?;
        w.file.sync_data()?;
        w.appends_since_compact = 0;
        seg.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(dropped)
    }

    /// Compact every shard segment and the bus segment. Returns the
    /// aggregate report.
    pub fn compact(&self) -> std::io::Result<CompactReport> {
        let mut total = CompactReport {
            snapshot_entries: 0,
            snapshot_revocations: 0,
            log_bytes_dropped: 0,
        };
        for shard in 0..self.inner.segments.len() {
            let r = self.compact_shard(shard)?;
            total.snapshot_entries += r.snapshot_entries;
            total.log_bytes_dropped += r.log_bytes_dropped;
        }
        let r = self.compact_bus()?;
        total.snapshot_revocations = r.snapshot_revocations;
        total.log_bytes_dropped += r.log_bytes_dropped;
        Ok(total)
    }

    /// Live durability counters: per-segment rows plus totals.
    pub fn stats(&self) -> ShardedWalStats {
        let row = |seg: &Segment| -> ShardSegmentStats {
            ShardSegmentStats {
                appends: seg.appends.load(Ordering::Relaxed),
                compactions: seg.compactions.load(Ordering::Relaxed),
                last_compact_epoch: seg.last_compact_epoch.load(Ordering::Relaxed),
                log_bytes: std::fs::metadata(seg.dir.join(LOG_FILE))
                    .map(|m| m.len())
                    .unwrap_or(0),
                snapshot_bytes: std::fs::metadata(seg.dir.join(SNAPSHOT_FILE))
                    .map(|m| m.len())
                    .unwrap_or(0),
            }
        };
        let shards: Vec<ShardSegmentStats> = self.inner.segments.iter().map(row).collect();
        let bus = row(&self.inner.bus_segment);
        ShardedWalStats {
            appends: shards.iter().map(|s| s.appends).sum::<u64>() + bus.appends,
            fsyncs: self.inner.fsyncs.load(Ordering::Relaxed),
            compactions: shards.iter().map(|s| s.compactions).sum::<u64>() + bus.compactions,
            shards,
            bus,
        }
    }

    /// Detach the logging observers (used by tests simulating a crash:
    /// the files stay as-is, the in-memory halves keep working unlogged).
    /// Group-commit buffers are **not** flushed — that is the point of a
    /// simulated crash.
    pub fn detach(&self) {
        self.repo.set_observer(None);
        self.bus.set_observer(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delegation::DelegationBuilder;
    use crate::entity::Entity;

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "psf-wal-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn cred(issuer: &Entity, subject: &Entity, role: &str) -> SignedDelegation {
        DelegationBuilder::new(issuer)
            .subject_entity(subject)
            .role(issuer.role(role))
            .sign()
    }

    fn repo_fingerprint(repo: &Repository) -> Vec<String> {
        repo.all_credentials().iter().map(|c| c.id()).collect()
    }

    #[test]
    fn record_roundtrip_all_kinds() {
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        let ops = [
            WalOp::Publish {
                home: ny.name.clone(),
                tag: DiscoveryTag::Both,
                cred: cred(&ny, &alice, "Member"),
            },
            WalOp::Revoke {
                id: "abc123".into(),
            },
            WalOp::PurgeExpired { now: 42 },
        ];
        let mut log = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            log.extend_from_slice(&frame(&encode_payload(i as u64 + 7, op)));
        }
        let scan = scan_log(&log);
        assert!(scan.corruption.is_none());
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(scan.records[0].epoch, 7);
        assert!(matches!(scan.records[1].op, WalOp::Revoke { ref id } if id == "abc123"));
        assert!(matches!(
            scan.records[2].op,
            WalOp::PurgeExpired { now: 42 }
        ));
    }

    #[test]
    fn empty_log_recovers_empty() {
        let dir = tmpdir("empty");
        let (repo, bus, report) = Repository::recover(&dir).unwrap();
        assert!(repo.is_empty());
        assert_eq!(bus.revoked_count(), 0);
        assert_eq!(report.records_replayed, 0);
        assert_eq!(report.truncated_bytes, 0);
    }

    #[test]
    fn publish_revoke_survive_reopen() {
        let dir = tmpdir("reopen");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        let c = cred(&ny, &alice, "Member");
        let id = c.id();
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            d.repository().publish_at_issuer(c.clone());
            d.bus().revoke(&id);
            d.detach(); // simulate crash: no clean shutdown path exists anyway
        }
        let (d2, report) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(report.records_replayed, 2);
        assert_eq!(report.publishes, 1);
        assert_eq!(report.revocations_restored, 1);
        assert_eq!(d2.repository().len(), 1);
        assert!(d2.bus().is_revoked(&id));
        let found = d2.repository().query_by_subject(&alice.as_subject());
        assert_eq!(found.len(), 1);
        assert_eq!(**found.first().unwrap(), c);
    }

    #[test]
    fn torn_tail_truncated_committed_prefix_survives() {
        let dir = tmpdir("torn");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        let bob = Entity::with_seed("Bob", b"wal");
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            d.repository()
                .publish_at_issuer(cred(&ny, &alice, "Member"));
            d.repository().publish_at_issuer(cred(&ny, &bob, "Member"));
        }
        // Tear the log mid-record: append a partial frame.
        let log = dir.join(LOG_FILE);
        let mut f = OpenOptions::new().append(true).open(&log).unwrap();
        f.write_all(&[0x44, 0x01, 0x00, 0x00, 0xde, 0xad]).unwrap();
        drop(f);
        let before = std::fs::metadata(&log).unwrap().len();

        let (d2, report) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(report.records_replayed, 2);
        assert_eq!(report.truncated_bytes, 6);
        assert_eq!(d2.repository().len(), 2);
        // The torn tail was physically removed.
        let after = std::fs::metadata(&log).unwrap().len();
        assert_eq!(after, before - 6);
    }

    #[test]
    fn corrupt_record_stops_scan_at_checksum() {
        let dir = tmpdir("corrupt");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        let bob = Entity::with_seed("Bob", b"wal");
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            d.repository()
                .publish_at_issuer(cred(&ny, &alice, "Member"));
            d.repository().publish_at_issuer(cred(&ny, &bob, "Member"));
            d.repository().publish_at_issuer(cred(&ny, &bob, "Partner"));
        }
        let log = dir.join(LOG_FILE);
        let mut image = std::fs::read(&log).unwrap();
        let scan = scan_log(&image);
        assert_eq!(scan.records.len(), 3);
        // Flip one payload byte inside the second record.
        let off = scan.records[1].offset as usize + 12;
        image[off] ^= 0xff;
        std::fs::write(&log, &image).unwrap();

        let verify = verify_dir(&dir).unwrap();
        assert_eq!(verify.log_records, 1);
        assert!(verify.truncated_bytes > 0);
        assert!(!verify.is_clean());
        assert!(verify.corruption.unwrap().contains("checksum"));

        let (repo, _, report) = Repository::recover(&dir).unwrap();
        assert_eq!(report.records_replayed, 1);
        assert_eq!(repo.len(), 1);
        // recover() is read-only: the corrupt image is untouched.
        assert_eq!(std::fs::read(&log).unwrap(), image);
    }

    #[test]
    fn snapshot_plus_tail_replay() {
        let dir = tmpdir("snap");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        let bob = Entity::with_seed("Bob", b"wal");
        let carol = Entity::with_seed("Carol", b"wal");
        let c_alice = cred(&ny, &alice, "Member");
        let revoked_id;
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            d.repository().publish_at_issuer(c_alice.clone());
            let c_bob = cred(&ny, &bob, "Member");
            revoked_id = c_bob.id();
            d.repository().publish_at_issuer(c_bob);
            d.bus().revoke(&revoked_id);
            let r = d.compact().unwrap();
            assert_eq!(r.snapshot_entries, 2);
            assert_eq!(r.snapshot_revocations, 1);
            assert_eq!(std::fs::metadata(dir.join(LOG_FILE)).unwrap().len(), 0);
            // Tail after the snapshot.
            d.repository()
                .publish_at_issuer(cred(&ny, &carol, "Partner"));
        }
        let (d2, report) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(report.snapshot_entries, 2);
        assert_eq!(report.snapshot_revocations, 1);
        assert_eq!(report.records_replayed, 1);
        assert_eq!(d2.repository().len(), 3);
        assert!(d2.bus().is_revoked(&revoked_id));
        // Tag reconstruction: alice still findable via directed query.
        d2.repository().reset_stats();
        let found = d2.repository().query_by_subject(&alice.as_subject());
        assert_eq!(found.len(), 1);
        assert_eq!(d2.repository().stats().directed, 1);
    }

    #[test]
    fn snapshot_log_overlap_deduplicated() {
        // Simulate a crash between snapshot rename and log truncation:
        // both cover the same publish.
        let dir = tmpdir("overlap");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            d.repository()
                .publish_at_issuer(cred(&ny, &alice, "Member"));
            let log_before = std::fs::read(dir.join(LOG_FILE)).unwrap();
            d.compact().unwrap();
            // Put the pre-compaction log back (the "un-truncated" state).
            std::fs::write(dir.join(LOG_FILE), &log_before).unwrap();
        }
        let (d2, report) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(report.snapshot_entries, 1);
        assert_eq!(report.duplicates_skipped, 1);
        assert_eq!(d2.repository().len(), 1, "no double-publish");
    }

    #[test]
    fn corrupt_snapshot_ignored_log_still_replayed() {
        let dir = tmpdir("badsnap");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            d.repository()
                .publish_at_issuer(cred(&ny, &alice, "Member"));
            d.compact().unwrap();
            d.repository()
                .publish_at_issuer(cred(&ny, &alice, "Partner"));
        }
        // Corrupt the snapshot body.
        let snap = dir.join(SNAPSHOT_FILE);
        let mut image = std::fs::read(&snap).unwrap();
        let mid = image.len() / 2;
        image[mid] ^= 0xff;
        std::fs::write(&snap, &image).unwrap();

        let (repo, _, report) = Repository::recover(&dir).unwrap();
        assert!(report.snapshot_corrupt);
        assert_eq!(report.snapshot_entries, 0);
        // Only the post-compaction tail survives — the report says so.
        assert_eq!(report.records_replayed, 1);
        assert_eq!(repo.len(), 1);
    }

    #[test]
    fn purge_expired_replays() {
        let dir = tmpdir("purge");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            d.repository()
                .publish_at_issuer(cred(&ny, &alice, "Member"));
            let doomed = DelegationBuilder::new(&ny)
                .subject_entity(&alice)
                .role(ny.role("Guest"))
                .expires(100)
                .sign();
            d.repository().publish_at_issuer(doomed);
            assert_eq!(d.repository().purge_expired(200), 1);
        }
        let (repo, _, report) = Repository::recover(&dir).unwrap();
        assert_eq!(report.purges, 1);
        assert_eq!(repo.len(), 1);
    }

    #[test]
    fn recovered_epoch_strictly_above_logged_epochs() {
        let dir = tmpdir("epoch");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        let logged_epoch;
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            d.repository()
                .publish_at_issuer(cred(&ny, &alice, "Member"));
            logged_epoch = d.repository().epoch();
        }
        let (repo, _, report) = Repository::recover(&dir).unwrap();
        assert!(
            report.epoch > logged_epoch,
            "epoch {} must exceed pre-crash {}",
            report.epoch,
            logged_epoch
        );
        assert_eq!(repo.epoch(), report.epoch);
    }

    #[test]
    fn fsync_policies_all_recover() {
        for policy in [
            FsyncPolicy::Always,
            FsyncPolicy::EveryN(3),
            FsyncPolicy::Never,
        ] {
            let dir = tmpdir("policy");
            let ny = Entity::with_seed("Comp.NY", b"wal");
            let cfg = WalConfig {
                fsync: policy,
                auto_compact_appends: None,
            };
            {
                let (d, _) = DurableRepository::open(&dir, cfg).unwrap();
                for i in 0..5 {
                    let who = Entity::with_seed(format!("U{i}"), b"wal");
                    d.repository().publish_at_issuer(cred(&ny, &who, "Member"));
                }
                let stats = d.stats();
                assert_eq!(stats.appends, 5);
                match policy {
                    FsyncPolicy::Always => assert_eq!(stats.fsyncs, 5),
                    FsyncPolicy::EveryN(3) => assert_eq!(stats.fsyncs, 1),
                    _ => assert_eq!(stats.fsyncs, 0),
                }
            }
            let (repo, _, _) = Repository::recover(&dir).unwrap();
            assert_eq!(repo.len(), 5, "policy {policy:?}");
        }
    }

    #[test]
    fn auto_compaction_triggers_and_recovers() {
        let dir = tmpdir("auto");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let cfg = WalConfig {
            fsync: FsyncPolicy::Never,
            auto_compact_appends: Some(4),
        };
        let oracle_ids;
        {
            let (d, _) = DurableRepository::open(&dir, cfg).unwrap();
            for i in 0..10 {
                let who = Entity::with_seed(format!("U{i}"), b"wal");
                d.repository().publish_at_issuer(cred(&ny, &who, "Member"));
            }
            assert!(d.stats().compactions >= 2, "10 appends / threshold 4");
            oracle_ids = repo_fingerprint(d.repository());
        }
        let (repo, _, _) = Repository::recover(&dir).unwrap();
        assert_eq!(repo_fingerprint(&repo), oracle_ids);
    }

    #[test]
    fn recovered_state_matches_never_crashed_oracle() {
        let dir = tmpdir("oracle");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let oracle_repo = Repository::new();
        let oracle_bus = RevocationBus::new();
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            for i in 0..6 {
                let who = Entity::with_seed(format!("U{i}"), b"wal");
                let c = cred(&ny, &who, "Member");
                oracle_repo.publish_at_issuer(c.clone());
                d.repository().publish_at_issuer(c.clone());
                if i % 2 == 0 {
                    oracle_bus.revoke(&c.id());
                    d.bus().revoke(&c.id());
                }
            }
        }
        let (repo, bus, _) = Repository::recover(&dir).unwrap();
        assert_eq!(repo_fingerprint(&repo), repo_fingerprint(&oracle_repo));
        assert_eq!(bus.revoked_ids(), oracle_bus.revoked_ids());
    }

    #[test]
    fn republished_after_purge_survives_replay() {
        // publish C → purge removes it → publish C again: the recovered
        // repository must hold C (the dedup map forgets purged pairs
        // instead of mistaking the re-publish for a duplicate).
        let dir = tmpdir("repurge");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        let doomed = DelegationBuilder::new(&ny)
            .subject_entity(&alice)
            .role(ny.role("Guest"))
            .expires(100)
            .sign();
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            d.repository().publish_at_issuer(doomed.clone());
            assert_eq!(d.repository().purge_expired(200), 1);
            // Same (home, id) published again after the purge.
            d.repository().publish_at_issuer(doomed.clone());
            assert_eq!(d.repository().len(), 1);
        }
        let (repo, _, report) = Repository::recover(&dir).unwrap();
        assert_eq!(
            report.duplicates_skipped, 0,
            "re-publish is not a duplicate"
        );
        assert_eq!(repo.len(), 1, "re-published credential lost by replay");
    }

    #[test]
    fn revoke_batch_record_roundtrip() {
        let ids: Vec<String> = (0..100).map(|i| format!("id-{i:03}")).collect();
        let log = frame(&encode_payload(5, &WalOp::RevokeBatch { ids: ids.clone() }));
        let scan = scan_log(&log);
        assert!(scan.corruption.is_none());
        assert_eq!(scan.records.len(), 1);
        match &scan.records[0].op {
            WalOp::RevokeBatch { ids: got } => assert_eq!(*got, ids),
            other => panic!("wrong op {other:?}"),
        }
    }

    // -- sharded layout ----------------------------------------------------

    fn sharded_workload(d: &ShardedDurableRepository, ny: &Entity, users: usize) -> Vec<String> {
        let mut revoked = Vec::new();
        for i in 0..users {
            let who = Entity::with_seed(format!("U{i}"), b"swal");
            let c = cred(ny, &who, "Member");
            if i % 3 == 0 {
                revoked.push(c.id());
            }
            d.repository().publish_at_issuer(c);
        }
        d.bus().revoke_all(revoked.iter().map(|s| s.as_str()));
        revoked
    }

    #[test]
    fn sharded_publish_and_batch_revoke_survive_reopen() {
        let dir = tmpdir("sh-reopen");
        let ny = Entity::with_seed("Comp.NY", b"swal");
        let revoked;
        {
            let (d, report) =
                ShardedDurableRepository::open(&dir, 8, WalConfig::default()).unwrap();
            assert_eq!(report.records_replayed, 0);
            revoked = sharded_workload(&d, &ny, 24);
            assert_eq!(d.repository().len(), 24);
            d.detach();
        }
        assert!(is_sharded_dir(&dir));
        let (d2, report) = ShardedDurableRepository::open(&dir, 8, WalConfig::default()).unwrap();
        // 24 publishes spread across shard segments + 1 RevokeBatch frame.
        assert_eq!(report.publishes, 24);
        assert_eq!(report.revocations_restored, revoked.len());
        assert_eq!(d2.repository().len(), 24);
        assert_eq!(d2.repository().shard_count(), 8);
        for id in &revoked {
            assert!(d2.bus().is_revoked(id));
        }
        // Appends spread across more than one shard segment.
        let stats = d2.stats();
        assert_eq!(stats.shards.len(), 8);
        let populated = stats.shards.iter().filter(|s| s.log_bytes > 0).count();
        assert!(populated > 1, "24 subjects must span multiple segments");
        assert!(
            stats.bus.log_bytes > 0,
            "RevokeBatch landed in the bus segment"
        );
    }

    #[test]
    fn sharded_meta_overrides_requested_count() {
        let dir = tmpdir("sh-meta");
        {
            let (d, _) = ShardedDurableRepository::open(&dir, 4, WalConfig::default()).unwrap();
            assert_eq!(d.repository().shard_count(), 4);
        }
        // Reopen asking for a different count: disk wins.
        let (d2, _) = ShardedDurableRepository::open(&dir, 64, WalConfig::default()).unwrap();
        assert_eq!(d2.repository().shard_count(), 4);
    }

    #[test]
    fn sharded_torn_shard_tail_truncated_others_survive() {
        let dir = tmpdir("sh-torn");
        let ny = Entity::with_seed("Comp.NY", b"swal");
        {
            let (d, _) = ShardedDurableRepository::open(&dir, 4, WalConfig::default()).unwrap();
            sharded_workload(&d, &ny, 16);
        }
        // Tear one populated shard's log mid-record.
        let victim = (0..4)
            .map(|i| dir.join(shard_dir_name(i)).join(LOG_FILE))
            .find(|p| std::fs::metadata(p).map(|m| m.len() > 0).unwrap_or(false))
            .expect("some shard holds records");
        let image = std::fs::read(&victim).unwrap();
        let scan = scan_log(&image);
        let whole = scan.records.len();
        assert!(whole >= 1);
        // Cut into the last record's body.
        std::fs::write(&victim, &image[..image.len() - 3]).unwrap();

        let verify = verify_sharded_dir(&dir).unwrap();
        assert!(!verify.is_clean());
        assert_eq!(verify.damaged().len(), 1);

        let (d2, report) = ShardedDurableRepository::open(&dir, 4, WalConfig::default()).unwrap();
        assert!(report.truncated_bytes > 0);
        assert_eq!(report.publishes, 15, "only the torn record is lost");
        assert_eq!(d2.repository().len(), 15);
        // The torn tail was physically removed: directory is clean now.
        drop(d2);
        assert!(verify_sharded_dir(&dir).unwrap().is_clean());
    }

    #[test]
    fn sharded_compact_and_reopen_matches_oracle() {
        let dir = tmpdir("sh-compact");
        let ny = Entity::with_seed("Comp.NY", b"swal");
        let oracle_ids;
        let revoked;
        {
            let (d, _) = ShardedDurableRepository::open(&dir, 8, WalConfig::default()).unwrap();
            revoked = sharded_workload(&d, &ny, 20);
            let r = d.compact().unwrap();
            assert_eq!(r.snapshot_entries, 20);
            assert_eq!(r.snapshot_revocations, revoked.len());
            // Every shard log is now empty; publish a post-snapshot tail.
            let carol = Entity::with_seed("Carol", b"swal");
            d.repository()
                .publish_at_issuer(cred(&ny, &carol, "Partner"));
            oracle_ids = repo_fingerprint(d.repository());
        }
        let (repo, bus, report) = Repository::recover_sharded(&dir).unwrap();
        assert_eq!(report.snapshot_entries, 20);
        assert_eq!(report.records_replayed, 1, "only the tail replays");
        assert_eq!(repo_fingerprint(&repo), oracle_ids);
        for id in &revoked {
            assert!(bus.is_revoked(id));
        }
    }

    #[test]
    fn sharded_purge_replicates_to_all_segments() {
        let dir = tmpdir("sh-purge");
        let ny = Entity::with_seed("Comp.NY", b"swal");
        {
            let (d, _) = ShardedDurableRepository::open(&dir, 4, WalConfig::default()).unwrap();
            for i in 0..12 {
                let who = Entity::with_seed(format!("U{i}"), b"swal");
                let mut b = DelegationBuilder::new(&ny)
                    .subject_entity(&who)
                    .role(ny.role("Member"));
                if i % 2 == 0 {
                    b = b.expires(100);
                }
                d.repository().publish_at_issuer(b.sign());
            }
            assert_eq!(d.repository().purge_expired(150), 6);
            assert_eq!(d.repository().len(), 6);
        }
        let (repo, _, report) = Repository::recover_sharded(&dir).unwrap();
        // One purge record per shard segment.
        assert_eq!(report.purges, 4);
        assert_eq!(repo.len(), 6);
    }

    #[test]
    fn sharded_group_commit_flushes_on_sync() {
        let dir = tmpdir("sh-group");
        let ny = Entity::with_seed("Comp.NY", b"swal");
        let cfg = WalConfig {
            fsync: FsyncPolicy::Never,
            auto_compact_appends: None,
        };
        {
            let (d, _) = ShardedDurableRepository::open(&dir, 4, cfg).unwrap();
            sharded_workload(&d, &ny, 10);
            // Buffered frames are not in the files yet (well under the
            // 64 KiB group threshold)...
            let on_disk: u64 = d.stats().shards.iter().map(|s| s.log_bytes).sum();
            assert_eq!(on_disk, 0, "group commit buffers in memory");
            // ...until an explicit sync.
            d.sync().unwrap();
            let on_disk: u64 = d.stats().shards.iter().map(|s| s.log_bytes).sum();
            assert!(on_disk > 0);
        }
        let (repo, _, _) = Repository::recover_sharded(&dir).unwrap();
        assert_eq!(repo.len(), 10);
    }

    #[test]
    fn sharded_republished_after_purge_survives_replay() {
        let dir = tmpdir("sh-repurge");
        let ny = Entity::with_seed("Comp.NY", b"swal");
        let alice = Entity::with_seed("Alice", b"swal");
        let doomed = DelegationBuilder::new(&ny)
            .subject_entity(&alice)
            .role(ny.role("Guest"))
            .expires(100)
            .sign();
        {
            let (d, _) = ShardedDurableRepository::open(&dir, 4, WalConfig::default()).unwrap();
            d.repository().publish_at_issuer(doomed.clone());
            assert_eq!(d.repository().purge_expired(200), 1);
            d.repository().publish_at_issuer(doomed.clone());
        }
        let (repo, _, report) = Repository::recover_sharded(&dir).unwrap();
        assert_eq!(report.duplicates_skipped, 0);
        assert_eq!(repo.len(), 1);
    }
}
