//! Durable write-ahead log for the credential repository.
//!
//! The in-memory sharded [`Repository`] loses every published delegation —
//! and, worse, every revocation — on a crash: a restarted node would
//! silently re-trust revoked credentials. This module makes the trust
//! plane crash-safe, in the spirit of SAFE's durable linked-credential
//! store (Thummala & Chase): every repository mutation is appended to an
//! on-disk log *before* the caller regains control, and
//! [`DurableRepository::open`] replays the log (plus the latest snapshot)
//! to rebuild the exact pre-crash authorization state.
//!
//! ## Record format
//!
//! The log is a sequence of self-delimiting frames:
//!
//! ```text
//! [u32 len][u32 crc32][payload]          len, crc little-endian
//! payload = [u64 epoch][u8 kind][body]   crc covers the whole payload
//! ```
//!
//! Kinds: `1` **Publish** (`u32`-prefixed home string, one tag byte,
//! credential in [`SignedDelegation::to_wire`] framing), `2` **Revoke**
//! (`u32`-prefixed credential id), `3` **PurgeExpired** (`u64` purge
//! time). The epoch tag is the repository's mutation epoch at append
//! time; recovery raises the rebuilt repository's epoch to the maximum
//! seen and then bumps it once more, so any negative proof-cache entry
//! pinned to a pre-crash epoch can never be mistaken for current.
//!
//! ## Torn writes, duplicates, ordering
//!
//! A crash mid-append leaves a torn tail. Recovery scans the log
//! front-to-back and stops at the first frame whose header, length, CRC,
//! or payload fails to decode; everything before is replayed, everything
//! after is truncated (physically, by [`DurableRepository::open`];
//! [`Repository::recover`] and [`verify_dir`] are read-only and never
//! modify the files). Replay is duplicate-tolerant — a crash between
//! snapshot rename and log truncation leaves both covering the same
//! records, and `(home, credential-id)` dedup makes the overlap
//! harmless — and out-of-order-revoke tolerant (a `Revoke` for an id the
//! log never publishes still lands in the bus).
//!
//! ## Snapshots & compaction
//!
//! [`DurableRepository::compact`] writes the full repository + revocation
//! state to `snapshot.tmp`, fsyncs, renames it over `snapshot.bin`,
//! fsyncs the directory, and only then truncates the log. The snapshot
//! carries a trailing CRC32 over its entire contents; a corrupt snapshot
//! (torn rename on a filesystem without atomic rename durability) is
//! ignored at recovery and reported in the [`RecoveryReport`].

use crate::delegation::SignedDelegation;
use crate::entity::EntityName;
use crate::repository::{DiscoveryTag, RepoEvent, Repository};
use crate::revocation::RevocationBus;
use crate::wire::Reader;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Log file name inside a durable repository directory.
pub const LOG_FILE: &str = "delegations.wal";
/// Snapshot file name inside a durable repository directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Temporary snapshot name (renamed over [`SNAPSHOT_FILE`] when complete).
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";

const SNAPSHOT_MAGIC: &[u8; 11] = b"PSF-SNAP-v1";
/// Upper bound on a single record's payload; anything larger is treated
/// as corruption (a credential is ~200 bytes, so this is generous).
const MAX_RECORD_LEN: u32 = 1 << 24;

const KIND_PUBLISH: u8 = 1;
const KIND_REVOKE: u8 = 2;
const KIND_PURGE: u8 = 3;

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected 0xEDB88320) — table built at compile time so the
// log needs no external checksum crate.
// ---------------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC32 (IEEE 802.3 polynomial) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// A decoded log operation.
// Publish dominates real logs, so boxing its credential would add an
// allocation per replayed record to shrink the rare Revoke/Purge variants.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum WalOp {
    /// A credential published at `home` with discovery tags `tag`.
    Publish {
        /// The home node the credential was stored at.
        home: EntityName,
        /// Its discovery tags.
        tag: DiscoveryTag,
        /// The credential itself.
        cred: SignedDelegation,
    },
    /// A credential id revoked.
    Revoke {
        /// The revoked credential id.
        id: String,
    },
    /// An expiry sweep at time `now`.
    PurgeExpired {
        /// The purge evaluation time.
        now: u64,
    },
}

/// One valid record found by [`scan_log`].
#[derive(Debug, Clone)]
pub struct ScannedRecord {
    /// Byte offset of the record's frame header in the log.
    pub offset: u64,
    /// Repository epoch at append time.
    pub epoch: u64,
    /// The operation.
    pub op: WalOp,
}

/// Result of scanning a log image front-to-back.
#[derive(Debug)]
pub struct LogScan {
    /// Every record up to the first corruption (or the end).
    pub records: Vec<ScannedRecord>,
    /// Bytes covered by valid records; the log's recoverable prefix.
    pub valid_bytes: u64,
    /// Bytes past the valid prefix (torn tail / corruption).
    pub truncated_bytes: u64,
    /// Why the scan stopped early, if it did.
    pub corruption: Option<String>,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn encode_payload(epoch: u64, op: &WalOp) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&epoch.to_le_bytes());
    match op {
        WalOp::Publish { home, tag, cred } => {
            out.push(KIND_PUBLISH);
            put_str(&mut out, &home.0);
            out.push(tag.to_byte());
            out.extend_from_slice(&cred.to_wire());
        }
        WalOp::Revoke { id } => {
            out.push(KIND_REVOKE);
            put_str(&mut out, id);
        }
        WalOp::PurgeExpired { now } => {
            out.push(KIND_PURGE);
            out.extend_from_slice(&now.to_le_bytes());
        }
    }
    out
}

/// Frame a payload: `[u32 len][u32 crc][payload]`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn decode_payload(payload: &[u8]) -> Result<(u64, WalOp), String> {
    let mut r = Reader::new(payload);
    let epoch = r.u64().map_err(|e| e.to_string())?;
    let kind = r.u8().map_err(|e| e.to_string())?;
    let op = match kind {
        KIND_PUBLISH => {
            let home = r.string().map_err(|e| e.to_string())?;
            let tag = DiscoveryTag::from_byte(r.u8().map_err(|e| e.to_string())?)
                .ok_or_else(|| "bad discovery tag".to_string())?;
            let cred = SignedDelegation::from_wire(&mut r).map_err(|e| e.to_string())?;
            WalOp::Publish {
                home: EntityName(home),
                tag,
                cred,
            }
        }
        KIND_REVOKE => WalOp::Revoke {
            id: r.string().map_err(|e| e.to_string())?,
        },
        KIND_PURGE => WalOp::PurgeExpired {
            now: r.u64().map_err(|e| e.to_string())?,
        },
        k => return Err(format!("unknown record kind {k}")),
    };
    if !r.finished() {
        return Err("trailing bytes in record payload".into());
    }
    Ok((epoch, op))
}

/// Scan a log image front-to-back, stopping at the first frame whose
/// header, length, CRC, or payload fails to decode. Everything before the
/// stop point is returned as valid records; everything after is the torn
/// tail.
pub fn scan_log(buf: &[u8]) -> LogScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut corruption = None;
    while pos < buf.len() {
        if pos + 8 > buf.len() {
            corruption = Some("truncated frame header".into());
            break;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len == 0 || len > MAX_RECORD_LEN {
            corruption = Some(format!("implausible record length {len}"));
            break;
        }
        let end = pos + 8 + len as usize;
        if end > buf.len() {
            corruption = Some("truncated record body".into());
            break;
        }
        let payload = &buf[pos + 8..end];
        if crc32(payload) != crc {
            corruption = Some(format!("checksum mismatch at offset {pos}"));
            break;
        }
        match decode_payload(payload) {
            Ok((epoch, op)) => records.push(ScannedRecord {
                offset: pos as u64,
                epoch,
                op,
            }),
            Err(e) => {
                corruption = Some(format!("undecodable record at offset {pos}: {e}"));
                break;
            }
        }
        pos = end;
    }
    LogScan {
        valid_bytes: pos as u64,
        truncated_bytes: (buf.len() - pos) as u64,
        records,
        corruption,
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// A decoded snapshot: the full repository + revocation state at the
/// moment of the last compaction.
#[derive(Debug, Default)]
pub struct Snapshot {
    /// Repository epoch when the snapshot was taken.
    pub epoch: u64,
    /// `(home, tag, credential)` entries, in compaction order.
    pub entries: Vec<(EntityName, DiscoveryTag, SignedDelegation)>,
    /// Revoked credential ids.
    pub revoked: Vec<String>,
}

fn encode_snapshot(
    epoch: u64,
    entries: &[(EntityName, DiscoveryTag, Arc<SignedDelegation>)],
    revoked: &[String],
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (home, tag, cred) in entries {
        put_str(&mut out, &home.0);
        out.push(tag.to_byte());
        out.extend_from_slice(&cred.to_wire());
    }
    out.extend_from_slice(&(revoked.len() as u32).to_le_bytes());
    for id in revoked {
        put_str(&mut out, id);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode_snapshot(buf: &[u8]) -> Result<Snapshot, String> {
    if buf.len() < SNAPSHOT_MAGIC.len() + 4 {
        return Err("snapshot too short".into());
    }
    let (body, crc_bytes) = buf.split_at(buf.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != stored {
        return Err("snapshot checksum mismatch".into());
    }
    if &body[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err("bad snapshot magic".into());
    }
    let mut r = Reader::new(&body[SNAPSHOT_MAGIC.len()..]);
    let epoch = r.u64().map_err(|e| e.to_string())?;
    let n = r.u32().map_err(|e| e.to_string())? as usize;
    if n > 1 << 24 {
        return Err("implausible snapshot entry count".into());
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let home = r.string().map_err(|e| e.to_string())?;
        let tag = DiscoveryTag::from_byte(r.u8().map_err(|e| e.to_string())?)
            .ok_or_else(|| "bad discovery tag".to_string())?;
        let cred = SignedDelegation::from_wire(&mut r).map_err(|e| e.to_string())?;
        entries.push((EntityName(home), tag, cred));
    }
    let m = r.u32().map_err(|e| e.to_string())? as usize;
    if m > 1 << 24 {
        return Err("implausible snapshot revocation count".into());
    }
    let mut revoked = Vec::with_capacity(m);
    for _ in 0..m {
        revoked.push(r.string().map_err(|e| e.to_string())?);
    }
    if !r.finished() {
        return Err("trailing bytes in snapshot".into());
    }
    Ok(Snapshot {
        epoch,
        entries,
        revoked,
    })
}

enum SnapshotLoad {
    Missing,
    Corrupt(String),
    Loaded(Snapshot),
}

fn load_snapshot(path: &Path) -> std::io::Result<SnapshotLoad> {
    match std::fs::read(path) {
        Ok(buf) => Ok(match decode_snapshot(&buf) {
            Ok(s) => SnapshotLoad::Loaded(s),
            Err(e) => SnapshotLoad::Corrupt(e),
        }),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(SnapshotLoad::Missing),
        Err(e) => Err(e),
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// When the log file is fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append: a record is durable before the mutating
    /// call returns. The only policy under which "committed" in the
    /// acceptance sense — survives `kill -9` — is guaranteed.
    Always,
    /// fsync every N appends: bounded loss window, much cheaper.
    EveryN(u32),
    /// Never fsync explicitly; the OS flushes when it pleases. Survives
    /// process crashes (the page cache persists) but not power loss.
    Never,
}

/// Durability configuration for [`DurableRepository::open`].
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Fsync policy for log appends.
    pub fsync: FsyncPolicy,
    /// Compact (snapshot + truncate) automatically once this many records
    /// have been appended since the last compaction. `None` = manual
    /// compaction only.
    pub auto_compact_appends: Option<u64>,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            fsync: FsyncPolicy::Always,
            auto_compact_appends: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// What recovery found and did.
#[derive(Debug, Default, Clone)]
pub struct RecoveryReport {
    /// Credentials restored from the snapshot.
    pub snapshot_entries: usize,
    /// Revocations restored from the snapshot.
    pub snapshot_revocations: usize,
    /// True when a snapshot file existed but failed its checksum and was
    /// ignored (the log alone was replayed).
    pub snapshot_corrupt: bool,
    /// Log records replayed (after the snapshot).
    pub records_replayed: usize,
    /// Publish records applied (excluding duplicates).
    pub publishes: usize,
    /// Revocations restored to the bus, across snapshot and log.
    pub revocations_restored: usize,
    /// PurgeExpired records re-applied.
    pub purges: usize,
    /// Publish records skipped because the same `(home, credential-id)`
    /// was already present (snapshot/log overlap after a crash between
    /// snapshot rename and log truncation).
    pub duplicates_skipped: usize,
    /// Torn-tail bytes discarded from the end of the log.
    pub truncated_bytes: u64,
    /// Valid log bytes retained.
    pub log_bytes: u64,
    /// The repository's epoch after recovery (max seen, plus one).
    pub epoch: u64,
}

/// What a compaction wrote and dropped.
#[derive(Debug, Clone, Copy)]
pub struct CompactReport {
    /// Credentials written to the snapshot.
    pub snapshot_entries: usize,
    /// Revocation ids written to the snapshot.
    pub snapshot_revocations: usize,
    /// Log bytes truncated away.
    pub log_bytes_dropped: u64,
}

/// Read-only integrity report from [`verify_dir`].
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Whether a snapshot file exists.
    pub snapshot_present: bool,
    /// Whether the snapshot failed its checksum.
    pub snapshot_corrupt: bool,
    /// Credentials in the snapshot (0 when absent/corrupt).
    pub snapshot_entries: usize,
    /// Revocation ids in the snapshot.
    pub snapshot_revocations: usize,
    /// Valid records in the log.
    pub log_records: usize,
    /// Bytes covered by valid records.
    pub valid_bytes: u64,
    /// Torn/corrupt bytes past the valid prefix.
    pub truncated_bytes: u64,
    /// Why the log scan stopped early, if it did.
    pub corruption: Option<String>,
}

impl VerifyReport {
    /// True when the directory recovers with zero data loss: no torn
    /// tail, no corrupt snapshot.
    pub fn is_clean(&self) -> bool {
        self.truncated_bytes == 0 && !self.snapshot_corrupt
    }
}

/// Live counters for a [`DurableRepository`].
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStats {
    /// Records appended since open.
    pub appends: u64,
    /// Explicit fsyncs issued since open.
    pub fsyncs: u64,
    /// Compactions performed since open.
    pub compactions: u64,
    /// Current log file size in bytes.
    pub log_bytes: u64,
    /// Current snapshot file size in bytes (0 when absent).
    pub snapshot_bytes: u64,
}

// ---------------------------------------------------------------------------
// Replay (shared by open() and Repository::recover())
// ---------------------------------------------------------------------------

fn replay(
    dir: &Path,
    repo: &Repository,
    bus: &RevocationBus,
) -> std::io::Result<(RecoveryReport, LogScan)> {
    let mut report = RecoveryReport::default();
    let mut max_epoch = 0u64;
    // (home, credential-id) pairs already applied — dedup for
    // snapshot/log overlap and replayed double-publishes.
    let mut seen: HashSet<(String, String)> = HashSet::new();

    match load_snapshot(&dir.join(SNAPSHOT_FILE))? {
        SnapshotLoad::Missing => {}
        SnapshotLoad::Corrupt(reason) => {
            report.snapshot_corrupt = true;
            psf_telemetry::audit::record(
                psf_telemetry::Decision::Revocation,
                "",
                "wal-snapshot",
                psf_telemetry::Verdict::Deny,
            )
            .detail(format!("snapshot ignored: {reason}"))
            .commit();
        }
        SnapshotLoad::Loaded(snap) => {
            max_epoch = max_epoch.max(snap.epoch);
            for (home, tag, cred) in snap.entries {
                seen.insert((home.0.clone(), cred.id()));
                repo.publish(home, cred, tag);
                report.snapshot_entries += 1;
            }
            report.snapshot_revocations = snap.revoked.len();
            report.revocations_restored += bus.restore(&snap.revoked);
        }
    }

    let log_image = match std::fs::read(dir.join(LOG_FILE)) {
        Ok(buf) => buf,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let scan = scan_log(&log_image);
    for rec in &scan.records {
        max_epoch = max_epoch.max(rec.epoch);
        match &rec.op {
            WalOp::Publish { home, tag, cred } => {
                if seen.insert((home.0.clone(), cred.id())) {
                    repo.publish(home.clone(), cred.clone(), *tag);
                    report.publishes += 1;
                } else {
                    report.duplicates_skipped += 1;
                }
            }
            WalOp::Revoke { id } => {
                report.revocations_restored += bus.restore([id.as_str()]);
            }
            WalOp::PurgeExpired { now } => {
                repo.purge_expired(*now);
                report.purges += 1;
            }
        }
    }
    report.records_replayed = scan.records.len();
    report.truncated_bytes = scan.truncated_bytes;
    report.log_bytes = scan.valid_bytes;

    // Epoch monotonicity across the crash: never below anything a cache
    // may have pinned, and strictly above it so stale negative entries die.
    repo.raise_epoch(max_epoch);
    report.epoch = repo.bump_epoch();

    psf_telemetry::counter!("psf.repo.wal.replays").add(report.records_replayed as u64);
    psf_telemetry::counter!("psf.repo.wal.truncated_bytes").add(report.truncated_bytes);
    Ok((report, scan))
}

impl Repository {
    /// Rebuild a repository (and its revocation bus) from a durable
    /// directory, **read-only**: the snapshot and log are scanned and
    /// replayed but never modified — a torn tail is skipped, not
    /// truncated. Use [`DurableRepository::open`] to recover *and* keep
    /// logging.
    pub fn recover(dir: &Path) -> std::io::Result<(Repository, RevocationBus, RecoveryReport)> {
        let repo = Repository::new();
        let bus = RevocationBus::new();
        let (report, _) = replay(dir, &repo, &bus)?;
        Ok((repo, bus, report))
    }
}

/// Read-only integrity check of a durable repository directory — scans
/// the snapshot and log without replaying or modifying anything. Backs
/// `psf repo --verify`.
pub fn verify_dir(dir: &Path) -> std::io::Result<VerifyReport> {
    let (snapshot_present, snapshot_corrupt, snapshot_entries, snapshot_revocations) =
        match load_snapshot(&dir.join(SNAPSHOT_FILE))? {
            SnapshotLoad::Missing => (false, false, 0, 0),
            SnapshotLoad::Corrupt(_) => (true, true, 0, 0),
            SnapshotLoad::Loaded(s) => (true, false, s.entries.len(), s.revoked.len()),
        };
    let log_image = match std::fs::read(dir.join(LOG_FILE)) {
        Ok(buf) => buf,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let scan = scan_log(&log_image);
    Ok(VerifyReport {
        snapshot_present,
        snapshot_corrupt,
        snapshot_entries,
        snapshot_revocations,
        log_records: scan.records.len(),
        valid_bytes: scan.valid_bytes,
        truncated_bytes: scan.truncated_bytes,
        corruption: scan.corruption,
    })
}

// ---------------------------------------------------------------------------
// DurableRepository
// ---------------------------------------------------------------------------

struct WalWriter {
    file: File,
    unsynced: u32,
    appends_since_compact: u64,
}

struct WalInner {
    dir: PathBuf,
    config: WalConfig,
    writer: Mutex<WalWriter>,
    appends: AtomicU64,
    fsyncs: AtomicU64,
    compactions: AtomicU64,
}

impl WalInner {
    /// Append one framed payload. Returns true when the auto-compaction
    /// threshold was crossed (the caller compacts *after* releasing the
    /// writer lock — compaction re-takes it).
    fn append(&self, payload: &[u8]) -> std::io::Result<bool> {
        let framed = frame(payload);
        let mut w = self.writer.lock();
        w.file.write_all(&framed)?;
        self.appends.fetch_add(1, Ordering::Relaxed);
        psf_telemetry::counter!("psf.repo.wal.appends").inc();
        w.unsynced += 1;
        let sync = match self.config.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => w.unsynced >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if sync {
            w.file.sync_data()?;
            w.unsynced = 0;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
            psf_telemetry::counter!("psf.repo.wal.fsyncs").inc();
        }
        w.appends_since_compact += 1;
        Ok(match self.config.auto_compact_appends {
            Some(n) if n > 0 => w.appends_since_compact >= n,
            _ => false,
        })
    }
}

/// A [`Repository`] + [`RevocationBus`] pair whose every mutation is
/// appended to a crash-safe write-ahead log. The repository and bus are
/// the ordinary in-memory types — guards, deployers, supervisors, and
/// proof engines use them unchanged; durability rides on the observer
/// hooks and is invisible to the rest of the stack.
#[derive(Clone)]
pub struct DurableRepository {
    repo: Repository,
    bus: RevocationBus,
    inner: Arc<WalInner>,
}

impl DurableRepository {
    /// Open (or create) a durable repository directory: replay
    /// snapshot + log into a fresh repository/bus pair, physically
    /// truncate any torn tail, then attach the logging observers so
    /// subsequent mutations are appended. Returns the handle and the
    /// recovery report.
    pub fn open(
        dir: &Path,
        config: WalConfig,
    ) -> std::io::Result<(DurableRepository, RecoveryReport)> {
        std::fs::create_dir_all(dir)?;
        let repo = Repository::new();
        let bus = RevocationBus::new();
        let (report, scan) = replay(dir, &repo, &bus)?;

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(LOG_FILE))?;
        if scan.truncated_bytes > 0 {
            // Physically drop the torn tail so future appends start at a
            // record boundary.
            file.set_len(scan.valid_bytes)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;

        let inner = Arc::new(WalInner {
            dir: dir.to_path_buf(),
            config,
            writer: Mutex::new(WalWriter {
                file,
                unsynced: 0,
                appends_since_compact: 0,
            }),
            appends: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        });

        let durable = DurableRepository {
            repo: repo.clone(),
            bus: bus.clone(),
            inner,
        };

        // Attach observers only now — replay must not re-log itself.
        {
            let d = durable.clone();
            repo.set_observer(Some(Arc::new(move |ev: RepoEvent<'_>| {
                let payload = match ev {
                    RepoEvent::Published { home, cred, tag } => encode_payload(
                        d.repo.epoch(),
                        &WalOp::Publish {
                            home: home.clone(),
                            tag,
                            cred: (**cred).clone(),
                        },
                    ),
                    RepoEvent::PurgedExpired { now, .. } => {
                        encode_payload(d.repo.epoch(), &WalOp::PurgeExpired { now })
                    }
                };
                d.log_payload(&payload);
            })));
            let d = durable.clone();
            bus.set_observer(Some(Arc::new(move |id: &str| {
                let payload = encode_payload(d.repo.epoch(), &WalOp::Revoke { id: id.to_string() });
                d.log_payload(&payload);
            })));
        }
        Ok((durable, report))
    }

    fn log_payload(&self, payload: &[u8]) {
        match self.inner.append(payload) {
            Ok(true) => {
                if let Err(e) = self.compact() {
                    psf_telemetry::counter!("psf.repo.wal.errors").inc();
                    psf_telemetry::audit::record(
                        psf_telemetry::Decision::Revocation,
                        "",
                        "wal-compact",
                        psf_telemetry::Verdict::Deny,
                    )
                    .detail(format!("auto-compaction failed: {e}"))
                    .commit();
                }
            }
            Ok(false) => {}
            Err(e) => {
                // The in-memory mutation already happened; all we can do
                // is surface the durability gap loudly.
                psf_telemetry::counter!("psf.repo.wal.errors").inc();
                psf_telemetry::audit::record(
                    psf_telemetry::Decision::Revocation,
                    "",
                    "wal-append",
                    psf_telemetry::Verdict::Deny,
                )
                .detail(format!("append failed: {e}"))
                .commit();
            }
        }
    }

    /// The in-memory repository (shared handle). Mutations through it are
    /// logged transparently.
    pub fn repository(&self) -> &Repository {
        &self.repo
    }

    /// The revocation bus (shared handle). Revocations through it are
    /// logged transparently.
    pub fn bus(&self) -> &RevocationBus {
        &self.bus
    }

    /// The durable directory this repository logs to.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Force an fsync of the log regardless of policy.
    pub fn sync(&self) -> std::io::Result<()> {
        let mut w = self.inner.writer.lock();
        w.file.sync_data()?;
        w.unsynced = 0;
        self.inner.fsyncs.fetch_add(1, Ordering::Relaxed);
        psf_telemetry::counter!("psf.repo.wal.fsyncs").inc();
        Ok(())
    }

    /// Snapshot the full repository + revocation state and truncate the
    /// log: write `snapshot.tmp`, fsync, rename over `snapshot.bin`,
    /// fsync the directory, then truncate the log to zero. A crash at any
    /// point leaves a recoverable directory (the snapshot/log overlap
    /// after an un-truncated rename is absorbed by replay dedup).
    pub fn compact(&self) -> std::io::Result<CompactReport> {
        // Writer lock held for the whole operation: no appends interleave
        // with the truncate. Observers fire outside repository locks, so
        // reading snapshot state here cannot deadlock with a publisher.
        let mut w = self.inner.writer.lock();
        let entries = self.repo.snapshot_entries();
        let revoked = self.bus.revoked_ids();
        let image = encode_snapshot(self.repo.epoch(), &entries, &revoked);

        let tmp = self.inner.dir.join(SNAPSHOT_TMP);
        let dst = self.inner.dir.join(SNAPSHOT_FILE);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&image)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &dst)?;
        if let Ok(d) = File::open(&self.inner.dir) {
            let _ = d.sync_all(); // directory entry durability (best effort)
        }

        let dropped = w.file.seek(SeekFrom::End(0))?;
        w.file.set_len(0)?;
        w.file.seek(SeekFrom::Start(0))?;
        w.file.sync_data()?;
        w.unsynced = 0;
        w.appends_since_compact = 0;

        self.inner.compactions.fetch_add(1, Ordering::Relaxed);
        psf_telemetry::counter!("psf.repo.wal.snapshot").inc();
        Ok(CompactReport {
            snapshot_entries: entries.len(),
            snapshot_revocations: revoked.len(),
            log_bytes_dropped: dropped,
        })
    }

    /// Live durability counters + current file sizes.
    pub fn stats(&self) -> WalStats {
        let log_bytes = std::fs::metadata(self.inner.dir.join(LOG_FILE))
            .map(|m| m.len())
            .unwrap_or(0);
        let snapshot_bytes = std::fs::metadata(self.inner.dir.join(SNAPSHOT_FILE))
            .map(|m| m.len())
            .unwrap_or(0);
        WalStats {
            appends: self.inner.appends.load(Ordering::Relaxed),
            fsyncs: self.inner.fsyncs.load(Ordering::Relaxed),
            compactions: self.inner.compactions.load(Ordering::Relaxed),
            log_bytes,
            snapshot_bytes,
        }
    }

    /// Detach the logging observers (used by tests simulating a crash:
    /// the files stay as-is, the in-memory halves keep working unlogged).
    pub fn detach(&self) {
        self.repo.set_observer(None);
        self.bus.set_observer(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delegation::DelegationBuilder;
    use crate::entity::Entity;

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "psf-wal-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn cred(issuer: &Entity, subject: &Entity, role: &str) -> SignedDelegation {
        DelegationBuilder::new(issuer)
            .subject_entity(subject)
            .role(issuer.role(role))
            .sign()
    }

    fn repo_fingerprint(repo: &Repository) -> Vec<String> {
        repo.all_credentials().iter().map(|c| c.id()).collect()
    }

    #[test]
    fn record_roundtrip_all_kinds() {
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        let ops = [
            WalOp::Publish {
                home: ny.name.clone(),
                tag: DiscoveryTag::Both,
                cred: cred(&ny, &alice, "Member"),
            },
            WalOp::Revoke {
                id: "abc123".into(),
            },
            WalOp::PurgeExpired { now: 42 },
        ];
        let mut log = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            log.extend_from_slice(&frame(&encode_payload(i as u64 + 7, op)));
        }
        let scan = scan_log(&log);
        assert!(scan.corruption.is_none());
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(scan.records[0].epoch, 7);
        assert!(matches!(scan.records[1].op, WalOp::Revoke { ref id } if id == "abc123"));
        assert!(matches!(
            scan.records[2].op,
            WalOp::PurgeExpired { now: 42 }
        ));
    }

    #[test]
    fn empty_log_recovers_empty() {
        let dir = tmpdir("empty");
        let (repo, bus, report) = Repository::recover(&dir).unwrap();
        assert!(repo.is_empty());
        assert_eq!(bus.revoked_count(), 0);
        assert_eq!(report.records_replayed, 0);
        assert_eq!(report.truncated_bytes, 0);
    }

    #[test]
    fn publish_revoke_survive_reopen() {
        let dir = tmpdir("reopen");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        let c = cred(&ny, &alice, "Member");
        let id = c.id();
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            d.repository().publish_at_issuer(c.clone());
            d.bus().revoke(&id);
            d.detach(); // simulate crash: no clean shutdown path exists anyway
        }
        let (d2, report) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(report.records_replayed, 2);
        assert_eq!(report.publishes, 1);
        assert_eq!(report.revocations_restored, 1);
        assert_eq!(d2.repository().len(), 1);
        assert!(d2.bus().is_revoked(&id));
        let found = d2.repository().query_by_subject(&alice.as_subject());
        assert_eq!(found.len(), 1);
        assert_eq!(**found.first().unwrap(), c);
    }

    #[test]
    fn torn_tail_truncated_committed_prefix_survives() {
        let dir = tmpdir("torn");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        let bob = Entity::with_seed("Bob", b"wal");
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            d.repository()
                .publish_at_issuer(cred(&ny, &alice, "Member"));
            d.repository().publish_at_issuer(cred(&ny, &bob, "Member"));
        }
        // Tear the log mid-record: append a partial frame.
        let log = dir.join(LOG_FILE);
        let mut f = OpenOptions::new().append(true).open(&log).unwrap();
        f.write_all(&[0x44, 0x01, 0x00, 0x00, 0xde, 0xad]).unwrap();
        drop(f);
        let before = std::fs::metadata(&log).unwrap().len();

        let (d2, report) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(report.records_replayed, 2);
        assert_eq!(report.truncated_bytes, 6);
        assert_eq!(d2.repository().len(), 2);
        // The torn tail was physically removed.
        let after = std::fs::metadata(&log).unwrap().len();
        assert_eq!(after, before - 6);
    }

    #[test]
    fn corrupt_record_stops_scan_at_checksum() {
        let dir = tmpdir("corrupt");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        let bob = Entity::with_seed("Bob", b"wal");
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            d.repository()
                .publish_at_issuer(cred(&ny, &alice, "Member"));
            d.repository().publish_at_issuer(cred(&ny, &bob, "Member"));
            d.repository().publish_at_issuer(cred(&ny, &bob, "Partner"));
        }
        let log = dir.join(LOG_FILE);
        let mut image = std::fs::read(&log).unwrap();
        let scan = scan_log(&image);
        assert_eq!(scan.records.len(), 3);
        // Flip one payload byte inside the second record.
        let off = scan.records[1].offset as usize + 12;
        image[off] ^= 0xff;
        std::fs::write(&log, &image).unwrap();

        let verify = verify_dir(&dir).unwrap();
        assert_eq!(verify.log_records, 1);
        assert!(verify.truncated_bytes > 0);
        assert!(!verify.is_clean());
        assert!(verify.corruption.unwrap().contains("checksum"));

        let (repo, _, report) = Repository::recover(&dir).unwrap();
        assert_eq!(report.records_replayed, 1);
        assert_eq!(repo.len(), 1);
        // recover() is read-only: the corrupt image is untouched.
        assert_eq!(std::fs::read(&log).unwrap(), image);
    }

    #[test]
    fn snapshot_plus_tail_replay() {
        let dir = tmpdir("snap");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        let bob = Entity::with_seed("Bob", b"wal");
        let carol = Entity::with_seed("Carol", b"wal");
        let c_alice = cred(&ny, &alice, "Member");
        let revoked_id;
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            d.repository().publish_at_issuer(c_alice.clone());
            let c_bob = cred(&ny, &bob, "Member");
            revoked_id = c_bob.id();
            d.repository().publish_at_issuer(c_bob);
            d.bus().revoke(&revoked_id);
            let r = d.compact().unwrap();
            assert_eq!(r.snapshot_entries, 2);
            assert_eq!(r.snapshot_revocations, 1);
            assert_eq!(std::fs::metadata(dir.join(LOG_FILE)).unwrap().len(), 0);
            // Tail after the snapshot.
            d.repository()
                .publish_at_issuer(cred(&ny, &carol, "Partner"));
        }
        let (d2, report) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(report.snapshot_entries, 2);
        assert_eq!(report.snapshot_revocations, 1);
        assert_eq!(report.records_replayed, 1);
        assert_eq!(d2.repository().len(), 3);
        assert!(d2.bus().is_revoked(&revoked_id));
        // Tag reconstruction: alice still findable via directed query.
        d2.repository().reset_stats();
        let found = d2.repository().query_by_subject(&alice.as_subject());
        assert_eq!(found.len(), 1);
        assert_eq!(d2.repository().stats().directed, 1);
    }

    #[test]
    fn snapshot_log_overlap_deduplicated() {
        // Simulate a crash between snapshot rename and log truncation:
        // both cover the same publish.
        let dir = tmpdir("overlap");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            d.repository()
                .publish_at_issuer(cred(&ny, &alice, "Member"));
            let log_before = std::fs::read(dir.join(LOG_FILE)).unwrap();
            d.compact().unwrap();
            // Put the pre-compaction log back (the "un-truncated" state).
            std::fs::write(dir.join(LOG_FILE), &log_before).unwrap();
        }
        let (d2, report) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(report.snapshot_entries, 1);
        assert_eq!(report.duplicates_skipped, 1);
        assert_eq!(d2.repository().len(), 1, "no double-publish");
    }

    #[test]
    fn corrupt_snapshot_ignored_log_still_replayed() {
        let dir = tmpdir("badsnap");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            d.repository()
                .publish_at_issuer(cred(&ny, &alice, "Member"));
            d.compact().unwrap();
            d.repository()
                .publish_at_issuer(cred(&ny, &alice, "Partner"));
        }
        // Corrupt the snapshot body.
        let snap = dir.join(SNAPSHOT_FILE);
        let mut image = std::fs::read(&snap).unwrap();
        let mid = image.len() / 2;
        image[mid] ^= 0xff;
        std::fs::write(&snap, &image).unwrap();

        let (repo, _, report) = Repository::recover(&dir).unwrap();
        assert!(report.snapshot_corrupt);
        assert_eq!(report.snapshot_entries, 0);
        // Only the post-compaction tail survives — the report says so.
        assert_eq!(report.records_replayed, 1);
        assert_eq!(repo.len(), 1);
    }

    #[test]
    fn purge_expired_replays() {
        let dir = tmpdir("purge");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            d.repository()
                .publish_at_issuer(cred(&ny, &alice, "Member"));
            let doomed = DelegationBuilder::new(&ny)
                .subject_entity(&alice)
                .role(ny.role("Guest"))
                .expires(100)
                .sign();
            d.repository().publish_at_issuer(doomed);
            assert_eq!(d.repository().purge_expired(200), 1);
        }
        let (repo, _, report) = Repository::recover(&dir).unwrap();
        assert_eq!(report.purges, 1);
        assert_eq!(repo.len(), 1);
    }

    #[test]
    fn recovered_epoch_strictly_above_logged_epochs() {
        let dir = tmpdir("epoch");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let alice = Entity::with_seed("Alice", b"wal");
        let logged_epoch;
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            d.repository()
                .publish_at_issuer(cred(&ny, &alice, "Member"));
            logged_epoch = d.repository().epoch();
        }
        let (repo, _, report) = Repository::recover(&dir).unwrap();
        assert!(
            report.epoch > logged_epoch,
            "epoch {} must exceed pre-crash {}",
            report.epoch,
            logged_epoch
        );
        assert_eq!(repo.epoch(), report.epoch);
    }

    #[test]
    fn fsync_policies_all_recover() {
        for policy in [
            FsyncPolicy::Always,
            FsyncPolicy::EveryN(3),
            FsyncPolicy::Never,
        ] {
            let dir = tmpdir("policy");
            let ny = Entity::with_seed("Comp.NY", b"wal");
            let cfg = WalConfig {
                fsync: policy,
                auto_compact_appends: None,
            };
            {
                let (d, _) = DurableRepository::open(&dir, cfg).unwrap();
                for i in 0..5 {
                    let who = Entity::with_seed(format!("U{i}"), b"wal");
                    d.repository().publish_at_issuer(cred(&ny, &who, "Member"));
                }
                let stats = d.stats();
                assert_eq!(stats.appends, 5);
                match policy {
                    FsyncPolicy::Always => assert_eq!(stats.fsyncs, 5),
                    FsyncPolicy::EveryN(3) => assert_eq!(stats.fsyncs, 1),
                    _ => assert_eq!(stats.fsyncs, 0),
                }
            }
            let (repo, _, _) = Repository::recover(&dir).unwrap();
            assert_eq!(repo.len(), 5, "policy {policy:?}");
        }
    }

    #[test]
    fn auto_compaction_triggers_and_recovers() {
        let dir = tmpdir("auto");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let cfg = WalConfig {
            fsync: FsyncPolicy::Never,
            auto_compact_appends: Some(4),
        };
        let oracle_ids;
        {
            let (d, _) = DurableRepository::open(&dir, cfg).unwrap();
            for i in 0..10 {
                let who = Entity::with_seed(format!("U{i}"), b"wal");
                d.repository().publish_at_issuer(cred(&ny, &who, "Member"));
            }
            assert!(d.stats().compactions >= 2, "10 appends / threshold 4");
            oracle_ids = repo_fingerprint(d.repository());
        }
        let (repo, _, _) = Repository::recover(&dir).unwrap();
        assert_eq!(repo_fingerprint(&repo), oracle_ids);
    }

    #[test]
    fn recovered_state_matches_never_crashed_oracle() {
        let dir = tmpdir("oracle");
        let ny = Entity::with_seed("Comp.NY", b"wal");
        let oracle_repo = Repository::new();
        let oracle_bus = RevocationBus::new();
        {
            let (d, _) = DurableRepository::open(&dir, WalConfig::default()).unwrap();
            for i in 0..6 {
                let who = Entity::with_seed(format!("U{i}"), b"wal");
                let c = cred(&ny, &who, "Member");
                oracle_repo.publish_at_issuer(c.clone());
                d.repository().publish_at_issuer(c.clone());
                if i % 2 == 0 {
                    oracle_bus.revoke(&c.id());
                    d.bus().revoke(&c.id());
                }
            }
        }
        let (repo, bus, _) = Repository::recover(&dir).unwrap();
        assert_eq!(repo_fingerprint(&repo), repo_fingerprint(&oracle_repo));
        assert_eq!(bus.revoked_ids(), oracle_bus.revoked_ids());
    }
}
