//! Online validity monitoring and revocation (paper §3.1, §4.3).
//!
//! A dRBAC credential "may additionally require online validation
//! monitoring from an authorized *home* which is aware of any revocation
//! of the delegation". The [`RevocationBus`] is that home's interface:
//! issuers revoke credential ids, and [`ValidityMonitor`]s — one per
//! outstanding proof — are notified the moment any credential they depend
//! on is revoked. Switchboard's `AuthorizationMonitor` (paper §4.3) is
//! built directly on this: a revocation mid-connection invalidates the
//! dRBAC proof and both endpoints are told to re-validate.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A revocation notice delivered to monitors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevocationNotice {
    /// The id of the revoked credential.
    pub credential_id: String,
}

struct BusInner {
    revoked: Mutex<HashSet<String>>,
    // credential id → monitors watching it
    watchers: Mutex<HashMap<String, Vec<MonitorHandle>>>,
}

#[derive(Clone)]
struct MonitorHandle {
    valid: Arc<AtomicBool>,
    tx: Sender<RevocationNotice>,
}

/// The revocation "home": a broadcast bus connecting credential issuers to
/// validity monitors.
#[derive(Clone)]
pub struct RevocationBus {
    inner: Arc<BusInner>,
}

impl Default for RevocationBus {
    fn default() -> Self {
        Self::new()
    }
}

impl RevocationBus {
    /// New empty bus.
    pub fn new() -> RevocationBus {
        RevocationBus {
            inner: Arc::new(BusInner {
                revoked: Mutex::new(HashSet::new()),
                watchers: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Revoke a credential by id, waking every monitor that depends on it.
    pub fn revoke(&self, credential_id: &str) {
        psf_telemetry::counter!("psf.drbac.revocations").inc();
        self.inner.revoked.lock().insert(credential_id.to_string());
        let watchers = {
            let mut map = self.inner.watchers.lock();
            map.remove(credential_id).unwrap_or_default()
        };
        let woken = watchers.len();
        for w in watchers {
            w.valid.store(false, Ordering::SeqCst);
            let _ = w.tx.send(RevocationNotice {
                credential_id: credential_id.to_string(),
            });
        }
        psf_telemetry::audit::record(
            psf_telemetry::Decision::Revocation,
            "",
            credential_id,
            psf_telemetry::Verdict::Revoked,
        )
        .detail(format!("{woken} monitor(s) invalidated"))
        .commit();
    }

    /// Whether a credential id has been revoked.
    pub fn is_revoked(&self, credential_id: &str) -> bool {
        self.inner.revoked.lock().contains(credential_id)
    }

    /// Create a monitor over a set of credential ids (typically every
    /// credential in a proof). The monitor is immediately invalid if any
    /// id is already revoked.
    pub fn monitor<I: IntoIterator<Item = String>>(&self, credential_ids: I) -> ValidityMonitor {
        let (tx, rx) = unbounded();
        let valid = Arc::new(AtomicBool::new(true));
        let handle = MonitorHandle {
            valid: valid.clone(),
            tx,
        };
        let mut ids = Vec::new();
        {
            let revoked = self.inner.revoked.lock();
            let mut watchers = self.inner.watchers.lock();
            for id in credential_ids {
                if revoked.contains(&id) {
                    valid.store(false, Ordering::SeqCst);
                    let _ = handle.tx.send(RevocationNotice {
                        credential_id: id.clone(),
                    });
                } else {
                    watchers.entry(id.clone()).or_default().push(handle.clone());
                }
                ids.push(id);
            }
        }
        ValidityMonitor { valid, rx, ids }
    }

    /// Revoke a batch of credential ids (e.g. everything issued to a
    /// deployment being torn down or rolled back). Returns the number of
    /// ids that were newly revoked.
    pub fn revoke_all<I, S>(&self, credential_ids: I) -> usize
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut fresh = 0;
        for id in credential_ids {
            let id = id.as_ref();
            if !self.is_revoked(id) {
                fresh += 1;
            }
            self.revoke(id);
        }
        fresh
    }

    /// Number of revoked credential ids.
    pub fn revoked_count(&self) -> usize {
        self.inner.revoked.lock().len()
    }
}

/// Watches the credentials underlying a proof; flips invalid (and delivers
/// a notice) the moment any of them is revoked.
pub struct ValidityMonitor {
    valid: Arc<AtomicBool>,
    rx: Receiver<RevocationNotice>,
    ids: Vec<String>,
}

impl ValidityMonitor {
    /// Whether every watched credential is still valid.
    pub fn is_valid(&self) -> bool {
        self.valid.load(Ordering::SeqCst)
    }

    /// Non-blocking poll for a revocation notice.
    pub fn try_notice(&self) -> Option<RevocationNotice> {
        self.rx.try_recv().ok()
    }

    /// Block until a notice arrives or the timeout elapses.
    pub fn wait_notice(&self, timeout: std::time::Duration) -> Option<RevocationNotice> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// The credential ids this monitor covers.
    pub fn watched_ids(&self) -> &[String] {
        &self.ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn revocation_flips_monitor() {
        let bus = RevocationBus::new();
        let m = bus.monitor(["cred-a".to_string(), "cred-b".to_string()]);
        assert!(m.is_valid());
        bus.revoke("cred-b");
        assert!(!m.is_valid());
        let notice = m.try_notice().unwrap();
        assert_eq!(notice.credential_id, "cred-b");
    }

    #[test]
    fn unrelated_revocation_ignored() {
        let bus = RevocationBus::new();
        let m = bus.monitor(["cred-a".to_string()]);
        bus.revoke("cred-zzz");
        assert!(m.is_valid());
        assert!(m.try_notice().is_none());
    }

    #[test]
    fn already_revoked_is_immediately_invalid() {
        let bus = RevocationBus::new();
        bus.revoke("cred-a");
        let m = bus.monitor(["cred-a".to_string()]);
        assert!(!m.is_valid());
        assert!(m.try_notice().is_some());
    }

    #[test]
    fn multiple_monitors_all_notified() {
        let bus = RevocationBus::new();
        let m1 = bus.monitor(["x".to_string()]);
        let m2 = bus.monitor(["x".to_string(), "y".to_string()]);
        bus.revoke("x");
        assert!(!m1.is_valid());
        assert!(!m2.is_valid());
    }

    #[test]
    fn cross_thread_notification() {
        let bus = RevocationBus::new();
        let m = bus.monitor(["conn-cred".to_string()]);
        let bus2 = bus.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            bus2.revoke("conn-cred");
        });
        let notice = m.wait_notice(Duration::from_secs(5)).unwrap();
        assert_eq!(notice.credential_id, "conn-cred");
        t.join().unwrap();
    }

    #[test]
    fn revoke_all_batches_and_counts_fresh() {
        let bus = RevocationBus::new();
        let m = bus.monitor(["a".to_string(), "b".to_string()]);
        bus.revoke("b");
        let fresh = bus.revoke_all(["a", "b", "c"]);
        assert_eq!(fresh, 2, "b was already revoked");
        assert!(!m.is_valid());
        assert!(bus.is_revoked("a") && bus.is_revoked("b") && bus.is_revoked("c"));
        assert_eq!(bus.revoked_count(), 3);
    }

    #[test]
    fn is_revoked_queryable() {
        let bus = RevocationBus::new();
        assert!(!bus.is_revoked("a"));
        bus.revoke("a");
        assert!(bus.is_revoked("a"));
        assert_eq!(bus.revoked_count(), 1);
    }
}
