//! Online validity monitoring and revocation (paper §3.1, §4.3).
//!
//! A dRBAC credential "may additionally require online validation
//! monitoring from an authorized *home* which is aware of any revocation
//! of the delegation". The [`RevocationBus`] is that home's interface:
//! issuers revoke credential ids, and [`ValidityMonitor`]s — one per
//! outstanding proof — are notified the moment any credential they depend
//! on is revoked. Switchboard's `AuthorizationMonitor` (paper §4.3) is
//! built directly on this: a revocation mid-connection invalidates the
//! dRBAC proof and both endpoints are told to re-validate.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A revocation notice delivered to monitors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevocationNotice {
    /// The id of the revoked credential.
    pub credential_id: String,
}

/// Callback observing fresh revocations (see [`RevocationBus::set_observer`]).
/// Invoked with the batch of *newly* revoked ids: a single-id slice per
/// [`RevocationBus::revoke`], the whole fresh set at once per
/// [`RevocationBus::revoke_all`] — so a bulk revoke fires one bounded
/// callback instead of one per credential.
pub type RevocationObserver = Arc<dyn Fn(&[String]) + Send + Sync>;

struct BusInner {
    revoked: Mutex<HashSet<String>>,
    // credential id → monitors watching it
    watchers: Mutex<HashMap<String, Vec<MonitorHandle>>>,
    // Fresh-revocation observer (durability layer); invoked outside locks.
    observer: Mutex<Option<RevocationObserver>>,
}

#[derive(Clone)]
struct MonitorHandle {
    valid: Arc<AtomicBool>,
    tx: Sender<RevocationNotice>,
}

/// The revocation "home": a broadcast bus connecting credential issuers to
/// validity monitors.
#[derive(Clone)]
pub struct RevocationBus {
    inner: Arc<BusInner>,
}

impl Default for RevocationBus {
    fn default() -> Self {
        Self::new()
    }
}

impl RevocationBus {
    /// New empty bus.
    pub fn new() -> RevocationBus {
        RevocationBus {
            inner: Arc::new(BusInner {
                revoked: Mutex::new(HashSet::new()),
                watchers: Mutex::new(HashMap::new()),
                observer: Mutex::new(None),
            }),
        }
    }

    /// Revoke a credential by id, waking every monitor that depends on it.
    pub fn revoke(&self, credential_id: &str) {
        psf_telemetry::counter!("psf.drbac.revocations").inc();
        let fresh = self.inner.revoked.lock().insert(credential_id.to_string());
        let watchers = {
            let mut map = self.inner.watchers.lock();
            map.remove(credential_id).unwrap_or_default()
        };
        let woken = watchers.len();
        for w in watchers {
            w.valid.store(false, Ordering::SeqCst);
            let _ = w.tx.send(RevocationNotice {
                credential_id: credential_id.to_string(),
            });
        }
        if fresh {
            let observer = self.inner.observer.lock().clone();
            if let Some(obs) = observer {
                let batch = [credential_id.to_string()];
                obs(&batch);
            }
        }
        psf_telemetry::audit::record(
            psf_telemetry::Decision::Revocation,
            "",
            credential_id,
            psf_telemetry::Verdict::Revoked,
        )
        .detail(format!("{woken} monitor(s) invalidated"))
        .commit();
    }

    /// Install (or clear) the fresh-revocation observer. The callback
    /// fires once per *newly* revoked id (duplicate revokes are silent),
    /// outside all bus locks. The durability layer ([`crate::wal`]) uses
    /// this to append `Revoke` records for revocations issued anywhere in
    /// the stack — deployer rollbacks, supervisor teardowns, guards.
    pub fn set_observer(&self, observer: Option<RevocationObserver>) {
        *self.inner.observer.lock() = observer;
    }

    /// Snapshot of every revoked credential id, sorted (deterministic for
    /// snapshots and tests). This is the drain side of the recovery API:
    /// WAL compaction persists it so revocations outlive log truncation.
    pub fn revoked_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.inner.revoked.lock().iter().cloned().collect();
        ids.sort();
        ids
    }

    /// Re-seed the bus from a recovered revocation set: every id is
    /// marked revoked and any monitor already watching it is invalidated
    /// (re-broadcast), but the observer is *not* notified — restore is
    /// how the durability layer replays its own log, and echoing the
    /// records back would double-append them. The `psf.drbac.revocations`
    /// counter advances by the number of newly restored ids, so the
    /// metric survives restarts instead of resetting to zero. Returns
    /// that count.
    pub fn restore<I, S>(&self, credential_ids: I) -> usize
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut fresh = 0usize;
        for id in credential_ids {
            let id = id.as_ref();
            if !self.inner.revoked.lock().insert(id.to_string()) {
                continue;
            }
            fresh += 1;
            let watchers = {
                let mut map = self.inner.watchers.lock();
                map.remove(id).unwrap_or_default()
            };
            for w in watchers {
                w.valid.store(false, Ordering::SeqCst);
                let _ = w.tx.send(RevocationNotice {
                    credential_id: id.to_string(),
                });
            }
        }
        if fresh > 0 {
            psf_telemetry::counter!("psf.drbac.revocations").add(fresh as u64);
            psf_telemetry::audit::record(
                psf_telemetry::Decision::Revocation,
                "",
                "wal-recovery",
                psf_telemetry::Verdict::Revoked,
            )
            .detail(format!("{fresh} revocation(s) restored from durable log"))
            .commit();
        }
        fresh
    }

    /// Whether a credential id has been revoked.
    pub fn is_revoked(&self, credential_id: &str) -> bool {
        self.inner.revoked.lock().contains(credential_id)
    }

    /// Create a monitor over a set of credential ids (typically every
    /// credential in a proof). The monitor is immediately invalid if any
    /// id is already revoked.
    pub fn monitor<I: IntoIterator<Item = String>>(&self, credential_ids: I) -> ValidityMonitor {
        let (tx, rx) = unbounded();
        let valid = Arc::new(AtomicBool::new(true));
        let handle = MonitorHandle {
            valid: valid.clone(),
            tx,
        };
        let mut ids = Vec::new();
        {
            let revoked = self.inner.revoked.lock();
            let mut watchers = self.inner.watchers.lock();
            for id in credential_ids {
                if revoked.contains(&id) {
                    valid.store(false, Ordering::SeqCst);
                    let _ = handle.tx.send(RevocationNotice {
                        credential_id: id.clone(),
                    });
                } else {
                    watchers.entry(id.clone()).or_default().push(handle.clone());
                }
                ids.push(id);
            }
        }
        ValidityMonitor { valid, rx, ids }
    }

    /// Revoke a batch of credential ids (e.g. everything issued to a
    /// deployment being torn down or rolled back) as **one epoch**: one
    /// pass over the revoked set, one watcher-removal pass, one observer
    /// callback with the whole fresh batch, one audit record — a
    /// 10⁵-credential bulk revoke fires a bounded number of callbacks
    /// instead of one per credential. Returns the number of ids that were
    /// newly revoked.
    pub fn revoke_all<I, S>(&self, credential_ids: I) -> usize
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let batch: Vec<String> = credential_ids
            .into_iter()
            .map(|s| s.as_ref().to_string())
            .collect();
        if batch.is_empty() {
            return 0;
        }
        psf_telemetry::counter!("psf.drbac.revocations").add(batch.len() as u64);
        let mut fresh_ids: Vec<String> = Vec::new();
        {
            let mut revoked = self.inner.revoked.lock();
            for id in &batch {
                if revoked.insert(id.clone()) {
                    fresh_ids.push(id.clone());
                }
            }
        }
        // One watcher pass for the whole batch; notices are sent after
        // the lock is released, like `revoke`.
        let mut woken: Vec<(String, MonitorHandle)> = Vec::new();
        {
            let mut map = self.inner.watchers.lock();
            for id in &batch {
                for w in map.remove(id).unwrap_or_default() {
                    woken.push((id.clone(), w));
                }
            }
        }
        let woken_count = woken.len();
        for (id, w) in woken {
            w.valid.store(false, Ordering::SeqCst);
            let _ = w.tx.send(RevocationNotice { credential_id: id });
        }
        if !fresh_ids.is_empty() {
            let observer = self.inner.observer.lock().clone();
            if let Some(obs) = observer {
                obs(&fresh_ids);
            }
        }
        psf_telemetry::audit::record(
            psf_telemetry::Decision::Revocation,
            "",
            "revoke-all",
            psf_telemetry::Verdict::Revoked,
        )
        .detail(format!(
            "{} id(s), {} fresh, {woken_count} monitor(s) invalidated",
            batch.len(),
            fresh_ids.len()
        ))
        .commit();
        fresh_ids.len()
    }

    /// Number of revoked credential ids.
    pub fn revoked_count(&self) -> usize {
        self.inner.revoked.lock().len()
    }
}

/// Watches the credentials underlying a proof; flips invalid (and delivers
/// a notice) the moment any of them is revoked.
pub struct ValidityMonitor {
    valid: Arc<AtomicBool>,
    rx: Receiver<RevocationNotice>,
    ids: Vec<String>,
}

impl ValidityMonitor {
    /// Whether every watched credential is still valid.
    pub fn is_valid(&self) -> bool {
        self.valid.load(Ordering::SeqCst)
    }

    /// Non-blocking poll for a revocation notice.
    pub fn try_notice(&self) -> Option<RevocationNotice> {
        self.rx.try_recv().ok()
    }

    /// Block until a notice arrives or the timeout elapses.
    pub fn wait_notice(&self, timeout: std::time::Duration) -> Option<RevocationNotice> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// The credential ids this monitor covers.
    pub fn watched_ids(&self) -> &[String] {
        &self.ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn revocation_flips_monitor() {
        let bus = RevocationBus::new();
        let m = bus.monitor(["cred-a".to_string(), "cred-b".to_string()]);
        assert!(m.is_valid());
        bus.revoke("cred-b");
        assert!(!m.is_valid());
        let notice = m.try_notice().unwrap();
        assert_eq!(notice.credential_id, "cred-b");
    }

    #[test]
    fn unrelated_revocation_ignored() {
        let bus = RevocationBus::new();
        let m = bus.monitor(["cred-a".to_string()]);
        bus.revoke("cred-zzz");
        assert!(m.is_valid());
        assert!(m.try_notice().is_none());
    }

    #[test]
    fn already_revoked_is_immediately_invalid() {
        let bus = RevocationBus::new();
        bus.revoke("cred-a");
        let m = bus.monitor(["cred-a".to_string()]);
        assert!(!m.is_valid());
        assert!(m.try_notice().is_some());
    }

    #[test]
    fn multiple_monitors_all_notified() {
        let bus = RevocationBus::new();
        let m1 = bus.monitor(["x".to_string()]);
        let m2 = bus.monitor(["x".to_string(), "y".to_string()]);
        bus.revoke("x");
        assert!(!m1.is_valid());
        assert!(!m2.is_valid());
    }

    #[test]
    fn cross_thread_notification() {
        let bus = RevocationBus::new();
        let m = bus.monitor(["conn-cred".to_string()]);
        let bus2 = bus.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            bus2.revoke("conn-cred");
        });
        let notice = m.wait_notice(Duration::from_secs(5)).unwrap();
        assert_eq!(notice.credential_id, "conn-cred");
        t.join().unwrap();
    }

    #[test]
    fn revoke_all_batches_and_counts_fresh() {
        let bus = RevocationBus::new();
        let m = bus.monitor(["a".to_string(), "b".to_string()]);
        bus.revoke("b");
        let fresh = bus.revoke_all(["a", "b", "c"]);
        assert_eq!(fresh, 2, "b was already revoked");
        assert!(!m.is_valid());
        assert!(bus.is_revoked("a") && bus.is_revoked("b") && bus.is_revoked("c"));
        assert_eq!(bus.revoked_count(), 3);
    }

    #[test]
    fn is_revoked_queryable() {
        let bus = RevocationBus::new();
        assert!(!bus.is_revoked("a"));
        bus.revoke("a");
        assert!(bus.is_revoked("a"));
        assert_eq!(bus.revoked_count(), 1);
    }
}
