//! # psf-drbac
//!
//! A from-scratch implementation of **dRBAC** — the decentralized,
//! PKI-based trust-management and role-based access-control system used by
//! the Partitionable Services Framework (HPDC'03, §3; originally
//! Freudenthal et al., ICDCS'01).
//!
//! dRBAC encodes *statements* within and across administrative domains as
//! cryptographically signed credentials called **delegations**. A
//! delegation maps a *subject* (an entity or another role) to a role
//! `Entity.Role`, optionally attenuating valued attributes (`CPU=100`,
//! `Trust=(0,10)`, `Secure={true,false}`). Three delegation types exist
//! (paper Table 1):
//!
//! * **self-certifying** — `[ Subject → Issuer.Role ] Issuer`: the role's
//!   owning entity grants it directly;
//! * **third-party** — `[ Subject → Entity.Role ] Issuer` with
//!   `Issuer ≠ Entity`: valid only if the issuer holds the *right of
//!   assignment* for `Entity.Role`;
//! * **assignment** — `[ Subject → Entity.Role' ] Issuer`: grants the
//!   right of assignment itself (the trailing `'`), transitively.
//!
//! Delegations chain into **proof graphs** ([`proof`]): a subject holds a
//! role if a path of valid delegations connects them, and the attributes
//! along the path attenuate by intersection (ranges intersect, sets
//! intersect, capacities take the minimum).
//!
//! Credentials live in a sharded, distributed [`repository`] searched with
//! **discovery tags** ("searchable from subject" / "searchable from
//! object"), carry optional expirations, and may require online validity
//! monitoring — [`revocation`] implements the home-node revocation bus and
//! the `ValidityMonitor`s that Switchboard subscribes to for continuous
//! authorization.
//!
//! [`guard`] packages the per-domain *Guard* module from the paper's §3.3
//! (role definition, credential issuance, authorization);
//! [`storage_model`] reproduces the §5 storage comparison against GSI and
//! CAS (`P×U` vs `C×(P+U)` vs `P+U+c`); and [`translator`] implements the
//! §6 future-work policy-translation service (capability lists and group
//! policies compiled into dRBAC delegations).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod cache;
pub mod certify;
pub mod delegation;
pub mod entity;
pub mod guard;
pub mod proof;
pub mod repository;
pub mod revocation;
pub mod storage_model;
pub mod translator;
pub mod wal;
pub mod wire;

pub use attr::{AttrSet, AttrValue};
pub use cache::{AuthCache, CacheStats};
pub use certify::{
    attrs_to_cert, certify, check_certificate, check_certificate_memo, subject_to_cert,
};
pub use delegation::{Delegation, DelegationBuilder, DelegationKind, SignedDelegation};
pub use entity::{Entity, EntityName, EntityRegistry, RoleName, Subject};
pub use guard::Guard;
pub use proof::{Proof, ProofEngine, ProofError, SearchStats};
pub use repository::{
    subject_key, CredentialSource, DiscoveryTag, RepoEvent, RepoObserver, Repository, ShardInfo,
    DEFAULT_SHARD_COUNT,
};
pub use revocation::{RevocationBus, RevocationObserver, ValidityMonitor};
pub use wal::{
    is_sharded_dir, shard_dir_name, verify_dir, verify_sharded_dir, CompactReport,
    DurableRepository, FsyncPolicy, RecoveryReport, ShardSegmentStats, ShardedDurableRepository,
    ShardedVerifyReport, ShardedWalStats, VerifyReport, WalConfig, WalStats,
};

/// Logical timestamp used for credential expiration (seconds; the netsim
/// clock and the wall clock both map onto it).
pub type Timestamp = u64;

/// Errors surfaced by dRBAC operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrbacError {
    /// A delegation signature failed to verify.
    BadSignature,
    /// The issuer of a delegation is not known to the registry.
    UnknownIssuer(String),
    /// A credential has expired at the evaluation time.
    Expired {
        /// The credential id.
        id: String,
        /// Its expiration time.
        expires: Timestamp,
        /// The evaluation time.
        now: Timestamp,
    },
    /// A credential has been revoked.
    Revoked(String),
    /// A third-party delegation's issuer lacks the right of assignment.
    UnauthorizedIssuer {
        /// The offending credential id.
        id: String,
        /// The issuer that lacked assignment rights.
        issuer: String,
        /// The role it tried to assign.
        role: String,
    },
    /// No proof could be constructed.
    NoProof {
        /// The subject that could not be authorized.
        subject: String,
        /// The role sought.
        role: String,
    },
    /// A proof chain is malformed (links don't connect).
    BrokenChain(String),
    /// A role string could not be parsed (`Entity.Role` required).
    BadRoleName(String),
}

impl core::fmt::Display for DrbacError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DrbacError::BadSignature => write!(f, "delegation signature invalid"),
            DrbacError::UnknownIssuer(e) => write!(f, "unknown issuer entity '{e}'"),
            DrbacError::Expired { id, expires, now } => {
                write!(f, "credential {id} expired at {expires} (now {now})")
            }
            DrbacError::Revoked(id) => write!(f, "credential {id} has been revoked"),
            DrbacError::UnauthorizedIssuer { id, issuer, role } => write!(
                f,
                "credential {id}: issuer '{issuer}' lacks assignment right for '{role}'"
            ),
            DrbacError::NoProof { subject, role } => {
                write!(f, "no proof that '{subject}' holds role '{role}'")
            }
            DrbacError::BrokenChain(m) => write!(f, "malformed proof chain: {m}"),
            DrbacError::BadRoleName(r) => {
                write!(f, "'{r}' is not a valid role name (expected Entity.Role)")
            }
        }
    }
}

impl std::error::Error for DrbacError {}
