//! The authorization fast path: verified-credential and proof caches.
//!
//! `ProofEngine::prove` is on the hot path of every component interaction
//! (single sign-on, continuous authorization, planner oracle queries), yet
//! without caching it re-verifies every Ed25519 signature and re-walks the
//! delegation graph on every call. SAFE-style trust systems make this
//! tractable by caching proof results and invalidating them through the
//! credential-linkage graph; dRBAC's [`RevocationBus`] already broadcasts
//! exactly the events such invalidation needs.
//!
//! [`AuthCache`] bundles two memo tables:
//!
//! 1. **Verified-credential cache** — memoizes *signature verification
//!    only*, keyed by `(credential id, issuer key)`. The id is a hash of
//!    the signed body plus signature, and Ed25519 verification is a pure
//!    function of `(body bytes, signature, issuer key)`, so a cached
//!    verdict never goes stale. Structural and expiry checks are re-run on
//!    every use (they depend on `now`), preserving the uncached engine's
//!    exact error precedence.
//!
//! 2. **Proof cache** — memoizes whole `prove()` results, keyed by
//!    `(subject, role, fingerprint of the presented credential set)`.
//!    Entries pin the repository and registry epochs they were computed
//!    under and are checked against them on lookup, so repository
//!    publishes/purges and registry registrations invalidate. Positive
//!    entries additionally carry a [`ValidityMonitor`] over **every
//!    credential examined by the search** (a superset of
//!    `Proof::credential_ids`) plus the earliest future expiry among
//!    them; negative entries are valid only while logical time moves
//!    forward. Together these make a cache hit *bit-identical* to a fresh
//!    search: under pinned epochs, an unchanged frontier, and an unexpired
//!    window, BFS is deterministic and must reproduce the recorded result.
//!
//! One `AuthCache` must only ever be used with a single
//! `(EntityRegistry, CredentialSource, RevocationBus)` triple — the
//! entries record epochs of *those* structures. [`Guard`](crate::Guard)
//! and the planner's oracle own their cache for exactly this reason.

use crate::delegation::SignedDelegation;
use crate::proof::{Proof, SearchStats};
use crate::revocation::{RevocationBus, ValidityMonitor};
use crate::{DrbacError, Timestamp};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Maximum cached proof entries before the table is flushed.
const PROOF_CAP: usize = 1024;
/// Maximum cached credential verdicts before the table is flushed.
const CRED_CAP: usize = 8192;

/// Key of a proof-cache entry: who is being authorized for what, under
/// which presented credential set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct ProofKey {
    /// `subject_key` of the subject being authorized.
    pub subject: String,
    /// Rendered target role.
    pub role: String,
    /// Order-independent fingerprint of the presented credential ids.
    pub presented: PresentedFingerprint,
}

/// Order-independent fingerprint of a presented credential set: FNV-1a of
/// each credential id, combined commutatively (wrapping sum + xor) with
/// the set size. Collisions require two distinct id multisets agreeing on
/// all three 64-bit aggregates — negligible against sha256-derived ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PresentedFingerprint {
    sum: u64,
    xor: u64,
    len: u64,
}

impl PresentedFingerprint {
    /// Fingerprint a presented credential slice.
    pub fn of(presented: &[SignedDelegation]) -> PresentedFingerprint {
        let mut sum = 0u64;
        let mut xor = 0u64;
        for c in presented {
            let h = fnv1a(c.id().as_bytes());
            sum = sum.wrapping_add(h);
            xor ^= h;
        }
        PresentedFingerprint {
            sum,
            xor,
            len: presented.len() as u64,
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// What the search touched: every credential id examined, every subject
/// key queried against the repository, plus the earliest expiry (strictly
/// after the evaluation time) among the examined credentials. Recorded on
/// a cache miss; decides how long the resulting entry stays exact.
#[derive(Debug, Default, Clone)]
pub struct Frontier {
    /// Ids of every credential the search examined.
    pub ids: Vec<String>,
    /// Canonical subject keys the search queried the repository for —
    /// including keys that returned nothing (a later publish for such a
    /// key can change the result, so its shard must be pinned too).
    pub subjects: Vec<String>,
    /// Earliest expiry strictly after the evaluation time, if any.
    pub next_expiry: Option<Timestamp>,
}

impl Frontier {
    /// Record one examined credential.
    pub fn note(&mut self, cred: &SignedDelegation, now: Timestamp) {
        self.ids.push(cred.id());
        if let Some(exp) = cred.body.expires {
            if exp > now && self.next_expiry.is_none_or(|e| exp < e) {
                self.next_expiry = Some(exp);
            }
        }
    }

    /// Record one repository subject-key query.
    pub fn note_subject(&mut self, subject_key: &str) {
        self.subjects.push(subject_key.to_string());
    }
}

struct PositiveEntry {
    proof: Proof,
    stats: SearchStats,
    /// The proof-carrying certificate emitted for this entry, attached
    /// lazily by `ProofEngine::prove_certified`. It shares the entry's
    /// validity window exactly: the certificate pins the same epochs the
    /// entry does, so whenever the entry is a legal hit the certificate
    /// is still the one a fresh emission would produce (modulo nothing —
    /// emission is deterministic in the proof and the pinned epochs).
    cert: Option<Arc<psf_cert::AuthCertificate>>,
    /// Watches every credential the search examined — any revocation in
    /// the frontier (not just the proof chain) invalidates.
    monitor: ValidityMonitor,
    /// First instant at which some examined credential's expiry status
    /// changes; the entry is exact only strictly before it.
    next_expiry: Option<Timestamp>,
    repo_epoch: Option<u64>,
    /// Per-shard pins `(shard, high-water mark)` for every shard the
    /// search queried, captured **before** the search read any data. When
    /// present, the entry stays valid while those shards' current marks
    /// are unchanged — publishes into other shards don't evict it. When
    /// absent (unsharded source), the global `repo_epoch` pin applies.
    shard_marks: Option<Vec<(u32, u64)>>,
    registry_epoch: u64,
    observed_now: Timestamp,
}

struct NegativeEntry {
    error: DrbacError,
    stats: SearchStats,
    repo_epoch: Option<u64>,
    registry_epoch: u64,
    observed_now: Timestamp,
}

enum ProofEntry {
    Proved(PositiveEntry),
    Failed(NegativeEntry),
}

struct CredVerdict {
    issuer_key: [u8; 32],
    result: Result<(), DrbacError>,
}

/// Point-in-time counters for cache observability (mirrored into
/// `psf-telemetry` as `psf.drbac.cache.*`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Proof-cache lookups answered from the cache.
    pub proof_hits: u64,
    /// Proof-cache lookups that fell through to a full search.
    pub proof_misses: u64,
    /// Entries dropped because revocation/expiry/epoch checks failed.
    pub proof_invalidations: u64,
    /// Signature verifications answered from the credential cache.
    pub cred_hits: u64,
    /// Signature verifications computed and memoized.
    pub cred_misses: u64,
}

#[derive(Default)]
struct StatCells {
    proof_hits: std::sync::atomic::AtomicU64,
    proof_misses: std::sync::atomic::AtomicU64,
    proof_invalidations: std::sync::atomic::AtomicU64,
    cred_hits: std::sync::atomic::AtomicU64,
    cred_misses: std::sync::atomic::AtomicU64,
}

struct CacheInner {
    creds: Mutex<HashMap<String, CredVerdict>>,
    proofs: Mutex<HashMap<ProofKey, ProofEntry>>,
    stats: StatCells,
}

/// Shared, thread-safe authorization cache (cheap to clone: `Arc` inner).
#[derive(Clone)]
pub struct AuthCache {
    inner: Arc<CacheInner>,
}

impl Default for AuthCache {
    fn default() -> Self {
        Self::new()
    }
}

use std::sync::atomic::Ordering::Relaxed;

impl AuthCache {
    /// New empty cache.
    pub fn new() -> AuthCache {
        AuthCache {
            inner: Arc::new(CacheInner {
                creds: Mutex::new(HashMap::new()),
                proofs: Mutex::new(HashMap::new()),
                stats: StatCells::default(),
            }),
        }
    }

    /// Verify `cred` exactly as [`SignedDelegation::verify`] would, but
    /// answer the (pure, expensive) signature check from the memo table
    /// when the same `(id, issuer key)` pair has been verified before.
    /// Check order — structure, expiry, signature — matches the uncached
    /// path so error precedence is identical.
    pub fn verify_credential(
        &self,
        cred: &SignedDelegation,
        issuer_key: &psf_crypto::ed25519::VerifyingKey,
        now: Timestamp,
    ) -> Result<(), DrbacError> {
        cred.check_structure()?;
        cred.check_expiry(now)?;
        let id = cred.id();
        {
            let creds = self.inner.creds.lock();
            if let Some(v) = creds.get(&id) {
                if v.issuer_key == issuer_key.0 {
                    self.inner.stats.cred_hits.fetch_add(1, Relaxed);
                    psf_telemetry::counter!("psf.drbac.cache.cred.hits").inc();
                    return v.result.clone();
                }
            }
        }
        self.inner.stats.cred_misses.fetch_add(1, Relaxed);
        psf_telemetry::counter!("psf.drbac.cache.cred.misses").inc();
        let result = cred.verify_signature(issuer_key);
        let mut creds = self.inner.creds.lock();
        if creds.len() >= CRED_CAP {
            creds.clear();
        }
        creds.insert(
            id,
            CredVerdict {
                issuer_key: issuer_key.0,
                result: result.clone(),
            },
        );
        result
    }

    /// Look up a memoized `prove()` result. Returns `None` on a miss
    /// (including entries that had to be invalidated). `shard_marks` is
    /// the source's *current* high-water snapshot (captured by the engine
    /// at the start of this authorization), used to validate per-shard
    /// pins on positive entries.
    pub(crate) fn lookup_proof(
        &self,
        key: &ProofKey,
        now: Timestamp,
        repo_epoch: Option<u64>,
        shard_marks: Option<&[u64]>,
        registry_epoch: u64,
    ) -> Option<Result<(Proof, SearchStats), (DrbacError, SearchStats)>> {
        let mut proofs = self.inner.proofs.lock();
        let hit = match proofs.get(key) {
            None => {
                self.inner.stats.proof_misses.fetch_add(1, Relaxed);
                psf_telemetry::counter!("psf.drbac.cache.proof.misses").inc();
                return None;
            }
            Some(ProofEntry::Proved(p)) => {
                // Per-shard pins beat the global epoch when both sides
                // are sharded: unchanged marks on every queried shard ⇒
                // the search's entire read set is unchanged.
                let universe_pinned = match (&p.shard_marks, shard_marks) {
                    (Some(pins), Some(current)) => pins
                        .iter()
                        .all(|&(s, m)| current.get(s as usize) == Some(&m)),
                    _ => p.repo_epoch.is_some() && p.repo_epoch == repo_epoch,
                };
                universe_pinned
                    && p.registry_epoch == registry_epoch
                    && now >= p.observed_now
                    && p.next_expiry.is_none_or(|e| now < e)
                    && p.monitor.is_valid()
            }
            Some(ProofEntry::Failed(n)) => {
                // A failure stays a failure while the credential universe
                // is pinned and time only moves forward: validity is
                // monotone-decreasing in `now` and revocations only grow.
                n.repo_epoch.is_some()
                    && n.repo_epoch == repo_epoch
                    && n.registry_epoch == registry_epoch
                    && now >= n.observed_now
            }
        };
        if !hit {
            proofs.remove(key);
            self.inner.stats.proof_invalidations.fetch_add(1, Relaxed);
            self.inner.stats.proof_misses.fetch_add(1, Relaxed);
            psf_telemetry::counter!("psf.drbac.cache.proof.invalidations").inc();
            psf_telemetry::counter!("psf.drbac.cache.proof.misses").inc();
            return None;
        }
        self.inner.stats.proof_hits.fetch_add(1, Relaxed);
        psf_telemetry::counter!("psf.drbac.cache.proof.hits").inc();
        match proofs.get(key) {
            Some(ProofEntry::Proved(p)) => Some(Ok((p.proof.clone(), p.stats))),
            Some(ProofEntry::Failed(n)) => Some(Err((n.error.clone(), n.stats))),
            None => unreachable!("entry checked above"),
        }
    }

    /// Record a fresh `prove()` result together with the search frontier
    /// that produced it. `shard_pins` are the `(shard, high-water mark)`
    /// pairs for every shard the search queried, with marks captured
    /// **before** the search read any data (soundness: if a mark is still
    /// unchanged at a later lookup, no mutation became visible to the
    /// recorded search).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert_proof(
        &self,
        key: ProofKey,
        result: &Result<(Proof, SearchStats), (DrbacError, SearchStats)>,
        frontier: &Frontier,
        bus: &RevocationBus,
        repo_epoch: Option<u64>,
        shard_pins: Option<Vec<(u32, u64)>>,
        registry_epoch: u64,
        now: Timestamp,
    ) {
        // No caching at all without a repository epoch: a versionless
        // (remote) source could change content silently, and both entry
        // kinds pin the credential universe for their exactness argument.
        if repo_epoch.is_none() {
            return;
        }
        let entry = match result {
            Ok((proof, stats)) => ProofEntry::Proved(PositiveEntry {
                proof: proof.clone(),
                stats: *stats,
                cert: None,
                monitor: bus.monitor(frontier.ids.iter().cloned()),
                next_expiry: frontier.next_expiry,
                repo_epoch,
                shard_marks: shard_pins,
                registry_epoch,
                observed_now: now,
            }),
            Err((error, stats)) => ProofEntry::Failed(NegativeEntry {
                error: error.clone(),
                stats: *stats,
                repo_epoch,
                registry_epoch,
                observed_now: now,
            }),
        };
        let mut proofs = self.inner.proofs.lock();
        if proofs.len() >= PROOF_CAP {
            proofs.clear();
        }
        proofs.insert(key, entry);
    }

    /// Certificate stored alongside a positive proof entry, if one has
    /// been attached. Callers must only use this immediately after a
    /// validated `lookup_proof` hit for the same key (the certificate
    /// shares the entry's validity window).
    pub(crate) fn lookup_certificate(
        &self,
        key: &ProofKey,
    ) -> Option<Arc<psf_cert::AuthCertificate>> {
        match self.inner.proofs.lock().get(key) {
            Some(ProofEntry::Proved(p)) => p.cert.clone(),
            _ => None,
        }
    }

    /// Attach an emitted certificate to the positive entry for `key` (a
    /// no-op if the entry has been evicted or replaced meanwhile).
    pub(crate) fn attach_certificate(&self, key: &ProofKey, cert: Arc<psf_cert::AuthCertificate>) {
        if let Some(ProofEntry::Proved(p)) = self.inner.proofs.lock().get_mut(key) {
            p.cert = Some(cert);
        }
    }

    /// Number of positive proof entries carrying a certificate.
    pub fn cert_entries(&self) -> usize {
        self.inner
            .proofs
            .lock()
            .values()
            .filter(|e| matches!(e, ProofEntry::Proved(p) if p.cert.is_some()))
            .count()
    }

    /// Drop every cached proof and credential verdict.
    pub fn clear(&self) {
        self.inner.proofs.lock().clear();
        self.inner.creds.lock().clear();
    }

    /// Number of live proof entries.
    pub fn proof_entries(&self) -> usize {
        self.inner.proofs.lock().len()
    }

    /// Number of memoized credential verdicts.
    pub fn cred_entries(&self) -> usize {
        self.inner.creds.lock().len()
    }

    /// Snapshot of hit/miss/invalidation counters.
    pub fn stats(&self) -> CacheStats {
        let s = &self.inner.stats;
        CacheStats {
            proof_hits: s.proof_hits.load(Relaxed),
            proof_misses: s.proof_misses.load(Relaxed),
            proof_invalidations: s.proof_invalidations.load(Relaxed),
            cred_hits: s.cred_hits.load(Relaxed),
            cred_misses: s.cred_misses.load(Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delegation::DelegationBuilder;
    use crate::entity::Entity;

    #[test]
    fn cred_cache_memoizes_signature_only() {
        let ny = Entity::with_seed("Comp.NY", b"c");
        let alice = Entity::with_seed("Alice", b"c");
        let cred = DelegationBuilder::new(&ny)
            .subject_entity(&alice)
            .role(ny.role("Member"))
            .expires(100)
            .sign();
        let cache = AuthCache::new();
        let key = ny.public_key();
        cache.verify_credential(&cred, &key, 0).unwrap();
        cache.verify_credential(&cred, &key, 0).unwrap();
        let s = cache.stats();
        assert_eq!((s.cred_misses, s.cred_hits), (1, 1));
        // Expiry is still enforced fresh on every call.
        assert!(matches!(
            cache.verify_credential(&cred, &key, 200),
            Err(DrbacError::Expired { .. })
        ));
        // A wrong key is not answered from the memo table.
        let mallory = Entity::with_seed("Mallory", b"c");
        assert_eq!(
            cache.verify_credential(&cred, &mallory.public_key(), 0),
            Err(DrbacError::BadSignature)
        );
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let ny = Entity::with_seed("Comp.NY", b"c");
        let alice = Entity::with_seed("Alice", b"c");
        let bob = Entity::with_seed("Bob", b"c");
        let a = DelegationBuilder::new(&ny)
            .subject_entity(&alice)
            .role(ny.role("Member"))
            .sign();
        let b = DelegationBuilder::new(&ny)
            .subject_entity(&bob)
            .role(ny.role("Member"))
            .sign();
        let fwd = PresentedFingerprint::of(&[a.clone(), b.clone()]);
        let rev = PresentedFingerprint::of(&[b.clone(), a.clone()]);
        assert_eq!(fwd, rev);
        assert_ne!(fwd, PresentedFingerprint::of(&[a]));
        assert_ne!(fwd, PresentedFingerprint::of(&[b]));
    }
}
