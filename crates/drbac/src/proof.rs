//! The proof-graph engine (paper §3.1).
//!
//! "A trust-sensitive component C can determine if a set of dRBAC
//! credentials X gives some subject S the set of access rights represented
//! by a role R continuously over some duration": [`ProofEngine::prove`]
//! implements exactly this query. It authenticates every credential,
//! checks expirations and revocations, enforces issuer authorization
//! (third-party delegations require a supporting *assignment-right*
//! chain), attenuates attributes along the path, and returns a [`Proof`]
//! object that any other party can independently re-[`verify`].
//!
//! [`verify`]: Proof::verify

use crate::attr::AttrSet;
use crate::cache::{AuthCache, Frontier, PresentedFingerprint, ProofKey};
use crate::delegation::{DelegationKind, SignedDelegation};
use crate::entity::{EntityRegistry, RoleName, Subject};
#[cfg(test)]
use crate::repository::Repository;
use crate::repository::{subject_key, CredentialSource};
use crate::revocation::RevocationBus;
use crate::{DrbacError, Timestamp};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// One edge of a proof chain: the credential plus, for third-party
/// delegations, the assignment-right proof authorizing its issuer.
///
/// The credential is `Arc`-shared with the repository/presented set — a
/// proof references signed blobs, it does not copy them.
#[derive(Debug, Clone)]
pub struct ProofEdge {
    /// The signed delegation this edge rests on.
    pub credential: Arc<SignedDelegation>,
    /// For third-party edges: proof that the issuer holds the right of
    /// assignment for the edge's object role.
    pub support: Option<Box<Proof>>,
}

/// A verifiable proof that `subject` holds `role` (or, when `assignment`
/// is set, the *right of assignment* for `role`), with the attributes that
/// survive attenuation along the chain.
#[derive(Debug, Clone)]
pub struct Proof {
    /// The subject being authorized.
    pub subject: Subject,
    /// The role proven.
    pub role: RoleName,
    /// True if this proves the assignment right rather than membership.
    pub assignment: bool,
    /// Attributes accumulated (attenuated) along the chain.
    pub attrs: AttrSet,
    /// The delegation chain, subject-side first.
    pub edges: Vec<ProofEdge>,
}

impl Proof {
    /// Every credential id this proof depends on (recursing into
    /// supports) — the set a [`ValidityMonitor`](crate::ValidityMonitor)
    /// must watch for continuous authorization.
    pub fn credential_ids(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_ids(&mut out);
        out
    }

    fn collect_ids(&self, out: &mut Vec<String>) {
        for e in &self.edges {
            out.push(e.credential.id());
            if let Some(s) = &e.support {
                s.collect_ids(out);
            }
        }
    }

    /// Total number of edges including support proofs.
    pub fn total_edges(&self) -> usize {
        self.edges
            .iter()
            .map(|e| 1 + e.support.as_ref().map_or(0, |s| s.total_edges()))
            .sum()
    }

    /// Independently re-verify the whole proof: chain structure, every
    /// signature, expirations at `now`, revocations against `bus`, issuer
    /// authorization, and attribute accumulation.
    pub fn verify(
        &self,
        registry: &EntityRegistry,
        bus: &RevocationBus,
        now: Timestamp,
    ) -> Result<(), DrbacError> {
        self.verify_with(registry, bus, now, None)
    }

    /// As [`verify`](Self::verify), answering repeat signature checks from
    /// `cache` when one is supplied. Structure, expiry, and revocation are
    /// always re-checked fresh.
    pub fn verify_with(
        &self,
        registry: &EntityRegistry,
        bus: &RevocationBus,
        now: Timestamp,
        cache: Option<&AuthCache>,
    ) -> Result<(), DrbacError> {
        if self.assignment {
            return self.verify_assignment(registry, bus, now, cache);
        }
        if self.edges.is_empty() {
            return Err(DrbacError::BrokenChain(
                "membership proof must have at least one edge".into(),
            ));
        }
        let mut attrs = AttrSet::new();
        let mut expected_subject = self.subject.clone();
        for edge in &self.edges {
            let cred = &edge.credential;
            check_edge_common(cred, registry, bus, now, cache)?;
            if subject_key(&cred.body.subject) != subject_key(&expected_subject) {
                return Err(DrbacError::BrokenChain(format!(
                    "edge {} subject '{}' does not follow '{}'",
                    cred.id(),
                    cred.body.subject.render(),
                    expected_subject.render()
                )));
            }
            let effective = effective_edge_attrs(edge, registry, bus, now, cache)?;
            attrs = attrs.attenuate(&effective).ok_or_else(|| {
                DrbacError::BrokenChain(format!("attributes annihilate at edge {}", cred.id()))
            })?;
            expected_subject = Subject::Role(cred.body.object.clone());
        }
        let last = &self.edges.last().unwrap().credential;
        if last.body.object != self.role {
            return Err(DrbacError::BrokenChain(format!(
                "chain ends at '{}', not target '{}'",
                last.body.object, self.role
            )));
        }
        if attrs != self.attrs {
            return Err(DrbacError::BrokenChain(
                "claimed attributes do not match the chain".into(),
            ));
        }
        Ok(())
    }

    fn verify_assignment(
        &self,
        registry: &EntityRegistry,
        bus: &RevocationBus,
        now: Timestamp,
        cache: Option<&AuthCache>,
    ) -> Result<(), DrbacError> {
        // Zero edges: the subject *is* the role owner.
        if self.edges.is_empty() {
            match &self.subject {
                Subject::Entity { name, key } if *name == self.role.owner => {
                    let expected = registry
                        .lookup(name)
                        .ok_or_else(|| DrbacError::UnknownIssuer(name.0.clone()))?;
                    if expected != *key {
                        return Err(DrbacError::BrokenChain(
                            "owner key mismatch in assignment proof".into(),
                        ));
                    }
                    return Ok(());
                }
                _ => {
                    return Err(DrbacError::BrokenChain(
                        "empty assignment proof whose subject is not the role owner".into(),
                    ))
                }
            }
        }
        // Chain: [S → R'] I₁, [I₁ → R'] I₂, …, [Iₙ → R'] owner.
        let mut expected_subject = self.subject.clone();
        for edge in &self.edges {
            let cred = &edge.credential;
            check_edge_common(cred, registry, bus, now, cache)?;
            if cred.body.kind != DelegationKind::Assignment {
                return Err(DrbacError::BrokenChain(format!(
                    "assignment proof contains non-assignment edge {}",
                    cred.id()
                )));
            }
            if cred.body.object != self.role {
                return Err(DrbacError::BrokenChain(format!(
                    "assignment edge {} targets '{}', expected '{}'",
                    cred.id(),
                    cred.body.object,
                    self.role
                )));
            }
            if subject_key(&cred.body.subject) != subject_key(&expected_subject) {
                return Err(DrbacError::BrokenChain(format!(
                    "assignment edge {} subject does not follow chain",
                    cred.id()
                )));
            }
            // Next link: the issuer must itself be authorized.
            let issuer_key = registry
                .lookup(&cred.body.issuer)
                .ok_or_else(|| DrbacError::UnknownIssuer(cred.body.issuer.0.clone()))?;
            expected_subject = Subject::Entity {
                name: cred.body.issuer.clone(),
                key: issuer_key,
            };
        }
        let last = &self.edges.last().unwrap().credential;
        if last.body.issuer != self.role.owner {
            return Err(DrbacError::BrokenChain(format!(
                "assignment chain terminates at '{}', not the role owner '{}'",
                last.body.issuer, self.role.owner
            )));
        }
        Ok(())
    }

    /// Human-readable rendering of the chain in paper syntax.
    pub fn render(&self) -> String {
        let kind = if self.assignment {
            "assignment-right"
        } else {
            "membership"
        };
        let mut out = format!(
            "proof ({kind}) that {} holds {}{}:\n",
            self.subject.render(),
            self.role,
            self.attrs.render()
        );
        for (i, e) in self.edges.iter().enumerate() {
            out.push_str(&format!("  ({}) {}\n", i + 1, e.credential.body.render()));
            if let Some(s) = &e.support {
                for line in s.render().lines() {
                    out.push_str(&format!("      | {line}\n"));
                }
            }
        }
        out
    }
}

fn check_edge_common(
    cred: &SignedDelegation,
    registry: &EntityRegistry,
    bus: &RevocationBus,
    now: Timestamp,
    cache: Option<&AuthCache>,
) -> Result<(), DrbacError> {
    let issuer_key = registry
        .lookup(&cred.body.issuer)
        .ok_or_else(|| DrbacError::UnknownIssuer(cred.body.issuer.0.clone()))?;
    match cache {
        Some(c) => c.verify_credential(cred, &issuer_key, now)?,
        None => cred.verify(&issuer_key, now)?,
    }
    if bus.is_revoked(&cred.id()) {
        return Err(DrbacError::Revoked(cred.id()));
    }
    Ok(())
}

/// The attributes a membership edge actually conveys: its own attributes
/// attenuated by its supporting assignment chain (a delegatee cannot grant
/// more than it was assigned).
fn effective_edge_attrs(
    edge: &ProofEdge,
    registry: &EntityRegistry,
    bus: &RevocationBus,
    now: Timestamp,
    cache: Option<&AuthCache>,
) -> Result<AttrSet, DrbacError> {
    let cred = &edge.credential;
    match cred.body.kind {
        DelegationKind::SelfCertifying => {
            if cred.body.issuer != cred.body.object.owner {
                return Err(DrbacError::BrokenChain(
                    "self-certifying edge not issued by owner".into(),
                ));
            }
            Ok(cred.body.attrs.clone())
        }
        DelegationKind::ThirdParty => {
            let support = edge
                .support
                .as_ref()
                .ok_or_else(|| DrbacError::UnauthorizedIssuer {
                    id: cred.id(),
                    issuer: cred.body.issuer.0.clone(),
                    role: cred.body.object.to_string(),
                })?;
            if !support.assignment
                || support.role != cred.body.object
                || !matches!(&support.subject, Subject::Entity { name, .. } if *name == cred.body.issuer)
            {
                return Err(DrbacError::BrokenChain(format!(
                    "support proof for edge {} does not authorize its issuer",
                    cred.id()
                )));
            }
            support.verify_with(registry, bus, now, cache)?;
            // Attenuate by the assignment chain's own attribute bounds.
            let mut bound = AttrSet::new();
            for e in &support.edges {
                bound = bound
                    .attenuate(&e.credential.body.attrs)
                    .ok_or_else(|| DrbacError::BrokenChain("assignment attrs annihilate".into()))?;
            }
            cred.body.attrs.attenuate(&bound).ok_or_else(|| {
                DrbacError::BrokenChain(format!(
                    "edge {} grants more than its assignment allows",
                    cred.id()
                ))
            })
        }
        DelegationKind::Assignment => Err(DrbacError::BrokenChain(
            "assignment delegation used as a membership edge".into(),
        )),
    }
}

/// Search statistics from a proof query (drives experiments F2/F8).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Graph nodes expanded during BFS.
    pub nodes_expanded: u64,
    /// Credentials examined (valid or not).
    pub credentials_examined: u64,
    /// Credentials rejected (bad signature, expired, revoked,
    /// unauthorized, attribute annihilation).
    pub credentials_rejected: u64,
}

/// Errors plus stats wrapper for failed searches.
#[derive(Debug)]
pub struct ProofError {
    /// The underlying error (usually [`DrbacError::NoProof`]).
    pub error: DrbacError,
    /// Statistics of the failed search.
    pub stats: SearchStats,
}

impl core::fmt::Display for ProofError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.error)
    }
}
impl std::error::Error for ProofError {}

/// The proof-construction engine: breadth-first search over the delegation
/// graph assembled from a credential set and the distributed repository.
pub struct ProofEngine<'a> {
    registry: &'a EntityRegistry,
    repository: &'a dyn CredentialSource,
    bus: &'a RevocationBus,
    now: Timestamp,
    cache: Option<&'a AuthCache>,
}

impl<'a> ProofEngine<'a> {
    /// The credential source this engine searches (used by certificate
    /// emission to pin the repository epoch).
    pub(crate) fn source(&self) -> &dyn CredentialSource {
        self.repository
    }

    /// The cache this engine answers repeat queries from, if any.
    pub(crate) fn auth_cache(&self) -> Option<&AuthCache> {
        self.cache
    }

    /// Current registry epoch (certificate emission pins it).
    pub(crate) fn registry_epoch(&self) -> u64 {
        self.registry.epoch()
    }

    /// Create an engine evaluating at logical time `now`.
    pub fn new(
        registry: &'a EntityRegistry,
        repository: &'a dyn CredentialSource,
        bus: &'a RevocationBus,
        now: Timestamp,
    ) -> ProofEngine<'a> {
        ProofEngine {
            registry,
            repository,
            bus,
            now,
            cache: None,
        }
    }

    /// Create an engine that answers repeat queries from `cache` (see
    /// [`AuthCache`] for the exactness/invalidation rules). The cache must
    /// be dedicated to this engine's `(registry, repository, bus)` triple.
    pub fn with_cache(
        registry: &'a EntityRegistry,
        repository: &'a dyn CredentialSource,
        bus: &'a RevocationBus,
        now: Timestamp,
        cache: &'a AuthCache,
    ) -> ProofEngine<'a> {
        ProofEngine {
            registry,
            repository,
            bus,
            now,
            cache: Some(cache),
        }
    }

    /// Prove that `subject` holds `target`, drawing on `presented`
    /// credentials (the set X handed over by the requester) plus whatever
    /// the repository can discover. Returns the proof and search stats.
    pub fn prove(
        &self,
        subject: &Subject,
        target: &RoleName,
        presented: &[SignedDelegation],
    ) -> Result<(Proof, SearchStats), ProofError> {
        let mut span = psf_telemetry::span("psf.drbac", "prove");
        span.field("target", target);
        let start = std::time::Instant::now();
        psf_telemetry::counter!("psf.drbac.prove.calls").inc();

        let key = self.cache.map(|_| ProofKey {
            subject: subject_key(subject),
            role: target.to_string(),
            presented: PresentedFingerprint::of(presented),
        });
        // Epoch and per-shard high-water marks captured BEFORE the search
        // reads any repository data. If a mark is unchanged at some later
        // lookup, no mutation to that shard was visible to this search —
        // the seqlock-style argument per-shard pinning rests on.
        let repo_epoch = self.repository.version();
        let marks = self.repository.shard_marks();
        if let (Some(cache), Some(key)) = (self.cache, key.as_ref()) {
            let registry_epoch = self.registry.epoch();
            if let Some(cached) =
                cache.lookup_proof(key, self.now, repo_epoch, marks.as_deref(), registry_epoch)
            {
                let result = cached.map_err(|(error, stats)| ProofError { error, stats });
                if result.is_err() {
                    psf_telemetry::counter!("psf.drbac.prove.failures").inc();
                }
                psf_telemetry::histogram!("psf.drbac.prove.us").record_duration(start.elapsed());
                span.field("cached", true).field("ok", result.is_ok());
                self.audit_prove(subject, target, &result, true, repo_epoch);
                return result;
            }
        }

        let mut frontier = Frontier::default();
        let result = self.prove_search(subject, target, presented, &mut frontier);
        if let (Some(cache), Some(key)) = (self.cache, key) {
            let plain = match &result {
                Ok(ok) => Ok(ok.clone()),
                Err(e) => Err((e.error.clone(), e.stats)),
            };
            // Pin the pre-search mark of every shard the search queried
            // (hit or miss — an empty shard gaining a credential changes
            // the result too), deduplicated per shard.
            let shard_pins = marks.as_ref().map(|marks| {
                let mut pins: Vec<(u32, u64)> = frontier
                    .subjects
                    .iter()
                    .filter_map(|k| self.repository.shard_of_key(k))
                    .map(|s| (s, marks.get(s as usize).copied().unwrap_or(0)))
                    .collect();
                pins.sort_unstable();
                pins.dedup();
                pins
            });
            cache.insert_proof(
                key,
                &plain,
                &frontier,
                self.bus,
                repo_epoch,
                shard_pins,
                self.registry.epoch(),
                self.now,
            );
        }
        let stats = match &result {
            Ok((_, stats)) => *stats,
            Err(e) => e.stats,
        };
        if result.is_err() {
            psf_telemetry::counter!("psf.drbac.prove.failures").inc();
        }
        psf_telemetry::counter!("psf.drbac.nodes.expanded").add(stats.nodes_expanded);
        psf_telemetry::counter!("psf.drbac.creds.examined").add(stats.credentials_examined);
        psf_telemetry::counter!("psf.drbac.creds.rejected").add(stats.credentials_rejected);
        psf_telemetry::histogram!("psf.drbac.prove.us").record_duration(start.elapsed());
        span.field("nodes_expanded", stats.nodes_expanded)
            .field("ok", result.is_ok());
        self.audit_prove(
            subject,
            target,
            &result,
            false,
            self.cache.and_then(|_| self.repository.version()),
        );
        result
    }

    /// Record the decision on the process audit trail: verdict, the
    /// delegation chain it rested on, and where the answer came from.
    fn audit_prove(
        &self,
        subject: &Subject,
        target: &RoleName,
        result: &Result<(Proof, SearchStats), ProofError>,
        from_cache: bool,
        epoch: Option<u64>,
    ) {
        use psf_telemetry::audit::{self, CacheOutcome, Decision, Verdict};
        let outcome = match (self.cache.is_some(), from_cache, result.is_ok()) {
            (false, ..) => CacheOutcome::Uncached,
            (true, false, _) => CacheOutcome::Miss,
            (true, true, true) => CacheOutcome::Hit,
            (true, true, false) => CacheOutcome::NegativeHit,
        };
        match result {
            Ok((proof, _)) => {
                audit::record(
                    Decision::Prove,
                    subject.render(),
                    target.to_string(),
                    Verdict::Allow,
                )
                .chain(&proof.credential_ids())
                .cache(outcome, epoch)
                .commit();
            }
            Err(e) => {
                audit::record(
                    Decision::Prove,
                    subject.render(),
                    target.to_string(),
                    Verdict::Deny,
                )
                .cache(outcome, epoch)
                .detail(e.to_string())
                .commit();
            }
        }
    }

    fn prove_search(
        &self,
        subject: &Subject,
        target: &RoleName,
        presented: &[SignedDelegation],
        frontier: &mut Frontier,
    ) -> Result<(Proof, SearchStats), ProofError> {
        let mut stats = SearchStats::default();
        // Share the presented credentials for the whole search: one Arc
        // per credential here, never a deep clone per expansion again.
        let presented: Vec<Arc<SignedDelegation>> =
            presented.iter().cloned().map(Arc::new).collect();
        // Index presented credentials by subject key.
        let mut presented_idx: HashMap<String, Vec<Arc<SignedDelegation>>> = HashMap::new();
        for c in &presented {
            presented_idx
                .entry(subject_key(&c.body.subject))
                .or_default()
                .push(c.clone());
        }

        #[derive(Clone)]
        struct State {
            node: Subject,
            attrs: AttrSet,
            path: Vec<ProofEdge>,
        }

        let mut visited: HashSet<String> = HashSet::new();
        let mut queue = VecDeque::new();
        visited.insert(subject_key(subject));
        queue.push_back(State {
            node: subject.clone(),
            attrs: AttrSet::new(),
            path: Vec::new(),
        });

        while let Some(state) = queue.pop_front() {
            stats.nodes_expanded += 1;
            let key = subject_key(&state.node);
            frontier.note_subject(&key);
            // Candidate edges: presented + repository (both Arc-shared).
            let mut candidates: Vec<Arc<SignedDelegation>> =
                presented_idx.get(&key).cloned().unwrap_or_default();
            candidates.extend(self.repository.credentials_by_subject(&state.node));

            for cred in candidates {
                stats.credentials_examined += 1;
                frontier.note(&cred, self.now);
                if cred.body.kind == DelegationKind::Assignment {
                    continue; // not a membership edge
                }
                if check_edge_common(&cred, self.registry, self.bus, self.now, self.cache).is_err()
                {
                    stats.credentials_rejected += 1;
                    continue;
                }
                // Issuer authorization (+ support construction).
                let edge = match self.authorize_edge(&cred, &presented, &mut stats, frontier) {
                    Some(e) => e,
                    None => {
                        stats.credentials_rejected += 1;
                        continue;
                    }
                };
                let effective = match effective_edge_attrs(
                    &edge,
                    self.registry,
                    self.bus,
                    self.now,
                    self.cache,
                ) {
                    Ok(a) => a,
                    Err(_) => {
                        stats.credentials_rejected += 1;
                        continue;
                    }
                };
                let new_attrs = match state.attrs.attenuate(&effective) {
                    Some(a) => a,
                    None => {
                        stats.credentials_rejected += 1;
                        continue;
                    }
                };
                let mut path = state.path.clone();
                let object = edge.credential.body.object.clone();
                path.push(edge);
                if object == *target {
                    let proof = Proof {
                        subject: subject.clone(),
                        role: target.clone(),
                        assignment: false,
                        attrs: new_attrs,
                        edges: path,
                    };
                    return Ok((proof, stats));
                }
                let next = Subject::Role(object);
                let next_key = subject_key(&next);
                if visited.insert(next_key) {
                    queue.push_back(State {
                        node: next,
                        attrs: new_attrs,
                        path,
                    });
                }
            }
        }

        Err(ProofError {
            error: DrbacError::NoProof {
                subject: subject.render(),
                role: target.to_string(),
            },
            stats,
        })
    }

    /// Like [`prove`](Self::prove) but additionally requires the resulting
    /// attributes to satisfy `required` — the paper's "is X a Y (with
    /// constraints)?" query used for node/component authorization.
    pub fn prove_with(
        &self,
        subject: &Subject,
        target: &RoleName,
        required: &AttrSet,
        presented: &[SignedDelegation],
    ) -> Result<(Proof, SearchStats), ProofError> {
        let (proof, stats) = self.prove(subject, target, presented)?;
        if proof.attrs.satisfies(required) {
            Ok((proof, stats))
        } else {
            Err(ProofError {
                error: DrbacError::NoProof {
                    subject: subject.render(),
                    role: format!("{target}{}", required.render()),
                },
                stats,
            })
        }
    }

    /// Convenience boolean query.
    pub fn check(
        &self,
        subject: &Subject,
        target: &RoleName,
        presented: &[SignedDelegation],
    ) -> bool {
        self.prove(subject, target, presented).is_ok()
    }

    fn authorize_edge(
        &self,
        cred: &Arc<SignedDelegation>,
        presented: &[Arc<SignedDelegation>],
        stats: &mut SearchStats,
        frontier: &mut Frontier,
    ) -> Option<ProofEdge> {
        match cred.body.kind {
            DelegationKind::SelfCertifying => Some(ProofEdge {
                credential: cred.clone(),
                support: None,
            }),
            DelegationKind::ThirdParty => {
                let issuer_key = self.registry.lookup(&cred.body.issuer)?;
                let holder = Subject::Entity {
                    name: cred.body.issuer.clone(),
                    key: issuer_key,
                };
                let support = self.prove_assignment(
                    &holder,
                    &cred.body.object,
                    presented,
                    &mut HashSet::new(),
                    stats,
                    frontier,
                )?;
                Some(ProofEdge {
                    credential: cred.clone(),
                    support: Some(Box::new(support)),
                })
            }
            DelegationKind::Assignment => None,
        }
    }

    /// Prove that `holder` (an entity) has the right of assignment for
    /// `role`: either it is the owner, or a chain of assignment
    /// delegations leads back to the owner.
    pub fn prove_assignment(
        &self,
        holder: &Subject,
        role: &RoleName,
        presented: &[Arc<SignedDelegation>],
        in_progress: &mut HashSet<String>,
        stats: &mut SearchStats,
        frontier: &mut Frontier,
    ) -> Option<Proof> {
        let holder_name = match holder {
            Subject::Entity { name, .. } => name.clone(),
            Subject::Role(_) => return None, // assignment subjects must be keyed entities
        };
        if holder_name == role.owner {
            return Some(Proof {
                subject: holder.clone(),
                role: role.clone(),
                assignment: true,
                attrs: AttrSet::new(),
                edges: Vec::new(),
            });
        }
        let hkey = subject_key(holder);
        let key = format!("{hkey}@{role}");
        if !in_progress.insert(key) {
            return None; // cycle
        }

        // Assignment credentials naming this holder for this role.
        frontier.note_subject(&hkey);
        let mut candidates: Vec<Arc<SignedDelegation>> = presented
            .iter()
            .filter(|c| {
                c.body.kind == DelegationKind::Assignment
                    && c.body.object == *role
                    && subject_key(&c.body.subject) == hkey
            })
            .cloned()
            .collect();
        candidates.extend(
            self.repository
                .credentials_by_subject(holder)
                .into_iter()
                .filter(|c| c.body.kind == DelegationKind::Assignment && c.body.object == *role),
        );

        for cred in candidates {
            stats.credentials_examined += 1;
            frontier.note(&cred, self.now);
            if check_edge_common(&cred, self.registry, self.bus, self.now, self.cache).is_err() {
                stats.credentials_rejected += 1;
                continue;
            }
            let issuer_key = match self.registry.lookup(&cred.body.issuer) {
                Some(k) => k,
                None => continue,
            };
            let issuer_subject = Subject::Entity {
                name: cred.body.issuer.clone(),
                key: issuer_key,
            };
            if let Some(upstream) = self.prove_assignment(
                &issuer_subject,
                role,
                presented,
                in_progress,
                stats,
                frontier,
            ) {
                let mut edges = vec![ProofEdge {
                    credential: cred,
                    support: None,
                }];
                edges.extend(upstream.edges);
                return Some(Proof {
                    subject: holder.clone(),
                    role: role.clone(),
                    assignment: true,
                    attrs: AttrSet::new(),
                    edges,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrValue;
    use crate::delegation::DelegationBuilder;
    use crate::entity::Entity;

    struct World {
        registry: EntityRegistry,
        repo: Repository,
        bus: RevocationBus,
        ny: Entity,
        sd: Entity,
        se: Entity,
        alice: Entity,
        bob: Entity,
    }

    fn world() -> World {
        let registry = EntityRegistry::new();
        let ny = Entity::with_seed("Comp.NY", b"w");
        let sd = Entity::with_seed("Comp.SD", b"w");
        let se = Entity::with_seed("Inc.SE", b"w");
        let alice = Entity::with_seed("Alice", b"w");
        let bob = Entity::with_seed("Bob", b"w");
        for e in [&ny, &sd, &se, &alice, &bob] {
            registry.register(e);
        }
        World {
            registry,
            repo: Repository::new(),
            bus: RevocationBus::new(),
            ny,
            sd,
            se,
            alice,
            bob,
        }
    }

    impl World {
        fn engine(&self) -> ProofEngine<'_> {
            ProofEngine::new(&self.registry, &self.repo, &self.bus, 0)
        }
    }

    #[test]
    fn direct_membership() {
        let w = world();
        // (1) [ Alice -> Comp.NY.Member ] Comp.NY
        let c = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.alice)
            .role(w.ny.role("Member"))
            .sign();
        let (proof, stats) = w
            .engine()
            .prove(&w.alice.as_subject(), &w.ny.role("Member"), &[c])
            .unwrap();
        assert_eq!(proof.edges.len(), 1);
        proof.verify(&w.registry, &w.bus, 0).unwrap();
        assert!(stats.credentials_examined >= 1);
    }

    #[test]
    fn t2_bob_via_role_mapping() {
        let w = world();
        // (11) [ Bob -> Comp.SD.Member ] Comp.SD
        let c11 = DelegationBuilder::new(&w.sd)
            .subject_entity(&w.bob)
            .role(w.sd.role("Member"))
            .sign();
        // (2) [ Comp.SD.Member -> Comp.NY.Member ] Comp.NY
        let c2 = DelegationBuilder::new(&w.ny)
            .subject_role(w.sd.role("Member"))
            .role(w.ny.role("Member"))
            .sign();
        let (proof, _) = w
            .engine()
            .prove(&w.bob.as_subject(), &w.ny.role("Member"), &[c11, c2])
            .unwrap();
        assert_eq!(proof.edges.len(), 2);
        proof.verify(&w.registry, &w.bus, 0).unwrap();
    }

    #[test]
    fn no_proof_without_credentials() {
        let w = world();
        let err = w
            .engine()
            .prove(&w.bob.as_subject(), &w.ny.role("Member"), &[])
            .unwrap_err();
        assert!(matches!(err.error, DrbacError::NoProof { .. }));
    }

    #[test]
    fn third_party_requires_assignment() {
        let w = world();
        // Comp.SD tries to hand out Comp.NY.Partner without authority:
        let c = DelegationBuilder::new(&w.sd)
            .subject_entity(&w.bob)
            .role(w.ny.role("Partner"))
            .sign();
        assert!(w
            .engine()
            .prove(
                &w.bob.as_subject(),
                &w.ny.role("Partner"),
                std::slice::from_ref(&c)
            )
            .is_err());

        // Now grant the assignment right:
        // (3) [ Comp.SD -> Comp.NY.Partner ' ] Comp.NY
        let c3 = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.sd)
            .assignment()
            .role(w.ny.role("Partner"))
            .sign();
        let (proof, _) = w
            .engine()
            .prove(&w.bob.as_subject(), &w.ny.role("Partner"), &[c, c3])
            .unwrap();
        assert_eq!(proof.edges.len(), 1);
        let support = proof.edges[0].support.as_ref().unwrap();
        assert!(support.assignment);
        assert_eq!(support.edges.len(), 1);
        proof.verify(&w.registry, &w.bus, 0).unwrap();
    }

    #[test]
    fn chained_assignment_rights() {
        let w = world();
        // NY assigns to SD; SD re-assigns to SE; SE grants Bob membership.
        let a1 = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.sd)
            .assignment()
            .role(w.ny.role("Partner"))
            .sign();
        let a2 = DelegationBuilder::new(&w.sd)
            .subject_entity(&w.se)
            .assignment()
            .role(w.ny.role("Partner"))
            .sign();
        let m = DelegationBuilder::new(&w.se)
            .subject_entity(&w.bob)
            .role(w.ny.role("Partner"))
            .sign();
        let (proof, _) = w
            .engine()
            .prove(&w.bob.as_subject(), &w.ny.role("Partner"), &[a1, a2, m])
            .unwrap();
        let support = proof.edges[0].support.as_ref().unwrap();
        assert_eq!(support.edges.len(), 2);
        proof.verify(&w.registry, &w.bus, 0).unwrap();
    }

    #[test]
    fn attribute_attenuation_along_chain() {
        let w = world();
        let mail = Entity::with_seed("Mail", b"w");
        w.registry.register(&mail);
        // (8) [ Mail.Exec-ish -> Comp.NY.Executable with CPU=100 ] Comp.NY — modeled
        // as a role-mapped chain: component role → NY role → SD role.
        let c8 = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.alice) // stand-in for the component
            .role(w.ny.role("Executable"))
            .attr("CPU", AttrValue::Capacity(100))
            .sign();
        // (14) [ Comp.NY.Executable -> Comp.SD.Executable with CPU=80 ] Comp.SD
        let c14 = DelegationBuilder::new(&w.sd)
            .subject_role(w.ny.role("Executable"))
            .role(w.sd.role("Executable"))
            .attr("CPU", AttrValue::Capacity(80))
            .sign();
        let (proof, _) = w
            .engine()
            .prove(&w.alice.as_subject(), &w.sd.role("Executable"), &[c8, c14])
            .unwrap();
        // min(100, 80) = 80
        assert_eq!(proof.attrs.get("CPU"), Some(&AttrValue::Capacity(80)));
        proof.verify(&w.registry, &w.bus, 0).unwrap();
    }

    #[test]
    fn disjoint_attributes_kill_path() {
        let w = world();
        let c1 = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.alice)
            .role(w.ny.role("Node"))
            .attr("Trust", AttrValue::Range(0, 3))
            .sign();
        let c2 = DelegationBuilder::new(&w.sd)
            .subject_role(w.ny.role("Node"))
            .role(w.sd.role("Node"))
            .attr("Trust", AttrValue::Range(5, 9))
            .sign();
        // SD owns its own role so c2 is self-certifying; chain exists but
        // trust ranges are disjoint → no proof.
        assert!(w
            .engine()
            .prove(&w.alice.as_subject(), &w.sd.role("Node"), &[c1, c2])
            .is_err());
    }

    #[test]
    fn prove_with_checks_requirements() {
        let w = world();
        let c = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.alice)
            .role(w.ny.role("Node"))
            .attr("Secure", AttrValue::set(["false"]))
            .sign();
        let need_secure = AttrSet::new().with("Secure", AttrValue::set(["true"]));
        assert!(w
            .engine()
            .prove_with(
                &w.alice.as_subject(),
                &w.ny.role("Node"),
                &need_secure,
                std::slice::from_ref(&c)
            )
            .is_err());
        let need_insecure = AttrSet::new().with("Secure", AttrValue::set(["false"]));
        assert!(w
            .engine()
            .prove_with(
                &w.alice.as_subject(),
                &w.ny.role("Node"),
                &need_insecure,
                &[c]
            )
            .is_ok());
    }

    #[test]
    fn revoked_credential_blocks_proof() {
        let w = world();
        let c = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.alice)
            .role(w.ny.role("Member"))
            .monitored()
            .sign();
        let (proof, _) = w
            .engine()
            .prove(
                &w.alice.as_subject(),
                &w.ny.role("Member"),
                std::slice::from_ref(&c),
            )
            .unwrap();
        w.bus.revoke(&c.id());
        assert!(w
            .engine()
            .prove(&w.alice.as_subject(), &w.ny.role("Member"), &[c])
            .is_err());
        // The already-issued proof also fails re-verification.
        assert!(matches!(
            proof.verify(&w.registry, &w.bus, 0),
            Err(DrbacError::Revoked(_))
        ));
    }

    #[test]
    fn expired_credential_blocks_proof() {
        let w = world();
        let c = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.alice)
            .role(w.ny.role("Member"))
            .expires(50)
            .sign();
        let engine_ok = ProofEngine::new(&w.registry, &w.repo, &w.bus, 49);
        assert!(engine_ok
            .prove(
                &w.alice.as_subject(),
                &w.ny.role("Member"),
                std::slice::from_ref(&c)
            )
            .is_ok());
        let engine_late = ProofEngine::new(&w.registry, &w.repo, &w.bus, 51);
        assert!(engine_late
            .prove(&w.alice.as_subject(), &w.ny.role("Member"), &[c])
            .is_err());
    }

    #[test]
    fn proof_from_repository_discovery() {
        let w = world();
        let c11 = DelegationBuilder::new(&w.sd)
            .subject_entity(&w.bob)
            .role(w.sd.role("Member"))
            .sign();
        let c2 = DelegationBuilder::new(&w.ny)
            .subject_role(w.sd.role("Member"))
            .role(w.ny.role("Member"))
            .sign();
        w.repo.publish_at_issuer(c11);
        w.repo.publish_at_issuer(c2);
        // No presented credentials at all — discovery finds the chain.
        let (proof, _) = w
            .engine()
            .prove(&w.bob.as_subject(), &w.ny.role("Member"), &[])
            .unwrap();
        assert_eq!(proof.edges.len(), 2);
        proof.verify(&w.registry, &w.bus, 0).unwrap();
    }

    #[test]
    fn tampered_proof_fails_verification() {
        let w = world();
        let c = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.alice)
            .role(w.ny.role("Member"))
            .sign();
        let (mut proof, _) = w
            .engine()
            .prove(&w.alice.as_subject(), &w.ny.role("Member"), &[c])
            .unwrap();
        // Claim better attributes than the chain grants.
        proof.attrs = AttrSet::new().with("CPU", AttrValue::Capacity(999));
        assert!(proof.verify(&w.registry, &w.bus, 0).is_err());
    }

    #[test]
    fn proof_subject_cannot_be_swapped() {
        let w = world();
        let c = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.alice)
            .role(w.ny.role("Member"))
            .sign();
        let (mut proof, _) = w
            .engine()
            .prove(&w.alice.as_subject(), &w.ny.role("Member"), &[c])
            .unwrap();
        proof.subject = w.bob.as_subject();
        assert!(proof.verify(&w.registry, &w.bus, 0).is_err());
    }

    #[test]
    fn monitor_covers_all_chain_credentials() {
        let w = world();
        let c11 = DelegationBuilder::new(&w.sd)
            .subject_entity(&w.bob)
            .role(w.sd.role("Member"))
            .sign();
        let c2 = DelegationBuilder::new(&w.ny)
            .subject_role(w.sd.role("Member"))
            .role(w.ny.role("Member"))
            .sign();
        let (proof, _) = w
            .engine()
            .prove(
                &w.bob.as_subject(),
                &w.ny.role("Member"),
                &[c11.clone(), c2],
            )
            .unwrap();
        let ids = proof.credential_ids();
        assert_eq!(ids.len(), 2);
        let monitor = w.bus.monitor(ids);
        assert!(monitor.is_valid());
        w.bus.revoke(&c11.id());
        assert!(!monitor.is_valid());
    }

    #[test]
    fn third_party_attrs_bounded_by_assignment() {
        let w = world();
        // NY assigns Partner to SD but only with CPU ≤ 50.
        let a = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.sd)
            .assignment()
            .role(w.ny.role("Partner"))
            .attr("CPU", AttrValue::Capacity(50))
            .sign();
        // SD tries to grant Bob CPU = 100.
        let m = DelegationBuilder::new(&w.sd)
            .subject_entity(&w.bob)
            .role(w.ny.role("Partner"))
            .attr("CPU", AttrValue::Capacity(100))
            .sign();
        let (proof, _) = w
            .engine()
            .prove(&w.bob.as_subject(), &w.ny.role("Partner"), &[a, m])
            .unwrap();
        // Bob ends up with min(100, 50) = 50.
        assert_eq!(proof.attrs.get("CPU"), Some(&AttrValue::Capacity(50)));
        proof.verify(&w.registry, &w.bus, 0).unwrap();
    }
}
