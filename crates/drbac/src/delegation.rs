//! Delegations — the dRBAC credential (paper Table 1).
//!
//! ```text
//! Self-certifying   [ Subject → Issuer.Role ] Issuer   with Attr₁=V₁ …
//! Third-party       [ Subject → Entity.Role ] Issuer   with Attr₁=V₁ …
//! Assignment        [ Subject → Entity.Role ' ] Issuer with Attr₁=V₁ …
//! ```
//!
//! Every delegation is signed by its issuer over a canonical byte
//! encoding. A [`SignedDelegation`] is self-describing: given an
//! [`EntityRegistry`](crate::EntityRegistry) to resolve the issuer's public
//! key, anyone can re-verify it.

use crate::attr::AttrSet;
use crate::entity::{Entity, EntityName, RoleName, Subject};
use crate::{DrbacError, Timestamp};
use psf_crypto::ed25519::Signature;

/// The three delegation types of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DelegationKind {
    /// `[ Subject → Issuer.Role ] Issuer` — the role owner grants
    /// membership directly.
    SelfCertifying,
    /// `[ Subject → Entity.Role ] Issuer`, issuer ≠ owner — valid only if
    /// the issuer holds the assignment right for the role.
    ThirdParty,
    /// `[ Subject → Entity.Role' ] Issuer` — grants the *right of
    /// assignment* (and further re-assignment) for the role.
    Assignment,
}

/// The unsigned body of a delegation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delegation {
    /// Who receives the rights.
    pub subject: Subject,
    /// The role whose rights are conveyed (`Entity.Role`).
    pub object: RoleName,
    /// Which of the three forms this is.
    pub kind: DelegationKind,
    /// Who issued (and signed) the delegation.
    pub issuer: EntityName,
    /// Attribute attenuations carried by this edge.
    pub attrs: AttrSet,
    /// Optional expiration (logical seconds); `None` = no expiry.
    pub expires: Option<Timestamp>,
    /// Whether the credential requires online validity monitoring from its
    /// home (paper §3.1); monitored credentials are checked against the
    /// revocation bus on every proof evaluation and subscribe monitors.
    pub monitored: bool,
    /// Issuer-chosen serial number; distinguishes re-issued credentials
    /// with otherwise identical content (e.g. re-validation after a
    /// revocation).
    pub serial: u64,
}

impl Delegation {
    /// Canonical byte encoding over which the issuer signs.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(b"dRBAC-delegation-v1");
        self.subject.encode(&mut out);
        let obj = self.object.to_string();
        out.extend_from_slice(&(obj.len() as u32).to_le_bytes());
        out.extend_from_slice(obj.as_bytes());
        out.push(match self.kind {
            DelegationKind::SelfCertifying => 0,
            DelegationKind::ThirdParty => 1,
            DelegationKind::Assignment => 2,
        });
        out.extend_from_slice(&(self.issuer.0.len() as u32).to_le_bytes());
        out.extend_from_slice(self.issuer.0.as_bytes());
        self.attrs.encode(&mut out);
        match self.expires {
            Some(t) => {
                out.push(1);
                out.extend_from_slice(&t.to_le_bytes());
            }
            None => out.push(0),
        }
        out.push(self.monitored as u8);
        out.extend_from_slice(&self.serial.to_le_bytes());
        out
    }

    /// Render in the paper's bracket syntax, e.g.
    /// `[ Bob -> Comp.SD.Member ] Comp.SD`.
    pub fn render(&self) -> String {
        let prime = if self.kind == DelegationKind::Assignment {
            " '"
        } else {
            ""
        };
        format!(
            "[ {} -> {}{} ] {}{}",
            self.subject.render(),
            self.object,
            prime,
            self.issuer,
            self.attrs.render()
        )
    }
}

/// A delegation plus its issuer's signature; the unit stored in the
/// repository and exchanged between domains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedDelegation {
    /// The signed body.
    pub body: Delegation,
    /// The issuer's Ed25519 signature over [`Delegation::encode`].
    pub signature: Signature,
}

impl SignedDelegation {
    /// Stable credential id: hex SHA-256 (truncated) of body + signature.
    pub fn id(&self) -> String {
        let mut data = self.body.encode();
        data.extend_from_slice(&self.signature.to_bytes());
        let digest = psf_crypto::sha256(&data);
        digest[..8].iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Structural check (self-certifying ⇒ issuer owns the role): the
    /// time-independent, key-independent part of [`verify`](Self::verify).
    pub fn check_structure(&self) -> Result<(), DrbacError> {
        if self.body.kind == DelegationKind::SelfCertifying
            && self.body.issuer != self.body.object.owner
        {
            return Err(DrbacError::BrokenChain(format!(
                "self-certifying delegation {} not issued by role owner",
                self.id()
            )));
        }
        Ok(())
    }

    /// Expiration check at `now`: the time-dependent part of
    /// [`verify`](Self::verify).
    pub fn check_expiry(&self, now: Timestamp) -> Result<(), DrbacError> {
        if let Some(expires) = self.body.expires {
            if now >= expires {
                return Err(DrbacError::Expired {
                    id: self.id(),
                    expires,
                    now,
                });
            }
        }
        Ok(())
    }

    /// Cryptographic signature check alone (no structure, no expiry) —
    /// the expensive Ed25519 operation a verified-credential cache
    /// memoizes per `(credential id, issuer key)`.
    pub fn verify_signature(
        &self,
        issuer_key: &psf_crypto::ed25519::VerifyingKey,
    ) -> Result<(), DrbacError> {
        issuer_key
            .verify(&self.body.encode(), &self.signature)
            .map_err(|_| DrbacError::BadSignature)
    }

    /// Verify the issuer signature given the issuer's public key, plus
    /// structural checks (self-certifying ⇒ issuer owns the role) and
    /// expiration at `now`.
    pub fn verify(
        &self,
        issuer_key: &psf_crypto::ed25519::VerifyingKey,
        now: Timestamp,
    ) -> Result<(), DrbacError> {
        self.check_structure()?;
        self.check_expiry(now)?;
        self.verify_signature(issuer_key)
    }

    /// Approximate on-the-wire size in bytes (used by the storage-model
    /// comparison, F1).
    pub fn wire_size(&self) -> usize {
        self.body.encode().len() + 64
    }
}

/// Fluent builder for issuing delegations.
///
/// ```
/// use psf_drbac::{DelegationBuilder, Entity};
/// let comp_ny = Entity::with_seed("Comp.NY", b"demo");
/// let alice = Entity::with_seed("Alice", b"demo");
/// // (1) [ Alice -> Comp.NY.Member ] Comp.NY
/// let cred = DelegationBuilder::new(&comp_ny)
///     .subject_entity(&alice)
///     .role(comp_ny.role("Member"))
///     .sign();
/// assert_eq!(cred.body.render(), "[ Alice -> Comp.NY.Member ] Comp.NY");
/// ```
pub struct DelegationBuilder<'a> {
    issuer: &'a Entity,
    subject: Option<Subject>,
    object: Option<RoleName>,
    kind: Option<DelegationKind>,
    attrs: AttrSet,
    expires: Option<Timestamp>,
    monitored: bool,
    serial: u64,
}

impl<'a> DelegationBuilder<'a> {
    /// Start building a delegation issued (signed) by `issuer`.
    pub fn new(issuer: &'a Entity) -> DelegationBuilder<'a> {
        DelegationBuilder {
            issuer,
            subject: None,
            object: None,
            kind: None,
            attrs: AttrSet::new(),
            expires: None,
            monitored: false,
            serial: 0,
        }
    }

    /// Subject = a keyed entity.
    pub fn subject_entity(mut self, e: &Entity) -> Self {
        self.subject = Some(e.as_subject());
        self
    }

    /// Subject = a role (role→role mapping).
    pub fn subject_role(mut self, r: RoleName) -> Self {
        self.subject = Some(Subject::Role(r));
        self
    }

    /// The object role being conveyed. The delegation kind defaults to
    /// self-certifying when the issuer owns the role and third-party
    /// otherwise; call [`assignment`](Self::assignment) to grant the
    /// assignment right instead.
    pub fn role(mut self, r: RoleName) -> Self {
        let kind = if r.owner == self.issuer.name {
            DelegationKind::SelfCertifying
        } else {
            DelegationKind::ThirdParty
        };
        self.object = Some(r);
        self.kind = Some(self.kind.unwrap_or(kind));
        self
    }

    /// Make this an assignment delegation (the trailing `'` of Table 1).
    pub fn assignment(mut self) -> Self {
        self.kind = Some(DelegationKind::Assignment);
        self
    }

    /// Attach an attribute.
    pub fn attr(mut self, name: impl Into<String>, value: crate::attr::AttrValue) -> Self {
        self.attrs = self.attrs.with(name, value);
        self
    }

    /// Set an expiration timestamp.
    pub fn expires(mut self, t: Timestamp) -> Self {
        self.expires = Some(t);
        self
    }

    /// Require online validity monitoring for this credential.
    pub fn monitored(mut self) -> Self {
        self.monitored = true;
        self
    }

    /// Set an issuer-chosen serial number (distinguishes re-issued
    /// credentials with identical content).
    pub fn serial(mut self, serial: u64) -> Self {
        self.serial = serial;
        self
    }

    /// Sign and produce the credential.
    ///
    /// # Panics
    /// If subject or role were not set.
    pub fn sign(self) -> SignedDelegation {
        let body = Delegation {
            subject: self.subject.expect("delegation subject not set"),
            object: self.object.expect("delegation role not set"),
            kind: self.kind.expect("delegation kind not set"),
            issuer: self.issuer.name.clone(),
            attrs: self.attrs,
            expires: self.expires,
            monitored: self.monitored,
            serial: self.serial,
        };
        let signature = self.issuer.sign(&body.encode());
        SignedDelegation { body, signature }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrValue;

    fn entities() -> (Entity, Entity, Entity) {
        (
            Entity::with_seed("Comp.NY", b"t"),
            Entity::with_seed("Comp.SD", b"t"),
            Entity::with_seed("Alice", b"t"),
        )
    }

    #[test]
    fn t1_self_certifying_form() {
        let (ny, _, alice) = entities();
        let d = DelegationBuilder::new(&ny)
            .subject_entity(&alice)
            .role(ny.role("Member"))
            .sign();
        assert_eq!(d.body.kind, DelegationKind::SelfCertifying);
        assert_eq!(d.body.render(), "[ Alice -> Comp.NY.Member ] Comp.NY");
        d.verify(&ny.public_key(), 0).unwrap();
    }

    #[test]
    fn t1_third_party_form() {
        let (ny, sd, _) = entities();
        // (12) [ Inc.SE.Member -> Comp.NY.Partner ] Comp.SD
        let d = DelegationBuilder::new(&sd)
            .subject_role(RoleName::new("Inc.SE", "Member"))
            .role(ny.role("Partner"))
            .sign();
        assert_eq!(d.body.kind, DelegationKind::ThirdParty);
        assert_eq!(
            d.body.render(),
            "[ Inc.SE.Member -> Comp.NY.Partner ] Comp.SD"
        );
        d.verify(&sd.public_key(), 0).unwrap();
    }

    #[test]
    fn t1_assignment_form_renders_prime() {
        let (ny, sd, _) = entities();
        // (3) [ Comp.SD -> Comp.NY.Partner ' ] Comp.NY
        let d = DelegationBuilder::new(&ny)
            .subject_entity(&sd)
            .assignment()
            .role(ny.role("Partner"))
            .sign();
        assert_eq!(d.body.kind, DelegationKind::Assignment);
        assert_eq!(d.body.render(), "[ Comp.SD -> Comp.NY.Partner ' ] Comp.NY");
    }

    #[test]
    fn t1_attributes_render() {
        let mail = Entity::with_seed("Mail", b"t");
        // (4) [ Dell.Linux -> Mail.Node with Secure={true,false} Trust=(0,10) ] Mail
        let d = DelegationBuilder::new(&mail)
            .subject_role(RoleName::new("Dell", "Linux"))
            .role(mail.role("Node"))
            .attr("Secure", AttrValue::set(["true", "false"]))
            .attr("Trust", AttrValue::Range(0, 10))
            .sign();
        assert_eq!(
            d.body.render(),
            "[ Dell.Linux -> Mail.Node ] Mail with Secure={false,true} Trust=(0,10)"
        );
    }

    #[test]
    fn signature_binds_content() {
        let (ny, _, alice) = entities();
        let d = DelegationBuilder::new(&ny)
            .subject_entity(&alice)
            .role(ny.role("Member"))
            .sign();
        // Tamper with the role.
        let mut forged = d.clone();
        forged.body.object = ny.role("Admin");
        assert_eq!(
            forged.verify(&ny.public_key(), 0),
            Err(DrbacError::BadSignature)
        );
    }

    #[test]
    fn wrong_issuer_key_rejected() {
        let (ny, sd, alice) = entities();
        let d = DelegationBuilder::new(&ny)
            .subject_entity(&alice)
            .role(ny.role("Member"))
            .sign();
        assert_eq!(d.verify(&sd.public_key(), 0), Err(DrbacError::BadSignature));
    }

    #[test]
    fn expiry_enforced() {
        let (ny, _, alice) = entities();
        let d = DelegationBuilder::new(&ny)
            .subject_entity(&alice)
            .role(ny.role("Member"))
            .expires(100)
            .sign();
        d.verify(&ny.public_key(), 99).unwrap();
        assert!(matches!(
            d.verify(&ny.public_key(), 100),
            Err(DrbacError::Expired { .. })
        ));
    }

    #[test]
    fn self_certifying_by_non_owner_rejected() {
        let (ny, sd, alice) = entities();
        // Force a bogus self-certifying delegation for a foreign role.
        let body = Delegation {
            subject: alice.as_subject(),
            object: ny.role("Member"),
            kind: DelegationKind::SelfCertifying,
            issuer: sd.name.clone(),
            attrs: AttrSet::new(),
            expires: None,
            monitored: false,
            serial: 0,
        };
        let signature = sd.sign(&body.encode());
        let forged = SignedDelegation { body, signature };
        assert!(matches!(
            forged.verify(&sd.public_key(), 0),
            Err(DrbacError::BrokenChain(_))
        ));
    }

    #[test]
    fn ids_are_stable_and_distinct() {
        let (ny, _, alice) = entities();
        let d1 = DelegationBuilder::new(&ny)
            .subject_entity(&alice)
            .role(ny.role("Member"))
            .sign();
        let d2 = DelegationBuilder::new(&ny)
            .subject_entity(&alice)
            .role(ny.role("Partner"))
            .sign();
        assert_eq!(d1.id(), d1.id());
        assert_ne!(d1.id(), d2.id());
    }
}
