//! Valued attributes on delegations, with attenuation.
//!
//! Paper examples (Table 2): `Secure={true,false}`, `Trust=(0,10)`,
//! `CPU=100`. When delegations chain, the rights they convey can only
//! *narrow*: ranges and sets intersect, capacities take the minimum.

use std::collections::{BTreeMap, BTreeSet};

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    /// A capacity-style number (e.g. `CPU=100`); attenuates by minimum.
    Capacity(i64),
    /// An inclusive numeric range (e.g. `Trust=(0,10)`); attenuates by
    /// intersection. An empty intersection kills the chain.
    Range(i64, i64),
    /// A set of admissible symbolic values (e.g. `Secure={true,false}`);
    /// attenuates by intersection.
    Set(BTreeSet<String>),
}

impl AttrValue {
    /// Build a [`AttrValue::Set`] from string items.
    pub fn set<I: IntoIterator<Item = S>, S: Into<String>>(items: I) -> AttrValue {
        AttrValue::Set(items.into_iter().map(Into::into).collect())
    }

    /// Attenuate `self` by `other`; `None` means the combination is empty
    /// (the chain conveys nothing for this attribute and is invalid).
    pub fn attenuate(&self, other: &AttrValue) -> Option<AttrValue> {
        match (self, other) {
            (AttrValue::Capacity(a), AttrValue::Capacity(b)) => {
                Some(AttrValue::Capacity(*a.min(b)))
            }
            (AttrValue::Range(lo1, hi1), AttrValue::Range(lo2, hi2)) => {
                let lo = *lo1.max(lo2);
                let hi = *hi1.min(hi2);
                if lo <= hi {
                    Some(AttrValue::Range(lo, hi))
                } else {
                    None
                }
            }
            (AttrValue::Set(a), AttrValue::Set(b)) => {
                let i: BTreeSet<String> = a.intersection(b).cloned().collect();
                if i.is_empty() {
                    None
                } else {
                    Some(AttrValue::Set(i))
                }
            }
            // Mixed kinds: treat a capacity as the range [0, cap].
            (AttrValue::Capacity(a), AttrValue::Range(lo, hi))
            | (AttrValue::Range(lo, hi), AttrValue::Capacity(a)) => {
                AttrValue::Range(0, *a).attenuate(&AttrValue::Range(*lo, *hi))
            }
            // A set cannot meet a numeric kind.
            _ => None,
        }
    }

    /// Whether this value *satisfies* a required value. Capacities demand
    /// `have ≥ need` (a chain granting CPU=80 cannot host a CPU=90
    /// component); other kinds require a non-empty intersection.
    pub fn satisfies(&self, required: &AttrValue) -> bool {
        match (self, required) {
            (AttrValue::Capacity(have), AttrValue::Capacity(need)) => have >= need,
            (AttrValue::Range(_, hi), AttrValue::Capacity(need)) => hi >= need,
            _ => self.attenuate(required).is_some(),
        }
    }

    /// Paper-syntax rendering (`(0,10)`, `{true,false}`, `100`).
    pub fn render(&self) -> String {
        match self {
            AttrValue::Capacity(v) => v.to_string(),
            AttrValue::Range(lo, hi) => format!("({lo},{hi})"),
            AttrValue::Set(s) => {
                let items: Vec<&str> = s.iter().map(String::as_str).collect();
                format!("{{{}}}", items.join(","))
            }
        }
    }

    /// Canonical byte encoding for signing.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AttrValue::Capacity(v) => {
                out.push(0);
                out.extend_from_slice(&v.to_le_bytes());
            }
            AttrValue::Range(lo, hi) => {
                out.push(1);
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
            AttrValue::Set(s) => {
                out.push(2);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                for item in s {
                    out.extend_from_slice(&(item.len() as u32).to_le_bytes());
                    out.extend_from_slice(item.as_bytes());
                }
            }
        }
    }
}

/// An ordered attribute map (`name → value`). Ordered so the signed
/// encoding is canonical.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AttrSet(pub BTreeMap<String, AttrValue>);

impl AttrSet {
    /// The empty attribute set (conveys the role unconditionally).
    pub fn new() -> AttrSet {
        AttrSet::default()
    }

    /// Builder: insert an attribute.
    pub fn with(mut self, name: impl Into<String>, value: AttrValue) -> AttrSet {
        self.0.insert(name.into(), value);
        self
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> Option<&AttrValue> {
        self.0.get(name)
    }

    /// True if no attributes are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Attenuate this set by the next hop's attributes. Keys present in
    /// both must intersect non-emptily (else `None`); keys present in only
    /// one side carry over (a delegation can *add* constraints).
    pub fn attenuate(&self, next: &AttrSet) -> Option<AttrSet> {
        let mut out = self.0.clone();
        for (k, v) in &next.0 {
            match out.get(k) {
                Some(existing) => {
                    let narrowed = existing.attenuate(v)?;
                    out.insert(k.clone(), narrowed);
                }
                None => {
                    out.insert(k.clone(), v.clone());
                }
            }
        }
        Some(AttrSet(out))
    }

    /// Whether this set satisfies all `required` attributes: every required
    /// key must be present and compatible.
    pub fn satisfies(&self, required: &AttrSet) -> bool {
        required.0.iter().all(|(k, req)| {
            self.0
                .get(k)
                .map(|have| have.satisfies(req))
                .unwrap_or(false)
        })
    }

    /// Paper-syntax rendering: `with CPU=100 Trust=(0,10)` (empty string
    /// when no attributes).
    pub fn render(&self) -> String {
        if self.0.is_empty() {
            return String::new();
        }
        let parts: Vec<String> = self
            .0
            .iter()
            .map(|(k, v)| format!("{k}={}", v.render()))
            .collect();
        format!(" with {}", parts.join(" "))
    }

    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.0.len() as u32).to_le_bytes());
        for (k, v) in &self.0 {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(k.as_bytes());
            v.encode(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_takes_min() {
        let a = AttrValue::Capacity(100);
        let b = AttrValue::Capacity(80);
        assert_eq!(a.attenuate(&b), Some(AttrValue::Capacity(80)));
        assert_eq!(b.attenuate(&a), Some(AttrValue::Capacity(80)));
    }

    #[test]
    fn range_intersects() {
        let a = AttrValue::Range(0, 10);
        let b = AttrValue::Range(5, 20);
        assert_eq!(a.attenuate(&b), Some(AttrValue::Range(5, 10)));
        let disjoint = AttrValue::Range(11, 20);
        assert_eq!(a.attenuate(&disjoint), None);
    }

    #[test]
    fn set_intersects() {
        let a = AttrValue::set(["true", "false"]);
        let b = AttrValue::set(["false"]);
        assert_eq!(a.attenuate(&b), Some(AttrValue::set(["false"])));
        assert_eq!(
            AttrValue::set(["true"]).attenuate(&AttrValue::set(["false"])),
            None
        );
    }

    #[test]
    fn capacity_meets_range() {
        let cap = AttrValue::Capacity(7);
        let range = AttrValue::Range(3, 10);
        assert_eq!(cap.attenuate(&range), Some(AttrValue::Range(3, 7)));
    }

    #[test]
    fn set_meets_number_is_empty() {
        assert_eq!(
            AttrValue::set(["x"]).attenuate(&AttrValue::Capacity(1)),
            None
        );
    }

    #[test]
    fn attrset_carries_unshared_keys() {
        let a = AttrSet::new().with("CPU", AttrValue::Capacity(100));
        let b = AttrSet::new().with("Trust", AttrValue::Range(0, 5));
        let c = a.attenuate(&b).unwrap();
        assert_eq!(c.get("CPU"), Some(&AttrValue::Capacity(100)));
        assert_eq!(c.get("Trust"), Some(&AttrValue::Range(0, 5)));
    }

    #[test]
    fn attrset_attenuates_shared_keys() {
        let a = AttrSet::new().with("CPU", AttrValue::Capacity(100));
        let b = AttrSet::new().with("CPU", AttrValue::Capacity(80));
        assert_eq!(
            a.attenuate(&b).unwrap().get("CPU"),
            Some(&AttrValue::Capacity(80))
        );
    }

    #[test]
    fn attrset_empty_intersection_fails() {
        let a = AttrSet::new().with("Secure", AttrValue::set(["true"]));
        let b = AttrSet::new().with("Secure", AttrValue::set(["false"]));
        assert!(a.attenuate(&b).is_none());
    }

    #[test]
    fn satisfies_checks_all_required() {
        let have = AttrSet::new()
            .with("CPU", AttrValue::Capacity(80))
            .with("Secure", AttrValue::set(["true", "false"]));
        let need = AttrSet::new().with("Secure", AttrValue::set(["true"]));
        assert!(have.satisfies(&need));
        let need_missing = AttrSet::new().with("Mem", AttrValue::Capacity(1));
        assert!(!have.satisfies(&need_missing));
    }

    #[test]
    fn render_paper_syntax() {
        let a = AttrSet::new()
            .with("Secure", AttrValue::set(["false", "true"]))
            .with("Trust", AttrValue::Range(0, 10));
        assert_eq!(a.render(), " with Secure={false,true} Trust=(0,10)");
        assert_eq!(AttrSet::new().render(), "");
    }

    #[test]
    fn encoding_is_canonical_under_insert_order() {
        let a = AttrSet::new()
            .with("B", AttrValue::Capacity(2))
            .with("A", AttrValue::Capacity(1));
        let b = AttrSet::new()
            .with("A", AttrValue::Capacity(1))
            .with("B", AttrValue::Capacity(2));
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        a.encode(&mut ea);
        b.encode(&mut eb);
        assert_eq!(ea, eb);
    }
}
