//! Certificate emission: turning an engine [`Proof`] into a
//! [`psf_cert::AuthCertificate`] the independent checker can validate
//! without repository access.
//!
//! The split of trust runs through this module: everything *here* (the
//! engine, the repository, the caches) is the untrusted computing half;
//! `psf-cert` is the trusted checking half and depends on nothing in this
//! crate. Emission therefore only ever *lowers* a proof into the
//! certificate wire model — the exact signed bytes of every credential,
//! the support chains, the attenuated attributes, and the repository /
//! registry epochs the search was computed against. The checker re-derives
//! everything else from scratch.

use crate::attr::{AttrSet, AttrValue};
use crate::cache::{PresentedFingerprint, ProofKey};
use crate::delegation::SignedDelegation;
use crate::entity::{EntityName, EntityRegistry, RoleName, Subject};
use crate::proof::{Proof, ProofEngine, ProofError, SearchStats};
use crate::repository::subject_key;
use crate::revocation::RevocationBus;
use crate::Timestamp;
use psf_cert::{
    AuthCertificate, CertAttr, CertAttrs, CertEdge, CertError, CertKind, CertSubject, CheckContext,
    CheckMemo, KeyDirectory, RevocationProbe, SupportEdge,
};
use std::sync::Arc;

/// Lower an engine subject into the certificate subject model.
pub fn subject_to_cert(s: &Subject) -> CertSubject {
    match s {
        Subject::Entity { name, key } => CertSubject::Entity {
            name: name.0.clone(),
            key: key.0,
        },
        Subject::Role(r) => CertSubject::Role(r.to_string()),
    }
}

/// Lower an engine attribute set into the certificate attribute model.
pub fn attrs_to_cert(a: &AttrSet) -> CertAttrs {
    let mut out = CertAttrs::new();
    for (k, v) in &a.0 {
        let cv = match v {
            AttrValue::Capacity(n) => CertAttr::Capacity(*n),
            AttrValue::Range(lo, hi) => CertAttr::Range(*lo, *hi),
            AttrValue::Set(items) => CertAttr::Set(items.clone()),
        };
        out.0.insert(k.clone(), cv);
    }
    out
}

fn cert_edge(cred: &SignedDelegation, support: Option<&Proof>) -> CertEdge {
    CertEdge {
        signed: cred.body.encode(),
        signature: cred.signature.to_bytes(),
        support: support.map(|s| {
            s.edges
                .iter()
                .map(|e| SupportEdge {
                    signed: e.credential.body.encode(),
                    signature: e.credential.signature.to_bytes(),
                })
                .collect()
        }),
    }
}

/// Emit the certificate for a verified [`Proof`]: the exact delegation
/// chain (as the literal signed bytes), third-party supports, the
/// attenuated attributes, and the repository/registry epochs the proof
/// search pinned. The watch set is the proof's full credential-id set —
/// the same ids a [`ValidityMonitor`](crate::ValidityMonitor) covers.
pub fn certify(proof: &Proof, repo_epoch: Option<u64>, registry_epoch: u64) -> AuthCertificate {
    AuthCertificate {
        kind: if proof.assignment {
            CertKind::Assignment
        } else {
            CertKind::Membership
        },
        subject: subject_to_cert(&proof.subject),
        role: proof.role.to_string(),
        attrs: attrs_to_cert(&proof.attrs),
        repo_epoch,
        registry_epoch,
        edges: proof
            .edges
            .iter()
            .map(|e| cert_edge(&e.credential, e.support.as_deref()))
            .collect(),
        watch: proof.credential_ids(),
    }
}

impl KeyDirectory for EntityRegistry {
    fn key_of(&self, name: &str) -> Option<[u8; 32]> {
        self.lookup(&EntityName::new(name)).map(|k| k.0)
    }
}

impl RevocationProbe for RevocationBus {
    fn is_revoked(&self, id: &str) -> bool {
        RevocationBus::is_revoked(self, id)
    }
}

/// Run the independent checker against live registry/revocation state —
/// the repository-free re-validation path. `repo_epoch` is the current
/// repository version if the caller observes one (used only for the
/// epoch window; pass `None` on repository-free paths).
pub fn check_certificate(
    cert: &AuthCertificate,
    registry: &EntityRegistry,
    bus: &RevocationBus,
    now: Timestamp,
    repo_epoch: Option<u64>,
) -> Result<(), CertError> {
    check_certificate_memo(cert, registry, bus, now, repo_epoch, None)
}

/// As [`check_certificate`], threading an optional [`CheckMemo`] so a
/// caller that re-checks the *same* certificate repeatedly (continuous
/// authorization after revocation events) skips redundant Ed25519 scalar
/// math. Revocation, expiry, and the epoch window stay live per check.
pub fn check_certificate_memo(
    cert: &AuthCertificate,
    registry: &EntityRegistry,
    bus: &RevocationBus,
    now: Timestamp,
    repo_epoch: Option<u64>,
    memo: Option<&CheckMemo>,
) -> Result<(), CertError> {
    psf_cert::check(
        cert,
        &CheckContext {
            keys: registry,
            revoked: bus,
            now,
            repo_epoch,
            memo,
        },
    )
}

impl ProofEngine<'_> {
    /// As [`prove`](Self::prove), additionally emitting the
    /// [`AuthCertificate`] that carries the verdict's evidence. When the
    /// engine runs with an [`AuthCache`](crate::AuthCache), the
    /// certificate is stored alongside the cached proof entry and reused
    /// on hits, so the emission overhead is paid once per distinct query.
    pub fn prove_certified(
        &self,
        subject: &Subject,
        target: &RoleName,
        presented: &[SignedDelegation],
    ) -> Result<(Proof, Arc<AuthCertificate>, SearchStats), ProofError> {
        let repo_epoch = self.source().version();
        let (proof, stats) = self.prove(subject, target, presented)?;
        let cert = match self.auth_cache() {
            Some(cache) => {
                let key = ProofKey {
                    subject: subject_key(subject),
                    role: target.to_string(),
                    presented: PresentedFingerprint::of(presented),
                };
                match cache.lookup_certificate(&key) {
                    Some(cert) => cert,
                    None => {
                        let cert = Arc::new(certify(&proof, repo_epoch, self.registry_epoch()));
                        cache.attach_certificate(&key, cert.clone());
                        cert
                    }
                }
            }
            None => Arc::new(certify(&proof, repo_epoch, self.registry_epoch())),
        };
        Ok((proof, cert, stats))
    }

    /// As [`prove_with`](Self::prove_with), emitting the certificate: the
    /// attribute requirement is checked against the proven chain exactly
    /// as the plain path does.
    pub fn prove_with_certified(
        &self,
        subject: &Subject,
        target: &RoleName,
        required: &AttrSet,
        presented: &[SignedDelegation],
    ) -> Result<(Proof, Arc<AuthCertificate>, SearchStats), ProofError> {
        let (proof, cert, stats) = self.prove_certified(subject, target, presented)?;
        if proof.attrs.satisfies(required) {
            Ok((proof, cert, stats))
        } else {
            Err(ProofError {
                error: crate::DrbacError::NoProof {
                    subject: subject.render(),
                    role: format!("{target}{}", required.render()),
                },
                stats,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::AuthCache;
    use crate::delegation::DelegationBuilder;
    use crate::entity::Entity;
    use crate::repository::{CredentialSource, Repository};

    struct World {
        registry: EntityRegistry,
        repo: Repository,
        bus: RevocationBus,
        ny: Entity,
        sd: Entity,
        alice: Entity,
        bob: Entity,
    }

    fn world() -> World {
        let registry = EntityRegistry::new();
        let ny = Entity::with_seed("Comp.NY", b"cert");
        let sd = Entity::with_seed("Comp.SD", b"cert");
        let alice = Entity::with_seed("Alice", b"cert");
        let bob = Entity::with_seed("Bob", b"cert");
        for e in [&ny, &sd, &alice, &bob] {
            registry.register(e);
        }
        World {
            registry,
            repo: Repository::new(),
            bus: RevocationBus::new(),
            ny,
            sd,
            alice,
            bob,
        }
    }

    impl World {
        fn engine(&self) -> ProofEngine<'_> {
            ProofEngine::new(&self.registry, &self.repo, &self.bus, 0)
        }

        fn check(&self, cert: &AuthCertificate) -> Result<(), CertError> {
            check_certificate(cert, &self.registry, &self.bus, 0, self.repo.version())
        }
    }

    #[test]
    fn emitted_certificate_checks_clean() {
        let w = world();
        let c = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.alice)
            .role(w.ny.role("Member"))
            .sign();
        let (proof, cert, _) = w
            .engine()
            .prove_certified(&w.alice.as_subject(), &w.ny.role("Member"), &[c])
            .unwrap();
        assert_eq!(cert.watch, proof.credential_ids());
        w.check(&cert).unwrap();
        // And the wire round-trip checks too.
        let wire = cert.encode();
        let decoded = AuthCertificate::decode(&wire).unwrap();
        w.check(&decoded).unwrap();
    }

    #[test]
    fn third_party_support_carried_and_checked() {
        let w = world();
        let a = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.sd)
            .assignment()
            .role(w.ny.role("Partner"))
            .attr("CPU", AttrValue::Capacity(50))
            .sign();
        let m = DelegationBuilder::new(&w.sd)
            .subject_entity(&w.bob)
            .role(w.ny.role("Partner"))
            .attr("CPU", AttrValue::Capacity(100))
            .sign();
        let (proof, cert, _) = w
            .engine()
            .prove_certified(&w.bob.as_subject(), &w.ny.role("Partner"), &[a, m])
            .unwrap();
        assert_eq!(proof.attrs.get("CPU"), Some(&AttrValue::Capacity(50)));
        assert_eq!(
            cert.attrs.0.get("CPU"),
            Some(&CertAttr::Capacity(50)),
            "attenuated attributes carry into the certificate"
        );
        assert_eq!(cert.total_edges(), 2);
        w.check(&cert).unwrap();
    }

    #[test]
    fn revocation_invalidates_emitted_certificate() {
        let w = world();
        let c = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.alice)
            .role(w.ny.role("Member"))
            .sign();
        let id = c.id();
        let (_, cert, _) = w
            .engine()
            .prove_certified(&w.alice.as_subject(), &w.ny.role("Member"), &[c])
            .unwrap();
        w.check(&cert).unwrap();
        w.bus.revoke(&id);
        assert_eq!(w.check(&cert), Err(CertError::Revoked(id)));
    }

    #[test]
    fn cache_stores_certificate_alongside_proof() {
        let w = world();
        let cache = AuthCache::new();
        let c = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.alice)
            .role(w.ny.role("Member"))
            .sign();
        let engine = ProofEngine::with_cache(&w.registry, &w.repo, &w.bus, 0, &cache);
        let (_, cert1, _) = engine
            .prove_certified(
                &w.alice.as_subject(),
                &w.ny.role("Member"),
                std::slice::from_ref(&c),
            )
            .unwrap();
        let (_, cert2, _) = engine
            .prove_certified(&w.alice.as_subject(), &w.ny.role("Member"), &[c])
            .unwrap();
        assert!(
            Arc::ptr_eq(&cert1, &cert2),
            "second query must reuse the cached certificate"
        );
        assert_eq!(cache.cert_entries(), 1);
        w.check(&cert2).unwrap();
    }

    #[test]
    fn stale_epoch_certificate_rejected() {
        let w = world();
        let c = DelegationBuilder::new(&w.ny)
            .subject_entity(&w.alice)
            .role(w.ny.role("Member"))
            .sign();
        let (proof, _, _) = w
            .engine()
            .prove_certified(&w.alice.as_subject(), &w.ny.role("Member"), &[c])
            .unwrap();
        // Forge a certificate claiming an epoch from the future.
        let forged = certify(&proof, Some(u64::MAX), w.registry.epoch());
        assert!(matches!(
            w.check(&forged),
            Err(CertError::EpochAhead { .. })
        ));
    }
}
