//! Storage-cost models for cross-domain authorization state (paper §5).
//!
//! The paper compares the credential/ACL storage required by three
//! architectures for `P` providers and `U` users:
//!
//! * **GSI** — every provider holds authentication/authorization state for
//!   every possible user: `P × U` entries;
//! * **CAS** — users are grouped into `C` communities and providers only
//!   know communities: `C × (P + U)` entries;
//! * **dRBAC** — each principal holds only local credentials, plus `c`
//!   cross-domain role-mapping delegations: `P + U + c` entries.
//!
//! [`simulate_drbac`] does not just evaluate the formula — it *builds* the
//! actual signed credentials and measures their true wire size, so the
//! dRBAC row of experiment **F1** is grounded in real bytes. GSI and CAS
//! are synthesized with representative per-entry sizes (an X.509-ish
//! gridmap entry and a community membership record).

use crate::delegation::DelegationBuilder;
use crate::entity::Entity;

/// One row of the storage comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageReport {
    /// System name (`GSI`, `CAS`, `dRBAC`).
    pub system: &'static str,
    /// Number of stored entries.
    pub entries: u64,
    /// Estimated (GSI/CAS) or measured (dRBAC) total bytes.
    pub bytes: u64,
}

/// Representative size of one GSI gridmap entry (DN + local account
/// mapping + certificate reference).
pub const GSI_ENTRY_BYTES: u64 = 256;
/// Representative size of one CAS record (community membership or
/// provider policy).
pub const CAS_ENTRY_BYTES: u64 = 192;

/// GSI: `P × U` entries (every provider knows every user).
pub fn simulate_gsi(providers: u64, users: u64) -> StorageReport {
    let entries = providers * users;
    StorageReport {
        system: "GSI",
        entries,
        bytes: entries * GSI_ENTRY_BYTES,
    }
}

/// CAS: `C × (P + U)` entries (paper's accounting: per community, the
/// provider policies and user memberships that reference it).
pub fn simulate_cas(providers: u64, users: u64, communities: u64) -> StorageReport {
    let entries = communities * (providers + users);
    StorageReport {
        system: "CAS",
        entries,
        bytes: entries * CAS_ENTRY_BYTES,
    }
}

/// dRBAC: `P + U + c` *real* credentials, measured.
///
/// Builds one local node credential per provider, one local membership
/// credential per user, and `cross` role-mapping delegations between
/// domains, then sums their actual wire sizes.
pub fn simulate_drbac(providers: u64, users: u64, cross: u64) -> StorageReport {
    let domain = Entity::with_seed("Domain", b"storage-model");
    let peer = Entity::with_seed("Peer", b"storage-model");
    // One representative credential of each class; all credentials of a
    // class have identical wire size (names are padded to equal length).
    let user = Entity::with_seed("User-000000", b"storage-model");
    let node = Entity::with_seed("Node-000000", b"storage-model");

    let user_cred = DelegationBuilder::new(&domain)
        .subject_entity(&user)
        .role(domain.role("Member"))
        .sign();
    let node_cred = DelegationBuilder::new(&domain)
        .subject_entity(&node)
        .role(domain.role("Node"))
        .sign();
    let cross_cred = DelegationBuilder::new(&domain)
        .subject_role(peer.role("Member"))
        .role(domain.role("Member"))
        .sign();

    let bytes = providers * node_cred.wire_size() as u64
        + users * user_cred.wire_size() as u64
        + cross * cross_cred.wire_size() as u64;
    StorageReport {
        system: "dRBAC",
        entries: providers + users + cross,
        bytes,
    }
}

/// The full three-way comparison at one configuration.
pub fn storage_comparison(
    providers: u64,
    users: u64,
    communities: u64,
    cross: u64,
) -> [StorageReport; 3] {
    [
        simulate_gsi(providers, users),
        simulate_cas(providers, users, communities),
        simulate_drbac(providers, users, cross),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_match_paper() {
        let [gsi, cas, drbac] = storage_comparison(10, 100, 4, 12);
        assert_eq!(gsi.entries, 1000); // P×U
        assert_eq!(cas.entries, 4 * 110); // C×(P+U)
        assert_eq!(drbac.entries, 10 + 100 + 12); // P+U+c
    }

    #[test]
    fn drbac_wins_at_scale() {
        // The paper's claim: dRBAC < CAS < GSI for realistic sizes.
        let [gsi, cas, drbac] = storage_comparison(50, 1000, 8, 100);
        assert!(drbac.entries < cas.entries);
        assert!(cas.entries < gsi.entries);
        assert!(drbac.bytes < cas.bytes);
        assert!(cas.bytes < gsi.bytes);
    }

    #[test]
    fn gsi_grows_quadratically_drbac_linearly() {
        let small = storage_comparison(10, 10, 2, 5);
        let big = storage_comparison(100, 100, 2, 5);
        // 10× both dimensions → GSI 100×, dRBAC ~10×.
        assert_eq!(big[0].entries, small[0].entries * 100);
        assert!(big[2].entries < small[2].entries * 20);
    }

    #[test]
    fn drbac_bytes_are_measured_not_guessed() {
        let r = simulate_drbac(1, 0, 0);
        // One real signed credential: body + 64-byte signature; must be a
        // plausible size, not zero and not a placeholder constant.
        assert!(r.bytes > 100, "credential bytes {}", r.bytes);
        assert!(r.bytes < 1024);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(simulate_gsi(0, 100).entries, 0);
        assert_eq!(simulate_cas(0, 0, 5).entries, 0);
        assert_eq!(simulate_drbac(0, 0, 0).entries, 0);
    }
}
