//! The per-domain **Guard** module (paper §3.3).
//!
//! "Beside the main modules — registrar, monitor, planner, deployer — the
//! framework has a security module (*Guard*) that manages the site
//! security by generating certificates, defining roles, creating access
//! control lists, authenticating, and authorizing."

use crate::attr::AttrSet;
use crate::cache::AuthCache;
use crate::delegation::{DelegationBuilder, SignedDelegation};
use crate::entity::{Entity, EntityRegistry, RoleName, Subject};
use crate::proof::{Proof, ProofEngine, ProofError};
use crate::repository::Repository;
use crate::revocation::RevocationBus;
use crate::Timestamp;
use parking_lot::{Mutex, RwLock};

/// One access-control rule: subjects proven to hold `role` receive
/// `level` (in the paper, the level names the view to instantiate —
/// Table 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AclRule {
    /// Role required; `None` is the catch-all "others" rule.
    pub role: Option<RoleName>,
    /// Required attributes on the proof (usually empty).
    pub required: AttrSet,
    /// Service level granted (e.g. `ViewMailClient_Member`).
    pub level: String,
}

/// A domain's security module: issues credentials, maintains the ACL,
/// authenticates and authorizes.
pub struct Guard {
    entity: Entity,
    registry: EntityRegistry,
    repository: Repository,
    bus: RevocationBus,
    acl: RwLock<Vec<AclRule>>,
    issued: Mutex<Vec<SignedDelegation>>,
    /// Authorization fast path, dedicated to this guard's
    /// (registry, repository, bus) triple.
    cache: AuthCache,
}

impl Guard {
    /// Create a guard for a domain entity, wiring it to the shared
    /// registry, repository, and revocation bus.
    pub fn new(
        entity: Entity,
        registry: EntityRegistry,
        repository: Repository,
        bus: RevocationBus,
    ) -> Guard {
        registry.register(&entity);
        Guard {
            entity,
            registry,
            repository,
            bus,
            acl: RwLock::new(Vec::new()),
            issued: Mutex::new(Vec::new()),
            cache: AuthCache::new(),
        }
    }

    /// Create a guard backed by a [`crate::wal::DurableRepository`]: the
    /// guard's repository and bus are the durable pair's shared handles,
    /// so every credential it issues and every revocation it performs is
    /// written to the crash-safe log transparently.
    pub fn durable(
        entity: Entity,
        registry: EntityRegistry,
        durable: &crate::wal::DurableRepository,
    ) -> Guard {
        Guard::new(
            entity,
            registry,
            durable.repository().clone(),
            durable.bus().clone(),
        )
    }

    /// Create a guard backed by a [`crate::wal::ShardedDurableRepository`]:
    /// identical wiring to [`Guard::durable`], but the repository handle is
    /// the hash-sharded store and every mutation lands in the per-shard
    /// write-ahead segments.
    pub fn sharded_durable(
        entity: Entity,
        registry: EntityRegistry,
        durable: &crate::wal::ShardedDurableRepository,
    ) -> Guard {
        Guard::new(
            entity,
            registry,
            durable.repository().clone(),
            durable.bus().clone(),
        )
    }

    /// The guard's authorization cache (hit/miss stats, manual clear).
    pub fn auth_cache(&self) -> &AuthCache {
        &self.cache
    }

    /// The domain identity this guard speaks for.
    pub fn entity(&self) -> &Entity {
        &self.entity
    }

    /// The shared entity registry.
    pub fn registry(&self) -> &EntityRegistry {
        &self.registry
    }

    /// The shared credential repository.
    pub fn repository(&self) -> &Repository {
        &self.repository
    }

    /// The shared revocation bus.
    pub fn bus(&self) -> &RevocationBus {
        &self.bus
    }

    /// Create and register a principal managed by this domain (client,
    /// component instance, node). Keys are derived from the domain entity
    /// name so scenarios are reproducible.
    pub fn create_principal(&self, name: impl Into<String>) -> Entity {
        let e = Entity::with_seed(name, self.entity.name.0.as_bytes());
        self.registry.register(&e);
        e
    }

    /// A role in this domain's namespace.
    pub fn role(&self, role: impl Into<String>) -> RoleName {
        self.entity.role(role)
    }

    /// Begin issuing a delegation signed by this domain.
    pub fn issue(&self) -> DelegationBuilder<'_> {
        DelegationBuilder::new(&self.entity)
    }

    /// Sign, record, and publish a credential built with
    /// [`issue`](Self::issue).
    pub fn publish(&self, cred: SignedDelegation) -> SignedDelegation {
        self.issued.lock().push(cred.clone());
        self.repository.publish_at_issuer(cred.clone());
        cred
    }

    /// Revoke a previously issued credential.
    pub fn revoke(&self, cred: &SignedDelegation) {
        self.bus.revoke(&cred.id());
    }

    /// Renew a credential this guard issued: revoke the old one and
    /// publish a serial-bumped copy with a new expiry. The single-sign-on
    /// story stays intact — existing monitors on the old credential fire,
    /// and the holder re-validates with the renewal.
    pub fn renew(
        &self,
        cred: &SignedDelegation,
        new_expires: Option<Timestamp>,
    ) -> SignedDelegation {
        assert_eq!(
            cred.body.issuer, self.entity.name,
            "only the issuer renews a credential"
        );
        let mut body = cred.body.clone();
        body.expires = new_expires;
        body.serial = body.serial.wrapping_add(1);
        let signature = self.entity.sign(&body.encode());
        let renewed = SignedDelegation { body, signature };
        self.bus.revoke(&cred.id());
        self.publish(renewed)
    }

    /// All credentials this guard has issued and published.
    pub fn issued(&self) -> Vec<SignedDelegation> {
        self.issued.lock().clone()
    }

    /// Append an ACL rule (checked in order; first match wins).
    pub fn add_acl_rule(&self, rule: AclRule) {
        self.acl.write().push(rule);
    }

    /// The current ACL.
    pub fn acl(&self) -> Vec<AclRule> {
        self.acl.read().clone()
    }

    /// Authorize `subject` for `role` at time `now` using presented
    /// credentials plus repository discovery.
    pub fn authorize(
        &self,
        subject: &Subject,
        role: &RoleName,
        presented: &[SignedDelegation],
        now: Timestamp,
    ) -> Result<Proof, ProofError> {
        let engine = self.engine(now);
        engine.prove(subject, role, presented).map(|(p, _)| p)
    }

    fn engine(&self, now: Timestamp) -> ProofEngine<'_> {
        ProofEngine::with_cache(
            &self.registry,
            &self.repository,
            &self.bus,
            now,
            &self.cache,
        )
    }

    /// Authorize with required attributes (node/component authorization).
    pub fn authorize_with(
        &self,
        subject: &Subject,
        role: &RoleName,
        required: &AttrSet,
        presented: &[SignedDelegation],
        now: Timestamp,
    ) -> Result<Proof, ProofError> {
        let engine = self.engine(now);
        engine
            .prove_with(subject, role, required, presented)
            .map(|(p, _)| p)
    }

    /// Evaluate the ACL for a subject: returns the service level of the
    /// first rule whose role the subject can prove (cross-domain requests
    /// are translated into local roles by the proof search itself), or the
    /// catch-all rule's level, or `None` if no rule applies.
    ///
    /// On success also returns the proof when a role rule matched
    /// (catch-all grants carry no proof).
    pub fn service_level(
        &self,
        subject: &Subject,
        presented: &[SignedDelegation],
        now: Timestamp,
    ) -> Option<(String, Option<Proof>)> {
        use psf_telemetry::audit::{self, Decision, Verdict};
        let engine = self.engine(now);
        let rules = self.acl.read().clone();
        for rule in &rules {
            match &rule.role {
                Some(role) => {
                    if let Ok((proof, _)) =
                        engine.prove_with(subject, role, &rule.required, presented)
                    {
                        audit::record(
                            Decision::Authorize,
                            subject.render(),
                            rule.level.clone(),
                            Verdict::Allow,
                        )
                        .chain(&proof.credential_ids())
                        .detail(format!("acl role {role}"))
                        .commit();
                        return Some((rule.level.clone(), Some(proof)));
                    }
                }
                None => {
                    audit::record(
                        Decision::Authorize,
                        subject.render(),
                        rule.level.clone(),
                        Verdict::Allow,
                    )
                    .detail("acl catch-all")
                    .commit();
                    return Some((rule.level.clone(), None));
                }
            }
        }
        audit::record(Decision::Authorize, subject.render(), "", Verdict::Deny)
            .detail("no acl rule matched")
            .commit();
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infra() -> (EntityRegistry, Repository, RevocationBus) {
        (
            EntityRegistry::new(),
            Repository::new(),
            RevocationBus::new(),
        )
    }

    fn guard(name: &str) -> Guard {
        let (reg, repo, bus) = infra();
        Guard::new(Entity::with_seed(name, b"g"), reg, repo, bus)
    }

    #[test]
    fn guard_issues_and_authorizes() {
        let g = guard("Comp.NY");
        let alice = g.create_principal("Alice");
        let cred = g.publish(
            g.issue()
                .subject_entity(&alice)
                .role(g.role("Member"))
                .sign(),
        );
        let proof = g
            .authorize(&alice.as_subject(), &g.role("Member"), &[], 0)
            .unwrap();
        assert_eq!(*proof.edges[0].credential, cred);
    }

    #[test]
    fn revocation_takes_effect() {
        let g = guard("Comp.NY");
        let alice = g.create_principal("Alice");
        let cred = g.publish(
            g.issue()
                .subject_entity(&alice)
                .role(g.role("Member"))
                .monitored()
                .sign(),
        );
        assert!(g
            .authorize(&alice.as_subject(), &g.role("Member"), &[], 0)
            .is_ok());
        g.revoke(&cred);
        assert!(g
            .authorize(&alice.as_subject(), &g.role("Member"), &[], 0)
            .is_err());
    }

    #[test]
    fn acl_first_match_wins() {
        let g = guard("Comp.NY");
        let alice = g.create_principal("Alice");
        g.publish(
            g.issue()
                .subject_entity(&alice)
                .role(g.role("Member"))
                .sign(),
        );
        g.add_acl_rule(AclRule {
            role: Some(g.role("Member")),
            required: AttrSet::new(),
            level: "ViewMailClient_Member".into(),
        });
        g.add_acl_rule(AclRule {
            role: None,
            required: AttrSet::new(),
            level: "ViewMailClient_Anonymous".into(),
        });
        let (level, proof) = g.service_level(&alice.as_subject(), &[], 0).unwrap();
        assert_eq!(level, "ViewMailClient_Member");
        assert!(proof.is_some());

        // A stranger falls through to the catch-all.
        let mallory = Entity::with_seed("Mallory", b"elsewhere");
        let (level, proof) = g.service_level(&mallory.as_subject(), &[], 0).unwrap();
        assert_eq!(level, "ViewMailClient_Anonymous");
        assert!(proof.is_none());
    }

    #[test]
    fn no_rules_no_service() {
        let g = guard("Comp.NY");
        let alice = g.create_principal("Alice");
        assert!(g.service_level(&alice.as_subject(), &[], 0).is_none());
    }

    #[test]
    fn renew_rotates_credential_and_restores_authorization() {
        let g = guard("Comp.NY");
        let alice = g.create_principal("Alice");
        let original = g.publish(
            g.issue()
                .subject_entity(&alice)
                .role(g.role("Member"))
                .expires(100)
                .monitored()
                .sign(),
        );
        // A monitor on the original credential…
        let monitor = g.bus().monitor(vec![original.id()]);
        let renewed = g.renew(&original, Some(500));
        // …fires on renewal (the old credential is revoked)…
        assert!(!monitor.is_valid());
        assert_ne!(renewed.id(), original.id());
        assert_eq!(renewed.body.expires, Some(500));
        // …and authorization continues via the renewal, even past the
        // original expiry.
        let proof = g
            .authorize(&alice.as_subject(), &g.role("Member"), &[], 200)
            .unwrap();
        assert_eq!(proof.edges[0].credential.id(), renewed.id());
    }

    #[test]
    #[should_panic(expected = "only the issuer")]
    fn renew_refuses_foreign_credentials() {
        let g = guard("Comp.NY");
        let other = guard("Comp.SD");
        let alice = other.create_principal("Alice");
        let cred = other.publish(
            other
                .issue()
                .subject_entity(&alice)
                .role(other.role("Member"))
                .sign(),
        );
        g.renew(&cred, None);
    }

    #[test]
    fn cross_shard_publish_keeps_unrelated_proofs_cached() {
        use crate::repository::{subject_key, CredentialSource};
        let repo = Repository::with_shard_count(64);
        let g = Guard::new(
            Entity::with_seed("Comp.NY", b"g"),
            EntityRegistry::new(),
            repo.clone(),
            RevocationBus::new(),
        );
        let alice = g.create_principal("Alice");
        // Shards the proof search will touch (and therefore pin): the
        // entity node and the target-role node.
        let pinned: Vec<u32> = [
            subject_key(&alice.as_subject()),
            subject_key(&Subject::Role(g.role("Member"))),
        ]
        .iter()
        .filter_map(|k| repo.shard_of_key(k))
        .collect();
        // Registered up front: registering later would bump the registry
        // epoch and invalidate the cache for the right reason but the
        // wrong test.
        let stranger = (0..)
            .map(|i| g.create_principal(format!("Stranger{i}")))
            .find(|s| {
                let shard = repo.shard_of_key(&subject_key(&s.as_subject())).unwrap();
                !pinned.contains(&shard)
            })
            .unwrap();
        g.publish(
            g.issue()
                .subject_entity(&alice)
                .role(g.role("Member"))
                .sign(),
        );
        // Warm the cache: miss, then hit.
        g.authorize(&alice.as_subject(), &g.role("Member"), &[], 0)
            .unwrap();
        g.authorize(&alice.as_subject(), &g.role("Member"), &[], 0)
            .unwrap();
        assert_eq!(g.auth_cache().stats().proof_hits, 1);

        // Publish for a principal living in a shard the proof never
        // queried: the cached entry must survive.
        g.publish(
            g.issue()
                .subject_entity(&stranger)
                .role(g.role("Member"))
                .sign(),
        );
        g.authorize(&alice.as_subject(), &g.role("Member"), &[], 0)
            .unwrap();
        assert_eq!(
            g.auth_cache().stats().proof_hits,
            2,
            "publish to an unpinned shard must not evict the cached proof"
        );

        // Publish into Alice's own shard: the entry must be re-derived.
        g.publish(
            g.issue()
                .subject_entity(&alice)
                .role(g.role("Admin"))
                .sign(),
        );
        g.authorize(&alice.as_subject(), &g.role("Member"), &[], 0)
            .unwrap();
        assert_eq!(
            g.auth_cache().stats().proof_hits,
            2,
            "publish to a pinned shard must invalidate the cached proof"
        );
    }

    #[test]
    fn cross_guard_authorization() {
        // Two guards sharing infrastructure: SD issues, NY maps the role.
        let (reg, repo, bus) = infra();
        let ny = Guard::new(
            Entity::with_seed("Comp.NY", b"g"),
            reg.clone(),
            repo.clone(),
            bus.clone(),
        );
        let sd = Guard::new(Entity::with_seed("Comp.SD", b"g"), reg, repo, bus);
        let bob = sd.create_principal("Bob");
        // (11) issued by SD-Guard, (2) issued by NY-Guard.
        sd.publish(
            sd.issue()
                .subject_entity(&bob)
                .role(sd.role("Member"))
                .sign(),
        );
        ny.publish(
            ny.issue()
                .subject_role(sd.role("Member"))
                .role(ny.role("Member"))
                .sign(),
        );
        let proof = ny
            .authorize(&bob.as_subject(), &ny.role("Member"), &[], 0)
            .unwrap();
        assert_eq!(proof.edges.len(), 2);
    }
}
