//! Entities, roles, and the PKI registry.
//!
//! An **entity** is a principal with an Ed25519 key pair — a person
//! (`Alice`), an organization namespace (`Comp.NY`), a vendor (`Dell`), a
//! node, or an instantiated component. A **role** `Entity.Role` is an
//! equivalence class of access rights owned by an entity: `Comp.NY.Member`
//! is the role `Member` defined by the entity `Comp.NY`.
//!
//! The [`EntityRegistry`] maps entity names to public keys. dRBAC itself is
//! root-free — any entity can define roles — so the registry is just the
//! reproduction's stand-in for "we looked up the issuer's public key"
//! (certificate distribution is out of scope of the paper).

use crate::DrbacError;
use parking_lot::RwLock;
use psf_crypto::ed25519::{SigningKey, VerifyingKey};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An entity's human-readable, dot-separated name (e.g. `Comp.NY`,
/// `Alice`, `Dell`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityName(pub String);

impl EntityName {
    /// Construct from anything string-like.
    pub fn new(s: impl Into<String>) -> EntityName {
        EntityName(s.into())
    }

    /// The raw name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for EntityName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for EntityName {
    fn from(s: &str) -> Self {
        EntityName(s.to_string())
    }
}

/// A role name `Entity.Role`: the rightmost dot separates the owning
/// entity from the role proper (`Comp.NY.Member` → owner `Comp.NY`,
/// role `Member`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RoleName {
    /// The entity that owns (defines) the role.
    pub owner: EntityName,
    /// The role identifier within the owner's namespace.
    pub role: String,
}

impl RoleName {
    /// Construct from owner + role.
    pub fn new(owner: impl Into<String>, role: impl Into<String>) -> RoleName {
        RoleName {
            owner: EntityName(owner.into()),
            role: role.into(),
        }
    }

    /// Parse `"Comp.NY.Member"` — the rightmost component is the role.
    pub fn parse(s: &str) -> Result<RoleName, DrbacError> {
        match s.rsplit_once('.') {
            Some((owner, role)) if !owner.is_empty() && !role.is_empty() => {
                Ok(RoleName::new(owner, role))
            }
            _ => Err(DrbacError::BadRoleName(s.to_string())),
        }
    }
}

impl fmt::Display for RoleName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.owner, self.role)
    }
}

/// The subject of a delegation: a concrete entity (keyed principal) or
/// another role (enabling role→role mapping).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Subject {
    /// A keyed principal, identified by name + public key.
    Entity {
        /// The entity's name.
        name: EntityName,
        /// Its public key.
        key: VerifyingKey,
    },
    /// A role; anyone proven to hold it is covered by the delegation.
    Role(RoleName),
}

impl Subject {
    /// Display string (paper syntax uses bare names).
    pub fn render(&self) -> String {
        match self {
            Subject::Entity { name, .. } => name.0.clone(),
            Subject::Role(r) => r.to_string(),
        }
    }

    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Subject::Entity { name, key } => {
                out.push(0);
                out.extend_from_slice(&(name.0.len() as u32).to_le_bytes());
                out.extend_from_slice(name.0.as_bytes());
                out.extend_from_slice(key.as_bytes());
            }
            Subject::Role(r) => {
                out.push(1);
                let s = r.to_string();
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
}

/// A keyed principal: name + Ed25519 key pair.
#[derive(Clone)]
pub struct Entity {
    /// The entity's name.
    pub name: EntityName,
    key: SigningKey,
}

impl Entity {
    /// Create an entity with a key derived deterministically from its name
    /// and a domain seed (convenient for reproducible scenarios).
    pub fn with_seed(name: impl Into<String>, seed: &[u8]) -> Entity {
        let name = EntityName(name.into());
        let mut material = Vec::with_capacity(seed.len() + name.0.len() + 1);
        material.extend_from_slice(seed);
        material.push(0);
        material.extend_from_slice(name.0.as_bytes());
        let digest = psf_crypto::sha256(&material);
        Entity {
            name,
            key: SigningKey::from_seed(digest),
        }
    }

    /// Create an entity with a random key.
    pub fn random(name: impl Into<String>) -> Entity {
        let mut rng = rand::rng();
        Entity {
            name: EntityName(name.into()),
            key: SigningKey::generate(&mut rng),
        }
    }

    /// This entity's public key.
    pub fn public_key(&self) -> VerifyingKey {
        self.key.verifying_key()
    }

    /// This entity as a delegation [`Subject`].
    pub fn as_subject(&self) -> Subject {
        Subject::Entity {
            name: self.name.clone(),
            key: self.public_key(),
        }
    }

    /// A role in this entity's namespace.
    pub fn role(&self, role: impl Into<String>) -> RoleName {
        RoleName {
            owner: self.name.clone(),
            role: role.into(),
        }
    }

    /// Sign arbitrary bytes with this entity's key.
    pub fn sign(&self, data: &[u8]) -> psf_crypto::Signature {
        self.key.sign(data)
    }
}

impl fmt::Debug for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Entity")
            .field("name", &self.name.0)
            .field("key", &self.public_key().fingerprint())
            .finish()
    }
}

/// Shared name → public-key directory (the reproduction's certificate
/// distribution stand-in).
#[derive(Clone, Default)]
pub struct EntityRegistry {
    inner: Arc<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    map: RwLock<HashMap<EntityName, VerifyingKey>>,
    // Bumped on every registration: proof caches use it to notice that a
    // previously-unknown issuer may have become resolvable.
    epoch: std::sync::atomic::AtomicU64,
}

impl EntityRegistry {
    /// New empty registry.
    pub fn new() -> EntityRegistry {
        EntityRegistry::default()
    }

    /// Register an entity's public key.
    pub fn register(&self, entity: &Entity) {
        self.inner
            .map
            .write()
            .insert(entity.name.clone(), entity.public_key());
        self.bump();
    }

    /// Register a bare name/key pair.
    pub fn register_key(&self, name: EntityName, key: VerifyingKey) {
        self.inner.map.write().insert(name, key);
        self.bump();
    }

    /// Look up a public key.
    pub fn lookup(&self, name: &EntityName) -> Option<VerifyingKey> {
        self.inner.map.read().get(name).copied()
    }

    /// Number of registered entities.
    pub fn len(&self) -> usize {
        self.inner.map.read().len()
    }

    /// True if no entities are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.map.read().is_empty()
    }

    /// Monotonic counter bumped on every registration; used by the proof
    /// cache to gate cached *failures* (a new registration can turn an
    /// `UnknownIssuer` dead end into a provable chain).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(std::sync::atomic::Ordering::Acquire)
    }

    fn bump(&self) {
        self.inner
            .epoch
            .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_parse_rightmost_dot() {
        let r = RoleName::parse("Comp.NY.Member").unwrap();
        assert_eq!(r.owner.as_str(), "Comp.NY");
        assert_eq!(r.role, "Member");
        assert_eq!(r.to_string(), "Comp.NY.Member");
    }

    #[test]
    fn role_parse_single_dot() {
        let r = RoleName::parse("Dell.Linux").unwrap();
        assert_eq!(r.owner.as_str(), "Dell");
        assert_eq!(r.role, "Linux");
    }

    #[test]
    fn role_parse_rejects_undotted() {
        assert!(RoleName::parse("Member").is_err());
        assert!(RoleName::parse(".Member").is_err());
        assert!(RoleName::parse("Comp.").is_err());
    }

    #[test]
    fn seeded_entities_are_deterministic() {
        let a1 = Entity::with_seed("Alice", b"domain");
        let a2 = Entity::with_seed("Alice", b"domain");
        assert_eq!(a1.public_key(), a2.public_key());
        let a3 = Entity::with_seed("Alice", b"other");
        assert_ne!(a1.public_key(), a3.public_key());
        let b = Entity::with_seed("Bob", b"domain");
        assert_ne!(a1.public_key(), b.public_key());
    }

    #[test]
    fn registry_lookup() {
        let reg = EntityRegistry::new();
        let e = Entity::with_seed("Comp.NY", b"s");
        reg.register(&e);
        assert_eq!(reg.lookup(&e.name), Some(e.public_key()));
        assert_eq!(reg.lookup(&EntityName::new("Nobody")), None);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn entity_signs_verifiably() {
        let e = Entity::with_seed("Signer", b"s");
        let sig = e.sign(b"credential-bytes");
        e.public_key().verify(b"credential-bytes", &sig).unwrap();
    }
}
