//! Wire codec for credentials (and small helpers shared by Switchboard).
//!
//! The signing encoding in [`Delegation::encode`] is canonical; this
//! module adds the matching decoder plus a framed container that carries
//! the signature, so credential sets can cross domains (paper §3.1:
//! "dRBAC credentials are stored in a distributed repository" and
//! exchanged during Switchboard handshakes, §4.3).

use crate::attr::{AttrSet, AttrValue};
use crate::delegation::{Delegation, DelegationKind, SignedDelegation};
use crate::entity::{EntityName, RoleName, Subject};
use crate::DrbacError;
use psf_crypto::ed25519::{Signature, VerifyingKey};
use std::collections::BTreeSet;

/// Sequential byte reader with bounds checking.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DrbacError> {
        if self.pos + n > self.buf.len() {
            return Err(DrbacError::BrokenChain("truncated credential".into()));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, DrbacError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, DrbacError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, DrbacError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian i64.
    pub fn i64(&mut self) -> Result<i64, DrbacError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a u32-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, DrbacError> {
        let len = self.u32()? as usize;
        if len > 1 << 20 {
            return Err(DrbacError::BrokenChain("oversized string".into()));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DrbacError::BrokenChain("invalid UTF-8".into()))
    }

    /// Read exactly `N` raw bytes.
    pub fn bytes<const N: usize>(&mut self) -> Result<[u8; N], DrbacError> {
        Ok(self.take(N)?.try_into().unwrap())
    }

    /// Whether all input was consumed.
    pub fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn decode_subject(r: &mut Reader) -> Result<Subject, DrbacError> {
    match r.u8()? {
        0 => {
            let name = r.string()?;
            let key = VerifyingKey(r.bytes::<32>()?);
            Ok(Subject::Entity {
                name: EntityName(name),
                key,
            })
        }
        1 => {
            let s = r.string()?;
            Ok(Subject::Role(RoleName::parse(&s)?))
        }
        t => Err(DrbacError::BrokenChain(format!("bad subject tag {t}"))),
    }
}

fn decode_attr_value(r: &mut Reader) -> Result<AttrValue, DrbacError> {
    match r.u8()? {
        0 => Ok(AttrValue::Capacity(r.i64()?)),
        1 => Ok(AttrValue::Range(r.i64()?, r.i64()?)),
        2 => {
            let n = r.u32()? as usize;
            if n > 1 << 16 {
                return Err(DrbacError::BrokenChain("oversized attr set".into()));
            }
            let mut set = BTreeSet::new();
            for _ in 0..n {
                let len = r.u32()? as usize;
                if len > 1 << 16 {
                    return Err(DrbacError::BrokenChain("oversized attr item".into()));
                }
                let bytes = r.take(len)?;
                set.insert(
                    String::from_utf8(bytes.to_vec())
                        .map_err(|_| DrbacError::BrokenChain("invalid UTF-8".into()))?,
                );
            }
            Ok(AttrValue::Set(set))
        }
        t => Err(DrbacError::BrokenChain(format!("bad attr tag {t}"))),
    }
}

fn decode_attrs(r: &mut Reader) -> Result<AttrSet, DrbacError> {
    let n = r.u32()? as usize;
    if n > 1 << 16 {
        return Err(DrbacError::BrokenChain("oversized attr map".into()));
    }
    let mut out = AttrSet::new();
    for _ in 0..n {
        let key = r.string()?;
        let val = decode_attr_value(r)?;
        out = out.with(key, val);
    }
    Ok(out)
}

/// Decode a delegation body from its canonical signing encoding.
pub fn decode_delegation(r: &mut Reader) -> Result<Delegation, DrbacError> {
    let magic = r.take(19)?;
    if magic != b"dRBAC-delegation-v1" {
        return Err(DrbacError::BrokenChain("bad credential magic".into()));
    }
    let subject = decode_subject(r)?;
    let object = RoleName::parse(&r.string()?)?;
    let kind = match r.u8()? {
        0 => DelegationKind::SelfCertifying,
        1 => DelegationKind::ThirdParty,
        2 => DelegationKind::Assignment,
        t => return Err(DrbacError::BrokenChain(format!("bad kind tag {t}"))),
    };
    let issuer = EntityName(r.string()?);
    let attrs = decode_attrs(r)?;
    let expires = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        t => return Err(DrbacError::BrokenChain(format!("bad expiry tag {t}"))),
    };
    let monitored = r.u8()? == 1;
    let serial = r.u64()?;
    Ok(Delegation {
        subject,
        object,
        kind,
        issuer,
        attrs,
        expires,
        monitored,
        serial,
    })
}

impl SignedDelegation {
    /// Full wire encoding: body || 64-byte signature, length-prefixed.
    pub fn to_wire(&self) -> Vec<u8> {
        let body = self.body.encode();
        let mut out = Vec::with_capacity(body.len() + 68);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&self.signature.to_bytes());
        out
    }

    /// Decode from [`to_wire`](Self::to_wire) format. The decoded body is
    /// re-encoded and compared byte-for-byte, guaranteeing the signature
    /// still covers exactly what was parsed.
    pub fn from_wire(r: &mut Reader) -> Result<SignedDelegation, DrbacError> {
        let body_len = r.u32()? as usize;
        if body_len > 1 << 20 {
            return Err(DrbacError::BrokenChain("oversized credential".into()));
        }
        let body_bytes = r.take(body_len)?.to_vec();
        let mut body_reader = Reader::new(&body_bytes);
        let body = decode_delegation(&mut body_reader)?;
        if !body_reader.finished() || body.encode() != body_bytes {
            return Err(DrbacError::BrokenChain(
                "credential body is not in canonical form".into(),
            ));
        }
        let sig_bytes = r.bytes::<64>()?;
        Ok(SignedDelegation {
            body,
            signature: Signature(sig_bytes),
        })
    }
}

/// Encode a credential set (u32 count + each credential framed). Accepts
/// owned or `Arc`-shared credentials.
pub fn encode_credentials<T: std::borrow::Borrow<SignedDelegation>>(creds: &[T]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(creds.len() as u32).to_le_bytes());
    for c in creds {
        out.extend_from_slice(&c.borrow().to_wire());
    }
    out
}

/// Decode a credential set.
pub fn decode_credentials(buf: &[u8]) -> Result<Vec<SignedDelegation>, DrbacError> {
    let mut r = Reader::new(buf);
    let n = r.u32()? as usize;
    if n > 1 << 16 {
        return Err(DrbacError::BrokenChain("oversized credential set".into()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(SignedDelegation::from_wire(&mut r)?);
    }
    if !r.finished() {
        return Err(DrbacError::BrokenChain(
            "trailing bytes in credential set".into(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrValue;
    use crate::delegation::DelegationBuilder;
    use crate::entity::Entity;

    fn sample_creds() -> Vec<SignedDelegation> {
        let ny = Entity::with_seed("Comp.NY", b"wire");
        let sd = Entity::with_seed("Comp.SD", b"wire");
        let bob = Entity::with_seed("Bob", b"wire");
        vec![
            DelegationBuilder::new(&ny)
                .subject_entity(&bob)
                .role(ny.role("Member"))
                .sign(),
            DelegationBuilder::new(&ny)
                .subject_role(sd.role("Member"))
                .role(ny.role("Member"))
                .attr("Trust", AttrValue::Range(0, 10))
                .attr("Secure", AttrValue::set(["true", "false"]))
                .expires(12345)
                .sign(),
            DelegationBuilder::new(&ny)
                .subject_entity(&sd)
                .assignment()
                .role(ny.role("Partner"))
                .attr("CPU", AttrValue::Capacity(80))
                .monitored()
                .sign(),
        ]
    }

    #[test]
    fn roundtrip_single() {
        for cred in sample_creds() {
            let wire = cred.to_wire();
            let back = SignedDelegation::from_wire(&mut Reader::new(&wire)).unwrap();
            assert_eq!(back, cred);
            assert_eq!(back.id(), cred.id());
        }
    }

    #[test]
    fn roundtrip_set() {
        let creds = sample_creds();
        let wire = encode_credentials(&creds);
        let back = decode_credentials(&wire).unwrap();
        assert_eq!(back, creds);
    }

    #[test]
    fn decoded_signature_still_verifies() {
        let ny = Entity::with_seed("Comp.NY", b"wire");
        let bob = Entity::with_seed("Bob", b"wire");
        let cred = DelegationBuilder::new(&ny)
            .subject_entity(&bob)
            .role(ny.role("Member"))
            .sign();
        let back = SignedDelegation::from_wire(&mut Reader::new(&cred.to_wire())).unwrap();
        back.verify(&ny.public_key(), 0).unwrap();
    }

    #[test]
    fn tampered_wire_rejected_or_unverifiable() {
        let creds = sample_creds();
        let mut wire = creds[0].to_wire();
        // Flip a byte inside the body (after the 4-byte length prefix).
        wire[10] ^= 0xff;
        match SignedDelegation::from_wire(&mut Reader::new(&wire)) {
            Err(_) => {} // structural rejection
            Ok(c) => {
                // Or it parsed but the signature must now fail.
                let ny = Entity::with_seed("Comp.NY", b"wire");
                assert!(c.verify(&ny.public_key(), 0).is_err());
            }
        }
    }

    #[test]
    fn truncated_input_rejected() {
        let wire = sample_creds()[0].to_wire();
        for cut in [0usize, 3, 10, wire.len() - 1] {
            assert!(
                SignedDelegation::from_wire(&mut Reader::new(&wire[..cut])).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(decode_credentials(&[0xff; 40]).is_err());
        assert!(decode_credentials(&[]).is_err());
        // Claimed huge count.
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_credentials(&buf).is_err());
    }

    #[test]
    fn empty_set_roundtrips() {
        let wire = encode_credentials::<SignedDelegation>(&[]);
        assert_eq!(decode_credentials(&wire).unwrap(), Vec::new());
    }

    #[test]
    fn noncanonical_body_rejected() {
        // Hand-build a frame whose body re-encodes differently: append a
        // junk byte to a valid body.
        let cred = &sample_creds()[0];
        let mut body = cred.body.encode();
        body.push(0);
        let mut wire = Vec::new();
        wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
        wire.extend_from_slice(&body);
        wire.extend_from_slice(&cred.signature.to_bytes());
        assert!(SignedDelegation::from_wire(&mut Reader::new(&wire)).is_err());
    }
}
