//! The distributed credential repository with **discovery tags**
//! (paper §3.1).
//!
//! Credentials are sharded across *home nodes* (one per issuing domain).
//! A credential may carry discovery tags identifying it as "searchable
//! from subject" and/or "searchable from object"; tagged credentials are
//! advertised in a global tag index so queries can be *directed* to the
//! right home instead of broadcast to every shard. The repository counts
//! the query messages it sends, which experiment **F8** uses to compare
//! tag-directed against broadcast discovery.

use crate::delegation::SignedDelegation;
use crate::entity::{EntityName, RoleName, Subject};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Anything the proof engine can pull credentials from: the in-process
/// sharded [`Repository`], or a remote repository reached over a
/// Switchboard channel (see `psf-core`'s repository service). The paper's
/// repository is distributed; this trait is the seam that makes proof
/// search location-transparent.
///
/// Credentials are handed out as `Arc<SignedDelegation>` so query results
/// and proof edges share one allocation per stored credential instead of
/// deep-cloning signed blobs on every hop of every proof search.
pub trait CredentialSource: Send + Sync {
    /// Credentials whose subject matches `subject`.
    fn credentials_by_subject(&self, subject: &Subject) -> Vec<Arc<SignedDelegation>>;
    /// Credentials conveying `role`.
    fn credentials_by_object(&self, role: &RoleName) -> Vec<Arc<SignedDelegation>>;
    /// A monotone version of the source's contents, bumped on every
    /// publish/purge, or `None` when the source cannot track one (e.g. a
    /// remote repository). Negative proof-cache entries are only reusable
    /// while the version is unchanged; `None` disables negative caching.
    fn version(&self) -> Option<u64> {
        None
    }
}

impl CredentialSource for Repository {
    fn credentials_by_subject(&self, subject: &Subject) -> Vec<Arc<SignedDelegation>> {
        self.query_by_subject(subject)
    }
    fn credentials_by_object(&self, role: &RoleName) -> Vec<Arc<SignedDelegation>> {
        self.query_by_object(role)
    }
    fn version(&self) -> Option<u64> {
        Some(self.inner.epoch.load(Ordering::Acquire))
    }
}

/// Discovery tags attached to a stored credential.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscoveryTag {
    /// Queries by the credential's subject can be directed to its home.
    SearchableFromSubject,
    /// Queries by the credential's object role can be directed to its home.
    SearchableFromObject,
    /// Both directions are advertised.
    Both,
    /// No tags: the credential is only found by broadcast.
    None,
}

impl DiscoveryTag {
    fn advertises_subject(self) -> bool {
        matches!(
            self,
            DiscoveryTag::SearchableFromSubject | DiscoveryTag::Both
        )
    }
    fn advertises_object(self) -> bool {
        matches!(
            self,
            DiscoveryTag::SearchableFromObject | DiscoveryTag::Both
        )
    }

    /// Stable one-byte encoding used by the durability log ([`crate::wal`]).
    pub fn to_byte(self) -> u8 {
        match self {
            DiscoveryTag::None => 0,
            DiscoveryTag::SearchableFromSubject => 1,
            DiscoveryTag::SearchableFromObject => 2,
            DiscoveryTag::Both => 3,
        }
    }

    /// Inverse of [`to_byte`](Self::to_byte).
    pub fn from_byte(b: u8) -> Option<DiscoveryTag> {
        match b {
            0 => Some(DiscoveryTag::None),
            1 => Some(DiscoveryTag::SearchableFromSubject),
            2 => Some(DiscoveryTag::SearchableFromObject),
            3 => Some(DiscoveryTag::Both),
            _ => None,
        }
    }
}

/// A mutation just applied to a [`Repository`], delivered to its observer
/// *after* the mutation is visible (all internal locks released). The
/// durability layer ([`crate::wal`]) uses this to append every mutation to
/// its write-ahead log without the repository knowing about files.
pub enum RepoEvent<'a> {
    /// A credential was stored at `home` with discovery tags `tag`.
    Published {
        /// The home node the credential was stored at.
        home: &'a EntityName,
        /// The stored credential (shared allocation).
        cred: &'a Arc<SignedDelegation>,
        /// Its discovery tags.
        tag: DiscoveryTag,
    },
    /// `purge_expired(now)` removed `purged` credentials.
    PurgedExpired {
        /// The purge evaluation time.
        now: u64,
        /// How many credentials were dropped.
        purged: usize,
    },
}

/// Callback observing repository mutations (see [`RepoEvent`]).
pub type RepoObserver = Arc<dyn Fn(RepoEvent<'_>) + Send + Sync>;

/// Canonical lookup key for a delegation subject. Entity keys include the
/// public key so two principals with the same display name cannot alias
/// each other in the index. Public so static analyses (psf-analysis) can
/// key their reachability sets identically to the proof engine.
pub fn subject_key(s: &Subject) -> String {
    match s {
        Subject::Entity { name, key } => {
            let fp: String = key.as_bytes().iter().map(|b| format!("{b:02x}")).collect();
            format!("E:{}:{fp}", name.0)
        }
        Subject::Role(r) => format!("R:{r}"),
    }
}

#[derive(Default)]
struct Shard {
    credentials: Vec<Arc<SignedDelegation>>,
    by_subject: HashMap<String, Vec<usize>>,
    by_object: HashMap<String, Vec<usize>>,
}

impl Shard {
    fn insert(&mut self, cred: Arc<SignedDelegation>) {
        let idx = self.credentials.len();
        self.by_subject
            .entry(subject_key(&cred.body.subject))
            .or_default()
            .push(idx);
        self.by_object
            .entry(cred.body.object.to_string())
            .or_default()
            .push(idx);
        self.credentials.push(cred);
    }
}

/// Counters describing repository traffic (reset with
/// [`Repository::reset_stats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RepoStats {
    /// Number of query operations served.
    pub queries: u64,
    /// Number of per-home messages those queries fanned out to.
    pub messages: u64,
    /// Queries answered via the discovery-tag index (directed).
    pub directed: u64,
    /// Queries that had to broadcast to every home.
    pub broadcast: u64,
}

/// A sharded credential repository with a discovery-tag index.
#[derive(Clone, Default)]
pub struct Repository {
    inner: Arc<RepositoryInner>,
}

#[derive(Default)]
struct RepositoryInner {
    shards: RwLock<HashMap<EntityName, Shard>>,
    // tag index: key → homes that advertised credentials for it
    tag_subject: RwLock<HashMap<String, HashSet<EntityName>>>,
    tag_object: RwLock<HashMap<String, HashSet<EntityName>>>,
    queries: AtomicU64,
    messages: AtomicU64,
    directed: AtomicU64,
    broadcast: AtomicU64,
    // Bumped on every mutation (publish, purge): proof caches use it to
    // decide whether a negative ("no proof") result is still current.
    epoch: AtomicU64,
    // Mutation observer (durability layer); invoked outside all locks.
    observer: RwLock<Option<RepoObserver>>,
}

impl Repository {
    /// New empty repository.
    pub fn new() -> Repository {
        Repository::default()
    }

    /// Store a credential at `home` (normally the issuer's domain), with
    /// the given discovery tags.
    pub fn publish(&self, home: EntityName, cred: SignedDelegation, tag: DiscoveryTag) {
        let cred = Arc::new(cred);
        if tag.advertises_subject() {
            self.inner
                .tag_subject
                .write()
                .entry(subject_key(&cred.body.subject))
                .or_default()
                .insert(home.clone());
        }
        if tag.advertises_object() {
            self.inner
                .tag_object
                .write()
                .entry(cred.body.object.to_string())
                .or_default()
                .insert(home.clone());
        }
        self.inner
            .shards
            .write()
            .entry(home.clone())
            .or_default()
            .insert(cred.clone());
        self.inner.epoch.fetch_add(1, Ordering::AcqRel);
        let observer = self.inner.observer.read().clone();
        if let Some(obs) = observer {
            obs(RepoEvent::Published {
                home: &home,
                cred: &cred,
                tag,
            });
        }
    }

    /// Convenience: publish at the issuer's own domain with both tags (the
    /// common case in the mail scenario).
    pub fn publish_at_issuer(&self, cred: SignedDelegation) {
        self.publish(cred.body.issuer.clone(), cred, DiscoveryTag::Both);
    }

    /// All credentials whose subject matches `subject`, using the tag
    /// index when possible. Results share the repository's allocations
    /// (`Arc`) — no signed blob is cloned.
    pub fn query_by_subject(&self, subject: &Subject) -> Vec<Arc<SignedDelegation>> {
        self.query(&subject_key(subject), &self.inner.tag_subject, |s, k| {
            s.by_subject.get(k)
        })
    }

    /// All credentials conveying `role`, using the tag index when possible.
    pub fn query_by_object(&self, role: &RoleName) -> Vec<Arc<SignedDelegation>> {
        self.query(&role.to_string(), &self.inner.tag_object, |s, k| {
            s.by_object.get(k)
        })
    }

    fn query(
        &self,
        key: &str,
        tag_index: &RwLock<HashMap<String, HashSet<EntityName>>>,
        select: impl for<'s> Fn(&'s Shard, &str) -> Option<&'s Vec<usize>>,
    ) -> Vec<Arc<SignedDelegation>> {
        self.inner.queries.fetch_add(1, Ordering::Relaxed);
        psf_telemetry::counter!("psf.drbac.repo.queries").inc();
        let shards = self.inner.shards.read();
        let homes: Vec<EntityName> = {
            let tags = tag_index.read();
            match tags.get(key) {
                Some(homes) => {
                    self.inner.directed.fetch_add(1, Ordering::Relaxed);
                    psf_telemetry::counter!("psf.drbac.repo.directed").inc();
                    homes.iter().cloned().collect()
                }
                None => {
                    self.inner.broadcast.fetch_add(1, Ordering::Relaxed);
                    psf_telemetry::counter!("psf.drbac.repo.broadcast").inc();
                    shards.keys().cloned().collect()
                }
            }
        };
        self.inner
            .messages
            .fetch_add(homes.len() as u64, Ordering::Relaxed);
        psf_telemetry::counter!("psf.drbac.repo.messages").add(homes.len() as u64);
        let mut out = Vec::new();
        for home in homes {
            if let Some(shard) = shards.get(&home) {
                if let Some(indices) = select(shard, key) {
                    out.extend(indices.iter().map(|&i| shard.credentials[i].clone()));
                }
            }
        }
        out
    }

    /// A deterministic snapshot of every stored credential across all
    /// homes, sorted by credential id (shard iteration order is a HashMap
    /// artifact and must not leak into analysis output). Results share the
    /// repository's allocations (`Arc`) — no signed blob is cloned. This
    /// is the graph-extraction entry point for static analysis
    /// (psf-analysis): cycle, expiry, and dangling-support passes walk
    /// this snapshot rather than issuing directed queries.
    pub fn all_credentials(&self) -> Vec<Arc<SignedDelegation>> {
        let shards = self.inner.shards.read();
        let mut out: Vec<Arc<SignedDelegation>> = shards
            .values()
            .flat_map(|s| s.credentials.iter().cloned())
            .collect();
        out.sort_by_key(|a| a.id());
        out
    }

    /// Total number of stored credentials across all homes.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .read()
            .values()
            .map(|s| s.credentials.len())
            .sum()
    }

    /// True when no credentials are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of home-node shards.
    pub fn home_count(&self) -> usize {
        self.inner.shards.read().len()
    }

    /// Drop expired credentials from every shard (a home node's
    /// housekeeping). Returns how many were purged. Tag-index entries for
    /// emptied keys are left in place — a directed query to a home that
    /// no longer holds matches simply returns nothing.
    pub fn purge_expired(&self, now: u64) -> usize {
        let mut purged = 0;
        {
            let mut shards = self.inner.shards.write();
            for shard in shards.values_mut() {
                let keep: Vec<Arc<SignedDelegation>> = shard
                    .credentials
                    .drain(..)
                    .filter(|c| match c.body.expires {
                        Some(t) => {
                            let alive = now < t;
                            if !alive {
                                purged += 1;
                            }
                            alive
                        }
                        None => true,
                    })
                    .collect();
                shard.by_subject.clear();
                shard.by_object.clear();
                for cred in keep {
                    shard.insert(cred);
                }
            }
        }
        self.inner.epoch.fetch_add(1, Ordering::AcqRel);
        if purged > 0 {
            let observer = self.inner.observer.read().clone();
            if let Some(obs) = observer {
                obs(RepoEvent::PurgedExpired { now, purged });
            }
        }
        purged
    }

    /// The repository's mutation epoch (see [`CredentialSource::version`]).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// Bump the mutation epoch without changing contents. Recovery calls
    /// this once after replay so negative proof-cache entries pinned to a
    /// pre-crash epoch can never be mistaken for current.
    pub fn bump_epoch(&self) -> u64 {
        self.inner.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Raise the mutation epoch to at least `floor` (no-op when already
    /// past it). Recovery uses the highest epoch tag seen in the log so a
    /// recovered repository's epoch is monotone across the crash.
    pub fn raise_epoch(&self, floor: u64) {
        self.inner.epoch.fetch_max(floor, Ordering::AcqRel);
    }

    /// Install (or clear) the mutation observer. The callback fires after
    /// each `publish` / effective `purge_expired`, outside all repository
    /// locks — it may re-enter the repository. The durability layer
    /// ([`crate::wal`]) is the intended consumer.
    pub fn set_observer(&self, observer: Option<RepoObserver>) {
        *self.inner.observer.write() = observer;
    }

    /// A deterministic snapshot of every stored credential with its home
    /// node and reconstructed discovery tags, sorted by (home, credential
    /// id). This is what WAL compaction persists: enough to rebuild the
    /// shards *and* the tag index byte-for-byte.
    pub fn snapshot_entries(&self) -> Vec<(EntityName, DiscoveryTag, Arc<SignedDelegation>)> {
        let shards = self.inner.shards.read();
        let tag_subject = self.inner.tag_subject.read();
        let tag_object = self.inner.tag_object.read();
        let mut out: Vec<(EntityName, DiscoveryTag, Arc<SignedDelegation>)> = Vec::new();
        for (home, shard) in shards.iter() {
            for cred in &shard.credentials {
                let subj = tag_subject
                    .get(&subject_key(&cred.body.subject))
                    .is_some_and(|homes| homes.contains(home));
                let obj = tag_object
                    .get(&cred.body.object.to_string())
                    .is_some_and(|homes| homes.contains(home));
                let tag = match (subj, obj) {
                    (true, true) => DiscoveryTag::Both,
                    (true, false) => DiscoveryTag::SearchableFromSubject,
                    (false, true) => DiscoveryTag::SearchableFromObject,
                    (false, false) => DiscoveryTag::None,
                };
                out.push((home.clone(), tag, cred.clone()));
            }
        }
        out.sort_by(|a, b| (&a.0 .0, a.2.id()).cmp(&(&b.0 .0, b.2.id())));
        out
    }

    /// Snapshot the traffic counters.
    pub fn stats(&self) -> RepoStats {
        RepoStats {
            queries: self.inner.queries.load(Ordering::Relaxed),
            messages: self.inner.messages.load(Ordering::Relaxed),
            directed: self.inner.directed.load(Ordering::Relaxed),
            broadcast: self.inner.broadcast.load(Ordering::Relaxed),
        }
    }

    /// Reset the traffic counters (between bench phases).
    pub fn reset_stats(&self) {
        self.inner.queries.store(0, Ordering::Relaxed);
        self.inner.messages.store(0, Ordering::Relaxed);
        self.inner.directed.store(0, Ordering::Relaxed);
        self.inner.broadcast.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delegation::DelegationBuilder;
    use crate::entity::Entity;

    fn cred(issuer: &Entity, subject: &Entity, role: &str) -> SignedDelegation {
        DelegationBuilder::new(issuer)
            .subject_entity(subject)
            .role(issuer.role(role))
            .sign()
    }

    #[test]
    fn publish_and_query_by_subject() {
        let repo = Repository::new();
        let ny = Entity::with_seed("Comp.NY", b"r");
        let alice = Entity::with_seed("Alice", b"r");
        repo.publish_at_issuer(cred(&ny, &alice, "Member"));
        let found = repo.query_by_subject(&alice.as_subject());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].body.object, ny.role("Member"));
    }

    #[test]
    fn query_by_object_finds_role_credentials() {
        let repo = Repository::new();
        let ny = Entity::with_seed("Comp.NY", b"r");
        let alice = Entity::with_seed("Alice", b"r");
        let bob = Entity::with_seed("Bob", b"r");
        repo.publish_at_issuer(cred(&ny, &alice, "Member"));
        repo.publish_at_issuer(cred(&ny, &bob, "Member"));
        repo.publish_at_issuer(cred(&ny, &bob, "Partner"));
        assert_eq!(repo.query_by_object(&ny.role("Member")).len(), 2);
        assert_eq!(repo.query_by_object(&ny.role("Partner")).len(), 1);
        assert_eq!(repo.len(), 3);
    }

    #[test]
    fn directed_vs_broadcast_message_counts() {
        let repo = Repository::new();
        // Ten domains, one credential each.
        let alice = Entity::with_seed("Alice", b"r");
        for i in 0..10 {
            let dom = Entity::with_seed(format!("Dom{i}"), b"r");
            // Tagged: advertised in the subject index.
            repo.publish(
                dom.name.clone(),
                cred(&dom, &alice, "Member"),
                DiscoveryTag::SearchableFromSubject,
            );
        }
        repo.reset_stats();
        let found = repo.query_by_subject(&alice.as_subject());
        assert_eq!(found.len(), 10);
        let s = repo.stats();
        assert_eq!(s.directed, 1);
        assert_eq!(s.messages, 10); // every home advertised

        // An untagged key broadcasts to all 10 homes.
        let bob = Entity::with_seed("Bob", b"r");
        repo.reset_stats();
        let none = repo.query_by_subject(&bob.as_subject());
        assert!(none.is_empty());
        let s = repo.stats();
        assert_eq!(s.broadcast, 1);
        assert_eq!(s.messages, 10);
    }

    #[test]
    fn untagged_credential_found_only_by_broadcast() {
        let repo = Repository::new();
        let ny = Entity::with_seed("Comp.NY", b"r");
        let alice = Entity::with_seed("Alice", b"r");
        repo.publish(
            ny.name.clone(),
            cred(&ny, &alice, "Member"),
            DiscoveryTag::None,
        );
        // Still found (broadcast fallback), but counted as broadcast.
        let found = repo.query_by_subject(&alice.as_subject());
        assert_eq!(found.len(), 1);
        assert_eq!(repo.stats().broadcast, 1);
    }

    #[test]
    fn purge_expired_drops_only_expired() {
        let repo = Repository::new();
        let ny = Entity::with_seed("Comp.NY", b"r");
        let alice = Entity::with_seed("Alice", b"r");
        let eternal = cred(&ny, &alice, "Member");
        let doomed = DelegationBuilder::new(&ny)
            .subject_entity(&alice)
            .role(ny.role("Guest"))
            .expires(100)
            .sign();
        repo.publish_at_issuer(eternal.clone());
        repo.publish_at_issuer(doomed);
        assert_eq!(repo.len(), 2);
        assert_eq!(repo.purge_expired(50), 0);
        assert_eq!(repo.purge_expired(100), 1);
        assert_eq!(repo.len(), 1);
        // The survivor is still indexed and findable.
        let found = repo.query_by_subject(&alice.as_subject());
        assert_eq!(found.len(), 1);
        assert_eq!(*found[0], eternal);
    }

    #[test]
    fn object_tag_does_not_serve_subject_queries() {
        let repo = Repository::new();
        let ny = Entity::with_seed("Comp.NY", b"r");
        let alice = Entity::with_seed("Alice", b"r");
        repo.publish(
            ny.name.clone(),
            cred(&ny, &alice, "Member"),
            DiscoveryTag::SearchableFromObject,
        );
        repo.reset_stats();
        let _ = repo.query_by_subject(&alice.as_subject());
        assert_eq!(repo.stats().broadcast, 1); // subject side not advertised
        repo.reset_stats();
        let _ = repo.query_by_object(&ny.role("Member"));
        assert_eq!(repo.stats().directed, 1);
    }
}
