//! The distributed credential repository with **discovery tags**
//! (paper §3.1), hash-sharded for scale.
//!
//! Credentials are stored in N in-process shards selected by the FNV-1a
//! hash of the canonical *subject* key, each shard guarded by its own
//! `RwLock` so writers to different subjects never contend. Every shard
//! carries its own secondary indexes (by subject, by object) and its own
//! slice of the discovery-tag index, so a subject query touches exactly
//! one shard and an object query fans over the shards without any global
//! lock.
//!
//! The paper's *home node* semantics ride on top: a credential may carry
//! discovery tags identifying it as "searchable from subject" and/or
//! "searchable from object"; tagged credentials are advertised in the tag
//! index so queries can be *directed* to the right homes instead of
//! broadcast to every home. The repository counts the query messages it
//! sends, which experiment **F8** uses to compare tag-directed against
//! broadcast discovery.
//!
//! Invalidation is epoch-batched: one global mutation epoch (backing
//! [`CredentialSource::version`]) plus a per-shard *high-water mark* — the
//! epoch of the shard's latest mutation, updated while the shard's write
//! lock is still held. Proof caches pin the high-water marks of exactly
//! the shards a search read ([`CredentialSource::shard_marks`]), so a
//! publish into an unrelated shard no longer evicts every cached proof.

use crate::delegation::SignedDelegation;
use crate::entity::{EntityName, RoleName, Subject};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default number of hash shards for [`Repository::new`].
pub const DEFAULT_SHARD_COUNT: usize = 32;

/// Anything the proof engine can pull credentials from: the in-process
/// sharded [`Repository`], or a remote repository reached over a
/// Switchboard channel (see `psf-core`'s repository service). The paper's
/// repository is distributed; this trait is the seam that makes proof
/// search location-transparent.
///
/// Credentials are handed out as `Arc<SignedDelegation>` so query results
/// and proof edges share one allocation per stored credential instead of
/// deep-cloning signed blobs on every hop of every proof search.
pub trait CredentialSource: Send + Sync {
    /// Credentials whose subject matches `subject`.
    fn credentials_by_subject(&self, subject: &Subject) -> Vec<Arc<SignedDelegation>>;
    /// Credentials conveying `role`.
    fn credentials_by_object(&self, role: &RoleName) -> Vec<Arc<SignedDelegation>>;
    /// A monotone version of the source's contents, bumped on every
    /// publish/purge, or `None` when the source cannot track one (e.g. a
    /// remote repository). Negative proof-cache entries are only reusable
    /// while the version is unchanged; `None` disables negative caching.
    fn version(&self) -> Option<u64> {
        None
    }
    /// Snapshot of every shard's high-water mark (the global epoch of its
    /// latest mutation), or `None` when the source is unsharded. Positive
    /// proof-cache entries pin the marks of the shards their search read;
    /// they stay valid while only *other* shards mutate.
    fn shard_marks(&self) -> Option<Vec<u64>> {
        None
    }
    /// The shard index a canonical subject key maps to, or `None` when
    /// the source is unsharded.
    fn shard_of_key(&self, _subject_key: &str) -> Option<u32> {
        None
    }
}

impl CredentialSource for Repository {
    fn credentials_by_subject(&self, subject: &Subject) -> Vec<Arc<SignedDelegation>> {
        self.query_by_subject(subject)
    }
    fn credentials_by_object(&self, role: &RoleName) -> Vec<Arc<SignedDelegation>> {
        self.query_by_object(role)
    }
    fn version(&self) -> Option<u64> {
        Some(self.inner.epoch.load(Ordering::Acquire))
    }
    fn shard_marks(&self) -> Option<Vec<u64>> {
        Some(
            self.inner
                .shards
                .iter()
                .map(|s| s.high_water.load(Ordering::Acquire))
                .collect(),
        )
    }
    fn shard_of_key(&self, subject_key: &str) -> Option<u32> {
        Some(self.shard_index(subject_key) as u32)
    }
}

/// Discovery tags attached to a stored credential.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscoveryTag {
    /// Queries by the credential's subject can be directed to its home.
    SearchableFromSubject,
    /// Queries by the credential's object role can be directed to its home.
    SearchableFromObject,
    /// Both directions are advertised.
    Both,
    /// No tags: the credential is only found by broadcast.
    None,
}

impl DiscoveryTag {
    fn advertises_subject(self) -> bool {
        matches!(
            self,
            DiscoveryTag::SearchableFromSubject | DiscoveryTag::Both
        )
    }
    fn advertises_object(self) -> bool {
        matches!(
            self,
            DiscoveryTag::SearchableFromObject | DiscoveryTag::Both
        )
    }

    /// Stable one-byte encoding used by the durability log ([`crate::wal`]).
    pub fn to_byte(self) -> u8 {
        match self {
            DiscoveryTag::None => 0,
            DiscoveryTag::SearchableFromSubject => 1,
            DiscoveryTag::SearchableFromObject => 2,
            DiscoveryTag::Both => 3,
        }
    }

    /// Inverse of [`to_byte`](Self::to_byte).
    pub fn from_byte(b: u8) -> Option<DiscoveryTag> {
        match b {
            0 => Some(DiscoveryTag::None),
            1 => Some(DiscoveryTag::SearchableFromSubject),
            2 => Some(DiscoveryTag::SearchableFromObject),
            3 => Some(DiscoveryTag::Both),
            _ => None,
        }
    }
}

/// A mutation just applied to a [`Repository`], delivered to its observer
/// *after* the mutation is visible (all internal locks released). The
/// durability layer ([`crate::wal`]) uses this to append every mutation to
/// its write-ahead log without the repository knowing about files.
pub enum RepoEvent<'a> {
    /// A credential was stored at `home` with discovery tags `tag`.
    Published {
        /// The home node the credential was stored at.
        home: &'a EntityName,
        /// The stored credential (shared allocation).
        cred: &'a Arc<SignedDelegation>,
        /// Its discovery tags.
        tag: DiscoveryTag,
    },
    /// `purge_expired(now)` removed `purged` credentials.
    PurgedExpired {
        /// The purge evaluation time.
        now: u64,
        /// How many credentials were dropped.
        purged: usize,
    },
}

/// Callback observing repository mutations (see [`RepoEvent`]).
pub type RepoObserver = Arc<dyn Fn(RepoEvent<'_>) + Send + Sync>;

const HEX: &[u8; 16] = b"0123456789abcdef";

/// Canonical lookup key for a delegation subject. Entity keys include the
/// public key so two principals with the same display name cannot alias
/// each other in the index. Public so static analyses (psf-analysis) can
/// key their reachability sets identically to the proof engine.
pub fn subject_key(s: &Subject) -> String {
    match s {
        Subject::Entity { name, key } => {
            let kb = key.as_bytes();
            let mut out = String::with_capacity(name.0.len() + 3 + kb.len() * 2);
            out.push_str("E:");
            out.push_str(&name.0);
            out.push(':');
            for b in kb {
                out.push(HEX[(b >> 4) as usize] as char);
                out.push(HEX[(b & 0x0f) as usize] as char);
            }
            out
        }
        Subject::Role(r) => format!("R:{r}"),
    }
}

/// FNV-1a over a byte string — the shard-selection hash. Cheap, stable
/// across runs (the WAL's shard layout depends on it), and well mixed for
/// the `E:{name}:{hex key}` keys it sees.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

struct Entry {
    home: EntityName,
    cred: Arc<SignedDelegation>,
    tag: DiscoveryTag,
}

#[derive(Default)]
struct ShardData {
    entries: Vec<Entry>,
    by_subject: HashMap<String, Vec<u32>>,
    by_object: HashMap<String, Vec<u32>>,
    // Tag index slice: key → homes advertising credentials for it. A
    // subject's tag entries live in the subject's shard (same shard as
    // its credentials); object-tag entries are unioned across shards at
    // query time.
    tag_subject: HashMap<String, HashSet<EntityName>>,
    tag_object: HashMap<String, HashSet<EntityName>>,
}

impl ShardData {
    fn insert(
        &mut self,
        subject_key: &str,
        home: EntityName,
        cred: Arc<SignedDelegation>,
        tag: DiscoveryTag,
    ) {
        let idx = self.entries.len() as u32;
        match self.by_subject.get_mut(subject_key) {
            Some(v) => v.push(idx),
            None => {
                self.by_subject.insert(subject_key.to_string(), vec![idx]);
            }
        }
        self.by_object
            .entry(cred.body.object.to_string())
            .or_default()
            .push(idx);
        self.entries.push(Entry { home, cred, tag });
    }
}

struct ShardState {
    data: RwLock<ShardData>,
    /// Global epoch of this shard's latest mutation, stored while the
    /// shard's write lock is still held — if a reader sees an unchanged
    /// mark, no mutation has become visible since the mark was read.
    high_water: AtomicU64,
}

/// Counters describing repository traffic (reset with
/// [`Repository::reset_stats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RepoStats {
    /// Number of query operations served.
    pub queries: u64,
    /// Number of per-home messages those queries fanned out to.
    pub messages: u64,
    /// Queries answered via the discovery-tag index (directed).
    pub directed: u64,
    /// Queries that had to broadcast to every home.
    pub broadcast: u64,
}

/// Per-shard occupancy snapshot (backs `psf repo --stats`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardInfo {
    /// Shard index.
    pub index: usize,
    /// Credentials stored in the shard.
    pub entries: usize,
    /// Distinct subject keys indexed.
    pub subject_keys: usize,
    /// Distinct object roles indexed.
    pub object_keys: usize,
    /// Discovery-tag index entries (subject side + object side).
    pub tag_keys: usize,
    /// Global epoch of the shard's latest mutation (0 = never mutated).
    pub high_water: u64,
}

/// A hash-sharded credential repository with a discovery-tag index.
#[derive(Clone)]
pub struct Repository {
    inner: Arc<RepositoryInner>,
}

struct RepositoryInner {
    shards: Vec<ShardState>,
    mask: u64,
    // Every home node ever published to; backs broadcast message counts
    // and `home_count` (homes are never removed, matching the old
    // per-home-shard behavior where a purged-empty home still counted).
    homes: RwLock<HashSet<EntityName>>,
    queries: AtomicU64,
    messages: AtomicU64,
    directed: AtomicU64,
    broadcast: AtomicU64,
    // Bumped on every mutation (publish, purge): proof caches use it to
    // decide whether a negative ("no proof") result is still current.
    epoch: AtomicU64,
    // Mutation observer (durability layer); invoked outside all locks.
    observer: RwLock<Option<RepoObserver>>,
}

impl Default for Repository {
    fn default() -> Self {
        Repository::new()
    }
}

impl Repository {
    /// New empty repository with [`DEFAULT_SHARD_COUNT`] shards.
    pub fn new() -> Repository {
        Repository::with_shard_count(DEFAULT_SHARD_COUNT)
    }

    /// New empty repository with `shards` hash shards (rounded up to a
    /// power of two, clamped to `1..=1024`). A single-shard repository
    /// reproduces the old fully-serialized store — the baseline the
    /// scaling benchmarks compare against.
    pub fn with_shard_count(shards: usize) -> Repository {
        let n = shards.clamp(1, 1024).next_power_of_two();
        Repository {
            inner: Arc::new(RepositoryInner {
                shards: (0..n)
                    .map(|_| ShardState {
                        data: RwLock::new(ShardData::default()),
                        high_water: AtomicU64::new(0),
                    })
                    .collect(),
                mask: (n - 1) as u64,
                homes: RwLock::new(HashSet::new()),
                queries: AtomicU64::new(0),
                messages: AtomicU64::new(0),
                directed: AtomicU64::new(0),
                broadcast: AtomicU64::new(0),
                epoch: AtomicU64::new(0),
                observer: RwLock::new(None),
            }),
        }
    }

    /// Number of hash shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard index a canonical subject key (see [`subject_key`]) maps
    /// to. The sharded WAL uses this to route publish records to per-shard
    /// log segments.
    pub fn shard_index(&self, subject_key: &str) -> usize {
        (fnv1a(subject_key.as_bytes()) & self.inner.mask) as usize
    }

    /// A shard's high-water mark: the global epoch of its latest
    /// mutation (0 when never mutated).
    pub fn shard_high_water(&self, shard: usize) -> u64 {
        self.inner.shards[shard].high_water.load(Ordering::Acquire)
    }

    /// Store a credential at `home` (normally the issuer's domain), with
    /// the given discovery tags.
    pub fn publish(&self, home: EntityName, cred: SignedDelegation, tag: DiscoveryTag) {
        let cred = Arc::new(cred);
        let skey = subject_key(&cred.body.subject);
        // Track the home set (read-check first: the set stabilizes fast
        // and write locks on it would serialize unrelated publishers).
        if !self.inner.homes.read().contains(&home) {
            self.inner.homes.write().insert(home.clone());
        }
        let shard = &self.inner.shards[self.shard_index(&skey)];
        {
            let mut data = shard.data.write();
            if tag.advertises_subject() {
                data.tag_subject
                    .entry(skey.clone())
                    .or_default()
                    .insert(home.clone());
            }
            if tag.advertises_object() {
                data.tag_object
                    .entry(cred.body.object.to_string())
                    .or_default()
                    .insert(home.clone());
            }
            data.insert(&skey, home.clone(), cred.clone(), tag);
            // High-water mark while the write lock is still held: a
            // reader that later sees an unchanged mark is guaranteed this
            // mutation was not yet visible when the mark was read.
            let e = self.inner.epoch.fetch_add(1, Ordering::AcqRel) + 1;
            shard.high_water.fetch_max(e, Ordering::AcqRel);
        }
        let observer = self.inner.observer.read().clone();
        if let Some(obs) = observer {
            obs(RepoEvent::Published {
                home: &home,
                cred: &cred,
                tag,
            });
        }
    }

    /// Convenience: publish at the issuer's own domain with both tags (the
    /// common case in the mail scenario).
    pub fn publish_at_issuer(&self, cred: SignedDelegation) {
        self.publish(cred.body.issuer.clone(), cred, DiscoveryTag::Both);
    }

    /// All credentials whose subject matches `subject`, served from the
    /// subject's single shard. Directed when the shard's tag index
    /// advertises the key; broadcast (counted against every home)
    /// otherwise. Results share the repository's allocations (`Arc`) — no
    /// signed blob is cloned.
    pub fn query_by_subject(&self, subject: &Subject) -> Vec<Arc<SignedDelegation>> {
        self.query_by_subject_key(&subject_key(subject))
    }

    /// [`query_by_subject`](Self::query_by_subject) by pre-computed
    /// canonical key (hot-path variant: skips re-deriving the key).
    pub fn query_by_subject_key(&self, key: &str) -> Vec<Arc<SignedDelegation>> {
        self.inner.queries.fetch_add(1, Ordering::Relaxed);
        psf_telemetry::counter!("psf.drbac.repo.queries").inc();
        let shard = &self.inner.shards[self.shard_index(key)];
        let data = shard.data.read();
        let mut out = Vec::new();
        match data.tag_subject.get(key) {
            Some(homes) => {
                // Directed: one message per advertising home; only
                // credentials stored at those homes are reachable.
                self.inner.directed.fetch_add(1, Ordering::Relaxed);
                psf_telemetry::counter!("psf.drbac.repo.directed").inc();
                self.inner
                    .messages
                    .fetch_add(homes.len() as u64, Ordering::Relaxed);
                psf_telemetry::counter!("psf.drbac.repo.messages").add(homes.len() as u64);
                if let Some(indices) = data.by_subject.get(key) {
                    for &i in indices {
                        let e = &data.entries[i as usize];
                        if homes.contains(&e.home) {
                            out.push(e.cred.clone());
                        }
                    }
                }
            }
            None => {
                // Broadcast: every home is asked.
                self.inner.broadcast.fetch_add(1, Ordering::Relaxed);
                psf_telemetry::counter!("psf.drbac.repo.broadcast").inc();
                let total = self.inner.homes.read().len() as u64;
                self.inner.messages.fetch_add(total, Ordering::Relaxed);
                psf_telemetry::counter!("psf.drbac.repo.messages").add(total);
                if let Some(indices) = data.by_subject.get(key) {
                    out.extend(
                        indices
                            .iter()
                            .map(|&i| data.entries[i as usize].cred.clone()),
                    );
                }
            }
        }
        out
    }

    /// All credentials conveying `role`. Matching credentials are sharded
    /// by their *subjects*, so the query fans over every shard (brief read
    /// lock each, never a global lock); the advertised-home union across
    /// shards decides directed vs broadcast.
    pub fn query_by_object(&self, role: &RoleName) -> Vec<Arc<SignedDelegation>> {
        self.inner.queries.fetch_add(1, Ordering::Relaxed);
        psf_telemetry::counter!("psf.drbac.repo.queries").inc();
        let key = role.to_string();
        let mut advertised: HashSet<EntityName> = HashSet::new();
        let mut matches: Vec<(EntityName, Arc<SignedDelegation>)> = Vec::new();
        for shard in &self.inner.shards {
            let data = shard.data.read();
            if let Some(homes) = data.tag_object.get(&key) {
                advertised.extend(homes.iter().cloned());
            }
            if let Some(indices) = data.by_object.get(&key) {
                for &i in indices {
                    let e = &data.entries[i as usize];
                    matches.push((e.home.clone(), e.cred.clone()));
                }
            }
        }
        if advertised.is_empty() {
            self.inner.broadcast.fetch_add(1, Ordering::Relaxed);
            psf_telemetry::counter!("psf.drbac.repo.broadcast").inc();
            let total = self.inner.homes.read().len() as u64;
            self.inner.messages.fetch_add(total, Ordering::Relaxed);
            psf_telemetry::counter!("psf.drbac.repo.messages").add(total);
            matches.into_iter().map(|(_, c)| c).collect()
        } else {
            self.inner.directed.fetch_add(1, Ordering::Relaxed);
            psf_telemetry::counter!("psf.drbac.repo.directed").inc();
            self.inner
                .messages
                .fetch_add(advertised.len() as u64, Ordering::Relaxed);
            psf_telemetry::counter!("psf.drbac.repo.messages").add(advertised.len() as u64);
            matches
                .into_iter()
                .filter(|(home, _)| advertised.contains(home))
                .map(|(_, c)| c)
                .collect()
        }
    }

    /// A deterministic snapshot of every stored credential across all
    /// shards, sorted by credential id (shard order is a hash artifact and
    /// must not leak into analysis output). Results share the repository's
    /// allocations (`Arc`) — no signed blob is cloned. This is the
    /// graph-extraction entry point for static analysis (psf-analysis):
    /// cycle, expiry, and dangling-support passes walk this snapshot
    /// rather than issuing directed queries.
    pub fn all_credentials(&self) -> Vec<Arc<SignedDelegation>> {
        let mut out: Vec<Arc<SignedDelegation>> = Vec::new();
        for shard in &self.inner.shards {
            let data = shard.data.read();
            out.extend(data.entries.iter().map(|e| e.cred.clone()));
        }
        out.sort_by_key(|a| a.id());
        out
    }

    /// Total number of stored credentials across all shards.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.data.read().entries.len())
            .sum()
    }

    /// True when no credentials are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of home nodes ever published to.
    pub fn home_count(&self) -> usize {
        self.inner.homes.read().len()
    }

    /// Drop expired credentials, one shard at a time: each shard is
    /// locked, swept, and released before the next — a purge never blocks
    /// concurrent lookups on other shards. Returns how many credentials
    /// were purged. Tag-index advertisements are rebuilt from the
    /// survivors, so an expired credential's advertisement dies with it:
    /// a dead advertisement would otherwise keep a key on the directed
    /// path and hide live un-tagged credentials stored at other homes
    /// (and [`snapshot_entries`](Self::snapshot_entries) — hence WAL
    /// compaction — only captures survivors' tags, so keeping stale
    /// entries would make query results differ across a compaction).
    pub fn purge_expired(&self, now: u64) -> usize {
        let mut purged = 0;
        for i in 0..self.inner.shards.len() {
            purged += self.purge_expired_shard(i, now);
        }
        // One final epoch bump even when nothing was purged, matching the
        // historical "purge always advances the version" contract.
        self.inner.epoch.fetch_add(1, Ordering::AcqRel);
        if purged > 0 {
            let observer = self.inner.observer.read().clone();
            if let Some(obs) = observer {
                obs(RepoEvent::PurgedExpired { now, purged });
            }
        }
        purged
    }

    /// Sweep a single shard for expired credentials. Internal: the
    /// durability layer replays per-shard `PurgeExpired` records with it
    /// (callers outside the crate go through [`purge_expired`], which
    /// notifies the observer).
    pub(crate) fn purge_expired_shard(&self, shard: usize, now: u64) -> usize {
        let state = &self.inner.shards[shard];
        let mut data = state.data.write();
        let expired = data
            .entries
            .iter()
            .filter(|e| e.cred.body.expires.is_some_and(|t| now >= t))
            .count();
        if expired > 0 {
            let old = std::mem::take(&mut *data);
            let mut rebuilt = ShardData::default();
            for e in old.entries {
                if e.cred.body.expires.is_none_or(|t| now < t) {
                    let skey = subject_key(&e.cred.body.subject);
                    if e.tag.advertises_subject() {
                        rebuilt
                            .tag_subject
                            .entry(skey.clone())
                            .or_default()
                            .insert(e.home.clone());
                    }
                    if e.tag.advertises_object() {
                        rebuilt
                            .tag_object
                            .entry(e.cred.body.object.to_string())
                            .or_default()
                            .insert(e.home.clone());
                    }
                    rebuilt.insert(&skey, e.home, e.cred, e.tag);
                }
            }
            *data = rebuilt;
            let e = self.inner.epoch.fetch_add(1, Ordering::AcqRel) + 1;
            state.high_water.fetch_max(e, Ordering::AcqRel);
        }
        expired
    }

    /// The repository's mutation epoch (see [`CredentialSource::version`]).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// Bump the mutation epoch without changing contents. Recovery calls
    /// this once after replay so negative proof-cache entries pinned to a
    /// pre-crash epoch can never be mistaken for current.
    pub fn bump_epoch(&self) -> u64 {
        self.inner.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Raise the mutation epoch to at least `floor` (no-op when already
    /// past it). Recovery uses the highest epoch tag seen in the log so a
    /// recovered repository's epoch is monotone across the crash.
    pub fn raise_epoch(&self, floor: u64) {
        self.inner.epoch.fetch_max(floor, Ordering::AcqRel);
    }

    /// Install (or clear) the mutation observer. The callback fires after
    /// each `publish` / effective `purge_expired`, outside all repository
    /// locks — it may re-enter the repository. The durability layer
    /// ([`crate::wal`]) is the intended consumer.
    pub fn set_observer(&self, observer: Option<RepoObserver>) {
        *self.inner.observer.write() = observer;
    }

    /// A deterministic snapshot of every stored credential with its home
    /// node and discovery tags, sorted by (home, credential id). This is
    /// what WAL compaction persists: enough to rebuild the shards *and*
    /// the tag index byte-for-byte.
    pub fn snapshot_entries(&self) -> Vec<(EntityName, DiscoveryTag, Arc<SignedDelegation>)> {
        let mut out: Vec<(EntityName, DiscoveryTag, Arc<SignedDelegation>)> = Vec::new();
        for i in 0..self.inner.shards.len() {
            out.extend(self.snapshot_shard(i));
        }
        out.sort_by(|a, b| (&a.0 .0, a.2.id()).cmp(&(&b.0 .0, b.2.id())));
        out
    }

    /// Per-shard snapshot in the same shape as
    /// [`snapshot_entries`](Self::snapshot_entries), sorted by (home,
    /// credential id). The sharded WAL compacts one shard at a time with
    /// it.
    pub fn snapshot_shard(
        &self,
        shard: usize,
    ) -> Vec<(EntityName, DiscoveryTag, Arc<SignedDelegation>)> {
        let data = self.inner.shards[shard].data.read();
        let mut out: Vec<(EntityName, DiscoveryTag, Arc<SignedDelegation>)> = Vec::new();
        for e in &data.entries {
            out.push((e.home.clone(), e.tag, e.cred.clone()));
        }
        out.sort_by(|a, b| (&a.0 .0, a.2.id()).cmp(&(&b.0 .0, b.2.id())));
        out
    }

    /// Per-shard occupancy snapshot (entries, index sizes, high-water
    /// marks) for `psf repo --stats`.
    pub fn shard_infos(&self) -> Vec<ShardInfo> {
        self.inner
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let data = s.data.read();
                ShardInfo {
                    index: i,
                    entries: data.entries.len(),
                    subject_keys: data.by_subject.len(),
                    object_keys: data.by_object.len(),
                    tag_keys: data.tag_subject.len() + data.tag_object.len(),
                    high_water: s.high_water.load(Ordering::Acquire),
                }
            })
            .collect()
    }

    /// Snapshot the traffic counters.
    pub fn stats(&self) -> RepoStats {
        RepoStats {
            queries: self.inner.queries.load(Ordering::Relaxed),
            messages: self.inner.messages.load(Ordering::Relaxed),
            directed: self.inner.directed.load(Ordering::Relaxed),
            broadcast: self.inner.broadcast.load(Ordering::Relaxed),
        }
    }

    /// Reset the traffic counters (between bench phases).
    pub fn reset_stats(&self) {
        self.inner.queries.store(0, Ordering::Relaxed);
        self.inner.messages.store(0, Ordering::Relaxed);
        self.inner.directed.store(0, Ordering::Relaxed);
        self.inner.broadcast.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delegation::DelegationBuilder;
    use crate::entity::Entity;

    fn cred(issuer: &Entity, subject: &Entity, role: &str) -> SignedDelegation {
        DelegationBuilder::new(issuer)
            .subject_entity(subject)
            .role(issuer.role(role))
            .sign()
    }

    #[test]
    fn publish_and_query_by_subject() {
        let repo = Repository::new();
        let ny = Entity::with_seed("Comp.NY", b"r");
        let alice = Entity::with_seed("Alice", b"r");
        repo.publish_at_issuer(cred(&ny, &alice, "Member"));
        let found = repo.query_by_subject(&alice.as_subject());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].body.object, ny.role("Member"));
    }

    #[test]
    fn query_by_object_finds_role_credentials() {
        let repo = Repository::new();
        let ny = Entity::with_seed("Comp.NY", b"r");
        let alice = Entity::with_seed("Alice", b"r");
        let bob = Entity::with_seed("Bob", b"r");
        repo.publish_at_issuer(cred(&ny, &alice, "Member"));
        repo.publish_at_issuer(cred(&ny, &bob, "Member"));
        repo.publish_at_issuer(cred(&ny, &bob, "Partner"));
        assert_eq!(repo.query_by_object(&ny.role("Member")).len(), 2);
        assert_eq!(repo.query_by_object(&ny.role("Partner")).len(), 1);
        assert_eq!(repo.len(), 3);
    }

    #[test]
    fn directed_vs_broadcast_message_counts() {
        let repo = Repository::new();
        // Ten domains, one credential each.
        let alice = Entity::with_seed("Alice", b"r");
        for i in 0..10 {
            let dom = Entity::with_seed(format!("Dom{i}"), b"r");
            // Tagged: advertised in the subject index.
            repo.publish(
                dom.name.clone(),
                cred(&dom, &alice, "Member"),
                DiscoveryTag::SearchableFromSubject,
            );
        }
        repo.reset_stats();
        let found = repo.query_by_subject(&alice.as_subject());
        assert_eq!(found.len(), 10);
        let s = repo.stats();
        assert_eq!(s.directed, 1);
        assert_eq!(s.messages, 10); // every home advertised

        // An untagged key broadcasts to all 10 homes.
        let bob = Entity::with_seed("Bob", b"r");
        repo.reset_stats();
        let none = repo.query_by_subject(&bob.as_subject());
        assert!(none.is_empty());
        let s = repo.stats();
        assert_eq!(s.broadcast, 1);
        assert_eq!(s.messages, 10);
    }

    #[test]
    fn untagged_credential_found_only_by_broadcast() {
        let repo = Repository::new();
        let ny = Entity::with_seed("Comp.NY", b"r");
        let alice = Entity::with_seed("Alice", b"r");
        repo.publish(
            ny.name.clone(),
            cred(&ny, &alice, "Member"),
            DiscoveryTag::None,
        );
        // Still found (broadcast fallback), but counted as broadcast.
        let found = repo.query_by_subject(&alice.as_subject());
        assert_eq!(found.len(), 1);
        assert_eq!(repo.stats().broadcast, 1);
    }

    #[test]
    fn purge_expired_drops_only_expired() {
        let repo = Repository::new();
        let ny = Entity::with_seed("Comp.NY", b"r");
        let alice = Entity::with_seed("Alice", b"r");
        let eternal = cred(&ny, &alice, "Member");
        let doomed = DelegationBuilder::new(&ny)
            .subject_entity(&alice)
            .role(ny.role("Guest"))
            .expires(100)
            .sign();
        repo.publish_at_issuer(eternal.clone());
        repo.publish_at_issuer(doomed);
        assert_eq!(repo.len(), 2);
        assert_eq!(repo.purge_expired(50), 0);
        assert_eq!(repo.purge_expired(100), 1);
        assert_eq!(repo.len(), 1);
        // The survivor is still indexed and findable.
        let found = repo.query_by_subject(&alice.as_subject());
        assert_eq!(found.len(), 1);
        assert_eq!(*found[0], eternal);
    }

    #[test]
    fn object_tag_does_not_serve_subject_queries() {
        let repo = Repository::new();
        let ny = Entity::with_seed("Comp.NY", b"r");
        let alice = Entity::with_seed("Alice", b"r");
        repo.publish(
            ny.name.clone(),
            cred(&ny, &alice, "Member"),
            DiscoveryTag::SearchableFromObject,
        );
        repo.reset_stats();
        let _ = repo.query_by_subject(&alice.as_subject());
        assert_eq!(repo.stats().broadcast, 1); // subject side not advertised
        repo.reset_stats();
        let _ = repo.query_by_object(&ny.role("Member"));
        assert_eq!(repo.stats().directed, 1);
    }

    /// Sharding is an internal layout choice: a single-shard store and a
    /// many-shard store must agree on every query, count, and snapshot.
    #[test]
    fn shard_count_is_observationally_invisible() {
        let wide = Repository::with_shard_count(64);
        let narrow = Repository::with_shard_count(1);
        assert_eq!(wide.shard_count(), 64);
        assert_eq!(narrow.shard_count(), 1);
        let subjects: Vec<Entity> = (0..24)
            .map(|i| Entity::with_seed(format!("U{i}"), b"shard"))
            .collect();
        let doms: Vec<Entity> = (0..4)
            .map(|i| Entity::with_seed(format!("D{i}"), b"shard"))
            .collect();
        for (i, u) in subjects.iter().enumerate() {
            let d = &doms[i % doms.len()];
            let tag = match i % 3 {
                0 => DiscoveryTag::Both,
                1 => DiscoveryTag::SearchableFromSubject,
                _ => DiscoveryTag::None,
            };
            let c = cred(d, u, "Member");
            wide.publish(d.name.clone(), c.clone(), tag);
            narrow.publish(d.name.clone(), c, tag);
        }
        assert_eq!(wide.len(), narrow.len());
        assert_eq!(wide.home_count(), narrow.home_count());
        for u in &subjects {
            let a: Vec<String> = wide
                .query_by_subject(&u.as_subject())
                .iter()
                .map(|c| c.id())
                .collect();
            let b: Vec<String> = narrow
                .query_by_subject(&u.as_subject())
                .iter()
                .map(|c| c.id())
                .collect();
            assert_eq!(a, b, "subject query diverged for {}", u.name);
        }
        for d in &doms {
            let mut a: Vec<String> = wide
                .query_by_object(&d.role("Member"))
                .iter()
                .map(|c| c.id())
                .collect();
            let mut b: Vec<String> = narrow
                .query_by_object(&d.role("Member"))
                .iter()
                .map(|c| c.id())
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "object query diverged for {}", d.name);
        }
        let ids = |r: &Repository| -> Vec<String> {
            r.all_credentials().iter().map(|c| c.id()).collect()
        };
        assert_eq!(ids(&wide), ids(&narrow));
        let snap = |r: &Repository| -> Vec<(String, u8, String)> {
            r.snapshot_entries()
                .iter()
                .map(|(h, t, c)| (h.0.clone(), t.to_byte(), c.id()))
                .collect()
        };
        assert_eq!(snap(&wide), snap(&narrow));
    }

    /// Publishing into one shard must not move any other shard's
    /// high-water mark — the property the proof cache's per-shard
    /// invalidation rests on.
    #[test]
    fn high_water_marks_move_only_for_the_mutated_shard() {
        let repo = Repository::with_shard_count(16);
        let ny = Entity::with_seed("Comp.NY", b"hw");
        let alice = Entity::with_seed("Alice", b"hw");
        repo.publish_at_issuer(cred(&ny, &alice, "Member"));
        let alice_shard = repo.shard_index(&subject_key(&alice.as_subject()));
        let marks: Vec<u64> = repo.shard_marks().unwrap();
        assert!(marks[alice_shard] > 0);
        // Find a subject landing in a different shard and publish it.
        let other = (0..64)
            .map(|i| Entity::with_seed(format!("Probe{i}"), b"hw"))
            .find(|e| repo.shard_index(&subject_key(&e.as_subject())) != alice_shard)
            .expect("64 probes must hit a second shard of 16");
        repo.publish_at_issuer(cred(&ny, &other, "Member"));
        let after: Vec<u64> = repo.shard_marks().unwrap();
        assert_eq!(
            marks[alice_shard], after[alice_shard],
            "untouched shard's mark moved"
        );
        let other_shard = repo.shard_index(&subject_key(&other.as_subject()));
        assert!(after[other_shard] > marks[other_shard]);
        // The global version still advances on every publish.
        assert!(repo.version().unwrap() >= 2);
    }

    #[test]
    fn shard_infos_account_for_every_entry() {
        let repo = Repository::with_shard_count(8);
        let ny = Entity::with_seed("Comp.NY", b"si");
        for i in 0..40 {
            let u = Entity::with_seed(format!("U{i}"), b"si");
            repo.publish_at_issuer(cred(&ny, &u, "Member"));
        }
        let infos = repo.shard_infos();
        assert_eq!(infos.len(), 8);
        assert_eq!(infos.iter().map(|s| s.entries).sum::<usize>(), 40);
        assert!(
            infos.iter().filter(|s| s.entries > 0).count() > 1,
            "40 subjects should spread across shards"
        );
        for s in &infos {
            if s.entries > 0 {
                assert!(s.high_water > 0);
                assert!(s.subject_keys > 0);
            }
        }
    }

    #[test]
    fn incremental_purge_keeps_shards_consistent() {
        let repo = Repository::with_shard_count(8);
        let ny = Entity::with_seed("Comp.NY", b"ip");
        let mut doomed = 0;
        for i in 0..30 {
            let u = Entity::with_seed(format!("U{i}"), b"ip");
            let mut b = DelegationBuilder::new(&ny)
                .subject_entity(&u)
                .role(ny.role("Member"));
            if i % 3 == 0 {
                b = b.expires(100);
                doomed += 1;
            }
            repo.publish_at_issuer(b.sign());
        }
        assert_eq!(repo.purge_expired(100), doomed);
        assert_eq!(repo.len(), 30 - doomed);
        // Survivors remain indexed and findable after the per-shard rebuild.
        for i in 0..30 {
            let u = Entity::with_seed(format!("U{i}"), b"ip");
            let found = repo.query_by_subject(&u.as_subject());
            assert_eq!(found.len(), usize::from(i % 3 != 0), "U{i}");
        }
    }
}
