//! Policy translation — the paper's §6 future work, implemented.
//!
//! "One of the main assumptions made in the Partitionable Services
//! framework is that all domains are using dRBAC as their authorization
//! policy implementation. In order to allow each domain to freely choose
//! the policy implementation (e.g. roles, capabilities), the framework
//! should provide a service able to translate between that
//! implementation and dRBAC."
//!
//! [`PolicyTranslator`] compiles two common foreign policy shapes into
//! dRBAC delegations issued by the domain's [`Guard`]:
//!
//! * **capability lists** — `principal ⊢ capability` pairs become
//!   self-certifying delegations onto per-capability roles;
//! * **group-based policies** (Unix-style) — groups become intermediate
//!   roles; membership becomes entity→group delegations and group
//!   permissions become group-role→capability-role delegations, so the
//!   proof graph mirrors the group indirection.
//!
//! The translation is *semantics-preserving*: a principal is authorized
//! for a capability under the foreign model iff dRBAC proves the
//! corresponding role after translation (tested below).

use crate::entity::{Entity, RoleName};
use crate::guard::Guard;
use crate::{DrbacError, SignedDelegation};
use std::collections::{BTreeMap, BTreeSet};

/// A flat capability-list policy: `principal ⊢ capability`.
#[derive(Debug, Clone, Default)]
pub struct CapabilityPolicy {
    /// (principal name, capability) grants.
    pub grants: Vec<(String, String)>,
}

impl CapabilityPolicy {
    /// Builder: add a grant.
    pub fn grant(mut self, principal: impl Into<String>, capability: impl Into<String>) -> Self {
        self.grants.push((principal.into(), capability.into()));
        self
    }

    /// The foreign model's own decision procedure (ground truth for the
    /// equivalence tests).
    pub fn allows(&self, principal: &str, capability: &str) -> bool {
        self.grants
            .iter()
            .any(|(p, c)| p == principal && c == capability)
    }
}

/// A Unix-style group policy: members belong to groups; groups hold
/// capabilities.
#[derive(Debug, Clone, Default)]
pub struct GroupPolicy {
    /// group → member principal names.
    pub groups: BTreeMap<String, BTreeSet<String>>,
    /// group → capabilities.
    pub permissions: BTreeMap<String, BTreeSet<String>>,
}

impl GroupPolicy {
    /// Builder: add a member to a group.
    pub fn member(mut self, group: impl Into<String>, principal: impl Into<String>) -> Self {
        self.groups
            .entry(group.into())
            .or_default()
            .insert(principal.into());
        self
    }

    /// Builder: grant a capability to a group.
    pub fn permit(mut self, group: impl Into<String>, capability: impl Into<String>) -> Self {
        self.permissions
            .entry(group.into())
            .or_default()
            .insert(capability.into());
        self
    }

    /// The foreign model's own decision procedure.
    pub fn allows(&self, principal: &str, capability: &str) -> bool {
        self.groups.iter().any(|(g, members)| {
            members.contains(principal)
                && self
                    .permissions
                    .get(g)
                    .is_some_and(|caps| caps.contains(capability))
        })
    }
}

/// Translates foreign policies into dRBAC credentials issued by a
/// domain's Guard.
pub struct PolicyTranslator<'a> {
    guard: &'a Guard,
}

impl<'a> PolicyTranslator<'a> {
    /// A translator issuing through `guard`.
    pub fn new(guard: &'a Guard) -> PolicyTranslator<'a> {
        PolicyTranslator { guard }
    }

    /// The dRBAC role a capability translates to
    /// (`<domain>.cap_<capability>`).
    pub fn capability_role(&self, capability: &str) -> RoleName {
        self.guard.role(format!("cap_{capability}"))
    }

    /// The intermediate role a group translates to
    /// (`<domain>.grp_<group>`).
    pub fn group_role(&self, group: &str) -> RoleName {
        self.guard.role(format!("grp_{group}"))
    }

    /// Resolve (or create+register) the entity for a foreign principal
    /// name within this domain.
    fn principal(&self, name: &str) -> Entity {
        // Deterministic per-domain principal identities; re-translation is
        // idempotent with respect to keys.
        self.guard.create_principal(name)
    }

    /// Translate a capability list. Returns the issued credentials
    /// (already published to the shared repository).
    pub fn translate_capabilities(
        &self,
        policy: &CapabilityPolicy,
    ) -> Result<Vec<SignedDelegation>, DrbacError> {
        let mut out = Vec::with_capacity(policy.grants.len());
        for (serial, (principal, capability)) in policy.grants.iter().enumerate() {
            let entity = self.principal(principal);
            let cred = self.guard.publish(
                self.guard
                    .issue()
                    .subject_entity(&entity)
                    .role(self.capability_role(capability))
                    .serial(serial as u64)
                    .sign(),
            );
            out.push(cred);
        }
        Ok(out)
    }

    /// Translate a group policy: membership and permission edges become a
    /// two-level delegation graph.
    pub fn translate_groups(
        &self,
        policy: &GroupPolicy,
    ) -> Result<Vec<SignedDelegation>, DrbacError> {
        let mut out = Vec::new();
        let mut serial = 0u64;
        for (group, members) in &policy.groups {
            for member in members {
                let entity = self.principal(member);
                out.push(
                    self.guard.publish(
                        self.guard
                            .issue()
                            .subject_entity(&entity)
                            .role(self.group_role(group))
                            .serial(serial)
                            .sign(),
                    ),
                );
                serial += 1;
            }
        }
        for (group, capabilities) in &policy.permissions {
            for capability in capabilities {
                out.push(
                    self.guard.publish(
                        self.guard
                            .issue()
                            .subject_role(self.group_role(group))
                            .role(self.capability_role(capability))
                            .serial(serial)
                            .sign(),
                    ),
                );
                serial += 1;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{Entity, EntityRegistry};
    use crate::repository::Repository;
    use crate::revocation::RevocationBus;

    fn guard() -> Guard {
        Guard::new(
            Entity::with_seed("Foreign.Domain", b"translate"),
            EntityRegistry::new(),
            Repository::new(),
            RevocationBus::new(),
        )
    }

    #[test]
    fn capability_list_translation_preserves_decisions() {
        let g = guard();
        let t = PolicyTranslator::new(&g);
        let policy = CapabilityPolicy::default()
            .grant("dana", "read")
            .grant("dana", "write")
            .grant("eve", "read");
        let creds = t.translate_capabilities(&policy).unwrap();
        assert_eq!(creds.len(), 3);

        // Equivalence: foreign decision == dRBAC proof, for all pairs.
        for principal in ["dana", "eve", "frank"] {
            for capability in ["read", "write", "admin"] {
                let entity = g.create_principal(principal);
                let proved = g
                    .authorize(&entity.as_subject(), &t.capability_role(capability), &[], 0)
                    .is_ok();
                assert_eq!(
                    proved,
                    policy.allows(principal, capability),
                    "{principal} x {capability}"
                );
            }
        }
    }

    #[test]
    fn group_policy_translation_preserves_decisions() {
        let g = guard();
        let t = PolicyTranslator::new(&g);
        let policy = GroupPolicy::default()
            .member("staff", "dana")
            .member("staff", "eve")
            .member("admins", "eve")
            .permit("staff", "read")
            .permit("admins", "read")
            .permit("admins", "shutdown");
        let creds = t.translate_groups(&policy).unwrap();
        assert_eq!(creds.len(), 3 + 3);

        for principal in ["dana", "eve", "frank"] {
            for capability in ["read", "shutdown"] {
                let entity = g.create_principal(principal);
                let proved = g
                    .authorize(&entity.as_subject(), &t.capability_role(capability), &[], 0)
                    .is_ok();
                assert_eq!(
                    proved,
                    policy.allows(principal, capability),
                    "{principal} x {capability}"
                );
            }
        }
    }

    #[test]
    fn group_proofs_go_through_the_group_role() {
        let g = guard();
        let t = PolicyTranslator::new(&g);
        let policy = GroupPolicy::default()
            .member("staff", "dana")
            .permit("staff", "read");
        t.translate_groups(&policy).unwrap();
        let dana = g.create_principal("dana");
        let proof = g
            .authorize(&dana.as_subject(), &t.capability_role("read"), &[], 0)
            .unwrap();
        // Two edges: dana → grp_staff → cap_read.
        assert_eq!(proof.edges.len(), 2);
        assert_eq!(proof.edges[0].credential.body.object, t.group_role("staff"));
    }

    #[test]
    fn translated_credentials_interoperate_cross_domain() {
        // The translated roles are ordinary dRBAC roles: another domain
        // can map them like any other (single framework, many policies).
        let registry = EntityRegistry::new();
        let repo = Repository::new();
        let bus = RevocationBus::new();
        let foreign = Guard::new(
            Entity::with_seed("Foreign.Domain", b"x"),
            registry.clone(),
            repo.clone(),
            bus.clone(),
        );
        let ny = Guard::new(Entity::with_seed("Comp.NY", b"x"), registry, repo, bus);
        let t = PolicyTranslator::new(&foreign);
        t.translate_capabilities(&CapabilityPolicy::default().grant("dana", "read"))
            .unwrap();
        // NY maps the foreign capability role onto a local role.
        ny.publish(
            ny.issue()
                .subject_role(t.capability_role("read"))
                .role(ny.role("Reader"))
                .sign(),
        );
        let dana = foreign.create_principal("dana");
        let proof = ny
            .authorize(&dana.as_subject(), &ny.role("Reader"), &[], 0)
            .unwrap();
        assert_eq!(proof.edges.len(), 2);
    }

    #[test]
    fn revoking_a_translated_credential_revokes_the_capability() {
        let g = guard();
        let t = PolicyTranslator::new(&g);
        let creds = t
            .translate_capabilities(&CapabilityPolicy::default().grant("dana", "read"))
            .unwrap();
        let dana = g.create_principal("dana");
        assert!(g
            .authorize(&dana.as_subject(), &t.capability_role("read"), &[], 0)
            .is_ok());
        g.revoke(&creds[0]);
        assert!(g
            .authorize(&dana.as_subject(), &t.capability_role("read"), &[], 0)
            .is_err());
    }
}
